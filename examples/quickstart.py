#!/usr/bin/env python3
"""Quickstart: generate a small world, crawl it, and reproduce headline
numbers from every layer of the paper.

Run:
    python examples/quickstart.py

This walks the full pipeline in about a minute:
  1. build a synthetic cross-platform world (Twitter, Reddit, 4chan);
  2. crawl it with the paper's collection infrastructure;
  3. print Section-3 characterization tables;
  4. fit discrete Hawkes models to a handful of URLs (Section 5).
"""

import numpy as np

from repro.analysis import characterization as chz
from repro.config import HawkesConfig, TWITTER_GAPS
from repro.core import (
    aggregate_weights,
    fit_corpus,
    influence_percentages,
    select_urls,
    trim_gap_urls,
)
from repro.news.domains import NewsCategory
from repro.pipeline import generate_and_collect, influence_cascades
from repro.reporting import render_table
from repro.synthesis import WorldConfig


def main() -> None:
    print("=== 1. Building and crawling a synthetic world ===")
    config = WorldConfig(
        seed=2017,
        n_stories_alternative=500,
        n_stories_mainstream=1500,
        n_twitter_users=800,
        n_reddit_users=600,
    )
    data = generate_and_collect(config)
    print(f"collected: {len(data.twitter)} tweets, "
          f"{len(data.reddit)} reddit posts/comments, "
          f"{len(data.fourchan)} 4chan posts with news URLs\n")

    print("=== 2. Table 1 — share of posts containing news URLs ===")
    world = data.world
    rows = chz.total_post_shares(
        {"Twitter": world.twitter.total_posts,
         "Reddit": world.reddit.total_posts,
         "4chan": world.fourchan.total_posts},
        {"Twitter": data.twitter, "Reddit": data.reddit,
         "4chan": data.fourchan})
    print(render_table(
        ["Platform", "Total posts", "% Alt", "% Main"],
        [[r.platform, r.total_posts, f"{r.pct_alternative:.3f}",
          f"{r.pct_mainstream:.3f}"] for r in rows]))
    print()

    print("=== 3. Top alternative domains per platform (Tables 5-7) ===")
    for name, dataset in (("Twitter", data.twitter),
                          ("six subreddits", data.reddit_six),
                          ("/pol/", data.pol)):
        ranked = chz.top_domains(dataset, NewsCategory.ALTERNATIVE, 5)
        tops = ", ".join(f"{r.name} ({r.percentage:.1f}%)" for r in ranked)
        print(f"  {name}: {tops}")
    print()

    print("=== 4. Hawkes influence estimation (Section 5) ===")
    cascades = influence_cascades(data)
    corpus = trim_gap_urls(select_urls(cascades), TWITTER_GAPS, 0.10)
    print(f"URLs with events on Twitter, /pol/, and a selected "
          f"subreddit: {len(corpus)}")
    subset = corpus[:40]  # keep the demo quick
    result = fit_corpus(
        subset, HawkesConfig(gibbs_iterations=40, gibbs_burn_in=15),
        rng=np.random.default_rng(0))
    agg = aggregate_weights(result)
    t = result.processes.index("Twitter")
    print(f"W(Twitter->Twitter): alternative {agg.mean_alternative[t, t]:.4f}"
          f" vs mainstream {agg.mean_mainstream[t, t]:.4f} "
          f"({agg.percent_change[t, t]:+.1f}%)")
    pct = influence_percentages(result, NewsCategory.ALTERNATIVE)
    td = result.processes.index("The_Donald")
    pol = result.processes.index("/pol/")
    print(f"share of Twitter's alternative events caused by The_Donald: "
          f"{pct[td, t]:.2f}%  by /pol/: {pct[pol, t]:.2f}%")
    print("\nDone. See benchmarks/ for the full per-table harness.")


if __name__ == "__main__":
    main()
