#!/usr/bin/env python3
"""Quickstart: one Study session, every layer of the paper.

Run:
    python examples/quickstart.py

This walks the full pipeline in about a minute through the public
`repro.Study` API:
  1. configure a synthetic cross-platform world (Twitter, Reddit, 4chan);
  2. ask the session for Section-3 characterization tables (the world
     is built and crawled lazily, on first use, and cached);
  3. fit discrete Hawkes models to a handful of URLs (Section 5);
  4. show that warm queries reuse artifacts instead of recomputing.

Pass ``cache_dir=".repro-cache"`` to ``Study`` and re-run: the second
run skips even the cold computation — artifacts persist across
processes.
"""

import time

from repro import HawkesConfig, NewsCategory, Study, WorldConfig
from repro.analysis import characterization as chz


def main() -> None:
    print("=== 1. Configuring the session (nothing computed yet) ===")
    study = Study(
        world=WorldConfig(
            seed=2017,
            n_stories_alternative=500,
            n_stories_mainstream=1500,
            n_twitter_users=800,
            n_reddit_users=600,
        ),
        hawkes=HawkesConfig(gibbs_iterations=40, gibbs_burn_in=15),
        fit_seed=0,
        max_urls=40,  # keep the demo quick
    )
    print(f"stage keys: {', '.join(list(study.keys())[:5])} ...\n")

    print("=== 2. Table 1 — share of posts containing news URLs ===")
    print(study.table(1).render())  # triggers world -> data, then caches
    data = study.data
    print(f"\ncollected: {len(data.twitter)} tweets, "
          f"{len(data.reddit)} reddit posts/comments, "
          f"{len(data.fourchan)} 4chan posts with news URLs\n")

    print("=== 3. Top alternative domains per platform (Tables 5-7) ===")
    for name, dataset in (("Twitter", data.twitter),
                          ("six subreddits", data.reddit_six),
                          ("/pol/", data.pol)):
        ranked = chz.top_domains(dataset, NewsCategory.ALTERNATIVE, 5)
        tops = ", ".join(f"{r.name} ({r.percentage:.1f}%)" for r in ranked)
        print(f"  {name}: {tops}")
    print()

    print("=== 4. Hawkes influence estimation (Section 5) ===")
    print(f"Hawkes corpus (qualifying URLs, capped at "
          f"{study.max_urls}): {len(study.corpus)}")
    result = study.influence()
    agg = study.aggregate()
    t = result.processes.index("Twitter")
    print(f"W(Twitter->Twitter): alternative {agg.mean_alternative[t, t]:.4f}"
          f" vs mainstream {agg.mean_mainstream[t, t]:.4f} "
          f"({agg.percent_change[t, t]:+.1f}%)")
    pct = study.percentages(NewsCategory.ALTERNATIVE)
    td = result.processes.index("The_Donald")
    pol = result.processes.index("/pol/")
    print(f"share of Twitter's alternative events caused by The_Donald: "
          f"{pct[td, t]:.2f}%  by /pol/: {pct[pol, t]:.2f}%\n")

    print("=== 5. Warm queries are cache hits ===")
    start = time.perf_counter()
    study.table(1)
    study.influence()
    warm = time.perf_counter() - start
    print(f"repeating table(1) + influence(): {warm * 1e6:.0f} us "
          f"(stats: {study.stats})")
    print("\nDone. Try `python -m repro serve` for the HTTP service and "
          "benchmarks/ for the full per-table harness.")


if __name__ == "__main__":
    main()
