#!/usr/bin/env python3
"""Hawkes playground: simulate, fit, and validate the Section-5 model.

A self-contained tour of the statistical core, no world generation
involved: build a known multivariate Hawkes process, simulate it, and
check that both the Gibbs sampler and the EM fitter recover the
generating parameters — the validation the paper itself could not run
on real data.

Run:
    python examples/hawkes_playground.py
"""

import time

import numpy as np

from repro.core.hawkes import (
    HawkesParams,
    fit_em,
    fit_gibbs,
    simulate_branching,
)
from repro.core.hawkes.model import discrete_log_likelihood
from repro.core.hawkes.simulation import expected_total_events
from repro.reporting import render_table

PROCESSES = ("The_Donald", "/pol/", "Twitter")


def build_truth() -> HawkesParams:
    max_lag = 120
    pmf = np.exp(-np.arange(1, max_lag + 1) / 20.0)
    pmf /= pmf.sum()
    weights = np.array([
        [0.25, 0.15, 0.20],   # The_Donald excites /pol/ and Twitter
        [0.10, 0.30, 0.12],
        [0.05, 0.08, 0.45],   # Twitter strongly self-excites (retweets)
    ])
    return HawkesParams(
        background=np.array([0.003, 0.004, 0.008]),
        weights=weights,
        impulse=np.tile(pmf, (3, 3, 1)),
    )


def main() -> None:
    truth = build_truth()
    rng = np.random.default_rng(1)
    n_bins = 60_000  # ~42 days of minutes

    print(f"spectral radius of W: {truth.spectral_radius():.3f} "
          "(sub-critical, cascades die out)")
    events = simulate_branching(truth, n_bins, rng)
    expected = expected_total_events(truth, n_bins)
    print(render_table(
        ["Process", "Simulated", "Analytic E[N]"],
        [[name, int(events.events_per_process()[i]), f"{expected[i]:.0f}"]
         for i, name in enumerate(PROCESSES)],
        title="Simulation vs branching expectation"))
    print()

    started = time.time()
    em = fit_em(events, truth.max_lag)
    em_seconds = time.time() - started
    started = time.time()
    gibbs = fit_gibbs(events, truth.max_lag, n_iterations=80, burn_in=30,
                      rng=rng)
    gibbs_seconds = time.time() - started

    rows = []
    for i, src in enumerate(PROCESSES):
        for j, dst in enumerate(PROCESSES):
            rows.append([
                f"{src} -> {dst}",
                f"{truth.weights[i, j]:.3f}",
                f"{em.weights[i, j]:.3f}",
                f"{gibbs.weights[i, j]:.3f}",
            ])
    print(render_table(["Edge", "truth", "EM", "Gibbs"], rows,
                       title="Weight recovery"))
    print()
    print(render_table(
        ["Process", "truth λ0", "EM λ0", "Gibbs λ0"],
        [[name, f"{truth.background[i]:.5f}",
          f"{em.background[i]:.5f}", f"{gibbs.background[i]:.5f}"]
         for i, name in enumerate(PROCESSES)],
        title="Background-rate recovery"))
    print()
    print(f"log-likelihoods: truth {discrete_log_likelihood(truth, events):.1f}"
          f"  EM {em.log_likelihood:.1f} ({em_seconds:.1f}s, "
          f"{em.n_iterations} iters)"
          f"  Gibbs {gibbs.log_likelihood:.1f} ({gibbs_seconds:.1f}s)")

    # Posterior uncertainty from the Gibbs samples.
    spread = gibbs.weight_samples.std(axis=0)
    print(f"posterior std of W(Twitter->Twitter): "
          f"{spread[2, 2]:.4f} over {len(gibbs.weight_samples)} samples")

    err_em = np.abs(em.weights - truth.weights).max()
    err_gibbs = np.abs(gibbs.weights - truth.weights).max()
    print(f"max |W_hat - W|: EM {err_em:.3f}, Gibbs {err_gibbs:.3f}")


if __name__ == "__main__":
    main()
