#!/usr/bin/env python3
"""Bot amplification: what changes if Twitter bots are filtered out?

Section 3 of the paper discusses — and deliberately declines — removing
bot activity, arguing bots are part of the ecosystem.  Because the
synthetic world knows which accounts are bots, we can run the
counterfactual the paper could not: recompute the characterization with
bot tweets removed and measure the delta.

The world comes from the registered ``bot-amplification`` scenario
preset (:mod:`repro.scenarios`) — a bot-heavy Twitter population — so
``Study(scenario="bot-amplification")`` reproduces it anywhere; this
script only adds the counterfactual analysis on top.

Run:
    python examples/bot_amplification.py
"""

from repro import Study
from repro.analysis import characterization as chz
from repro.collection.store import Dataset
from repro.news.domains import NewsCategory
from repro.reporting import render_table


def main() -> None:
    data = Study(scenario="bot-amplification").data
    world = data.world
    bot_ids = {uid for uid, user in world.twitter.users.items()
               if user.is_bot}
    print(f"{len(bot_ids)} of {len(world.twitter.users)} Twitter "
          "accounts are bots\n")

    with_bots = data.twitter
    without_bots: Dataset = with_bots.filter(
        lambda record: record.author_id not in bot_ids)

    alt, main = NewsCategory.ALTERNATIVE, NewsCategory.MAINSTREAM
    rows = []
    for label, dataset in (("with bots", with_bots),
                           ("bots removed", without_bots)):
        alt_posts = dataset.url_post_count(alt)
        main_posts = dataset.url_post_count(main)
        rows.append([
            label, len(dataset), alt_posts, main_posts,
            f"{100 * alt_posts / (alt_posts + main_posts):.1f}%",
            len(dataset.unique_urls(alt)),
        ])
    print(render_table(
        ["Dataset", "Tweets", "Alt posts", "Main posts", "Alt share",
         "Unique alt URLs"], rows,
        title="Twitter news sharing, with and without bot accounts"))
    print()

    print("=== Per-user alternative fraction (Figure 3) ===")
    for label, dataset in (("with bots", with_bots),
                           ("bots removed", without_bots)):
        fractions = chz.user_alternative_fraction(dataset)
        print(f"  {label}: {fractions.n_users} users, "
              f"{fractions.pct_alternative_only:.1f}% alt-only, "
              f"{fractions.pct_mainstream_only:.1f}% main-only")
    print()

    print("=== Top alternative domains, with vs without bots ===")
    before = {r.name: r.percentage
              for r in chz.top_domains(with_bots, alt, 10)}
    after = {r.name: r.percentage
             for r in chz.top_domains(without_bots, alt, 10)}
    domains = sorted(set(before) | set(after),
                     key=lambda d: -before.get(d, 0))
    print(render_table(
        ["Domain", "with bots (%)", "without (%)", "delta"],
        [[d, f"{before.get(d, 0):.2f}", f"{after.get(d, 0):.2f}",
          f"{after.get(d, 0) - before.get(d, 0):+.2f}"]
         for d in domains[:10]]))

    removed = len(with_bots) - len(without_bots)
    alt_removed = (with_bots.url_post_count(alt)
                   - without_bots.url_post_count(alt))
    if removed:
        print(f"\nbots contributed {removed} news tweets; "
              f"{100 * alt_removed / max(1, removed):.0f}% of those "
              "carried alternative URLs")


if __name__ == "__main__":
    main()
