#!/usr/bin/env python3
"""Election week: temporal dynamics around November 8, 2016.

Reproduces the Section 4 analyses zoomed into the most eventful stretch
of the study window: daily news-URL volume per community (Figure 4),
which platform saw shared stories first (Table 8), and the sequences
URLs take across platforms (Tables 9-10).

The world comes from the registered ``election-week`` scenario preset
(:mod:`repro.scenarios`), so ``Study(scenario="election-week")``
reproduces it anywhere; this script only adds the zoomed analysis.

Run:
    python examples/election_week.py
"""

import numpy as np

from repro import Study
from repro.analysis import sequences, temporal
from repro.config import STUDY_END, STUDY_START
from repro.news.domains import NewsCategory
from repro.reporting import render_table
from repro.timeutil import SECONDS_PER_DAY, to_datetime, utc


def main() -> None:
    data = Study(scenario="election-week").data

    print("=== Daily alternative-news occurrence around the election ===")
    slices = {
        "Twitter": data.twitter,
        "six subreddits": data.reddit_six,
        "/pol/": data.pol,
    }
    election = utc(2016, 11, 8)
    start_day = (election - 4 * SECONDS_PER_DAY - STUDY_START) \
        // SECONDS_PER_DAY
    rows = []
    series = {name: temporal.daily_occurrence(ds, name, STUDY_START,
                                              STUDY_END)
              for name, ds in slices.items()}
    for offset in range(9):
        day = int(start_day + offset)
        date = to_datetime(STUDY_START + day * SECONDS_PER_DAY)
        rows.append([
            date.strftime("%Y-%m-%d"),
            *[int(series[name].alternative[day]) for name in slices],
            *[int(series[name].mainstream[day]) for name in slices],
        ])
    print(render_table(
        ["date", "alt:TW", "alt:R6", "alt:pol",
         "main:TW", "main:R6", "main:pol"], rows))
    peak_day = int(np.argmax(series["six subreddits"].mainstream))
    peak_date = to_datetime(STUDY_START + peak_day * SECONDS_PER_DAY)
    print(f"\nbusiest day on the six subreddits: "
          f"{peak_date.strftime('%Y-%m-%d')} "
          "(expect the election or a debate)\n")

    print("=== Who sees a story first? (Table 8) ===")
    pairs = {
        "Reddit vs Twitter": (data.reddit_six, data.twitter),
        "/pol/ vs Twitter": (data.pol, data.twitter),
        "/pol/ vs Reddit": (data.pol, data.reddit_six),
    }
    t8 = temporal.faster_platform_counts(pairs)
    print(render_table(
        ["Comparison", "News type", "#1 faster", "#2 faster"],
        [[r.comparison, str(r.category), r.faster_on_1, r.faster_on_2]
         for r in t8]))
    print()

    print("=== Appearance sequences (Tables 9-10) ===")
    slices_seq = data.sequence_slices()
    for category in (NewsCategory.ALTERNATIVE, NewsCategory.MAINSTREAM):
        hops = sequences.first_hop_distribution(slices_seq, category)
        triples = sequences.triplet_distribution(slices_seq, category)
        top_hops = sorted(hops, key=lambda r: -r.count)[:4]
        top_triples = sorted(triples, key=lambda r: -r.count)[:3]
        print(f"  {category}:")
        print("    first hops: " + ", ".join(
            f"{r.sequence} {r.percentage:.1f}%" for r in top_hops))
        if top_triples:
            print("    triplets:   " + ", ".join(
                f"{r.sequence} {r.percentage:.1f}%" for r in top_triples))
        head = sequences.head_of_sequence_share(triples, "R")
        print(f"    Reddit heads {head:.0f}% of triple-platform sequences")


if __name__ == "__main__":
    main()
