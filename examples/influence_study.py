#!/usr/bin/env python3
"""Full Section-5 influence study at a configurable scale.

Fits one discrete-time Hawkes model per qualifying URL with Gibbs
sampling and prints the Figure 10 mean-weight matrix (with KS
significance stars) and the Figure 11 influence-percentage matrix,
comparing the alternative and mainstream news ecosystems.

Run (default ~2-4 minutes):
    python examples/influence_study.py
    python examples/influence_study.py --urls 100 --method em
"""

import argparse
import time

import numpy as np

from repro.config import HawkesConfig, TWITTER_GAPS
from repro.core import (
    aggregate_weights,
    corpus_background_rates,
    fit_corpus,
    influence_percentages,
    select_urls,
    trim_gap_urls,
)
from repro.news.domains import NewsCategory
from repro.pipeline import generate_and_collect, influence_cascades
from repro.reporting import render_matrix_cells, render_table
from repro.synthesis import WorldConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--urls", type=int, default=250,
                        help="max URLs to fit (0 = all selected)")
    parser.add_argument("--method", choices=["gibbs", "em"],
                        default="gibbs")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--iterations", type=int, default=40,
                        help="Gibbs sweeps per URL")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (-1 = all cores); the "
                             "result is identical for any value")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print("building world and collecting datasets...")
    data = generate_and_collect(WorldConfig(
        seed=args.seed,
        n_stories_alternative=1100,
        n_stories_mainstream=3300,
        n_twitter_users=1500,
        n_reddit_users=1200,
    ))
    cascades = influence_cascades(data)
    corpus = trim_gap_urls(select_urls(cascades), TWITTER_GAPS, 0.10)
    if args.urls:
        corpus = corpus[:args.urls]
    print(f"fitting {len(corpus)} URLs with {args.method}...")

    config = HawkesConfig(gibbs_iterations=args.iterations,
                          gibbs_burn_in=max(5, args.iterations // 3))
    started = time.time()
    result = fit_corpus(corpus, config, method=args.method,
                        rng=np.random.default_rng(args.seed),
                        n_jobs=args.jobs)
    print(f"fitted in {time.time() - started:.0f}s\n")

    summary = corpus_background_rates(result)
    alt, main = NewsCategory.ALTERNATIVE, NewsCategory.MAINSTREAM
    print(render_table(
        ["Process", "URLs A/M", "Events A/M", "λ0 A", "λ0 M"],
        [[name,
          f"{summary.urls[alt][i]}/{summary.urls[main][i]}",
          f"{summary.events[alt][i]}/{summary.events[main][i]}",
          f"{summary.mean_background[alt][i]:.6f}",
          f"{summary.mean_background[main][i]:.6f}"]
         for i, name in enumerate(result.processes)],
        title="Table 11 — corpus summary"))
    print()

    agg = aggregate_weights(result)
    stars = agg.significance_stars()
    cells = [[[f"A: {agg.mean_alternative[i, j]:.4f}",
               f"M: {agg.mean_mainstream[i, j]:.4f}",
               f"{agg.percent_change[i, j]:+.1f}% {stars[i, j]}".strip()]
              for j in range(8)] for i in range(8)]
    print(render_matrix_cells(result.processes, cells,
                              title="Figure 10 — mean weights"))

    pct_alt = influence_percentages(result, alt)
    pct_main = influence_percentages(result, main)
    cells = [[[f"A: {pct_alt[i, j]:.2f}%",
               f"M: {pct_main[i, j]:.2f}%"]
              for j in range(8)] for i in range(8)]
    print(render_matrix_cells(result.processes, cells,
                              title="Figure 11 — influence percentages"))

    t = result.processes.index("Twitter")
    td = result.processes.index("The_Donald")
    pol = result.processes.index("/pol/")
    print("headline findings:")
    print(f"  W(T->T): {agg.mean_alternative[t, t]:.4f} alt vs "
          f"{agg.mean_mainstream[t, t]:.4f} main "
          f"(paper: 0.1554 vs 0.1096)")
    print(f"  fringe influence on Twitter's alternative news: "
          f"The_Donald {pct_alt[td, t]:.2f}% + /pol/ {pct_alt[pol, t]:.2f}%"
          f" (paper: 2.72% + 1.96%)")


if __name__ == "__main__":
    main()
