"""Table 6: top-20 domains on Twitter.

Paper: breitbart.com 46.04% of alternative URLs; theguardian.com 19.04%
of mainstream; therealstrategy.com unusually popular (5.63%) only here.
"""

from _helpers import render_top_domains


def test_table06_domains_twitter(benchmark, bench_data, save_result):
    text, alt, main = benchmark(
        render_top_domains, bench_data.twitter,
        "Table 6 — top domains, Twitter")
    save_result("table06_domains_twitter.txt", text)

    assert alt[0].name == "breitbart.com"
    assert main[0].name == "theguardian.com"
    # therealstrategy.com is a Twitter-specific phenomenon (Fig 2):
    # it must rank in Twitter's top-10 alternative domains.
    alt_names = [r.name for r in alt[:10]]
    assert "therealstrategy.com" in alt_names
