"""Table 11: the Hawkes corpus — URLs, events, mean background rates.

Paper: 2,136 alternative / 5,589 mainstream URLs after selection;
Twitter holds the most events (23,172 alt / 36,250 main) and the
highest mean background rate (0.0028 alt / 0.00233 main); The_Donald's
alternative background rate exceeds its mainstream one.
"""

import numpy as np

from repro.config import HAWKES_PROCESSES
from repro.core import corpus_background_rates
from repro.news.domains import NewsCategory
from repro.reporting import render_table

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def test_table11_hawkes_corpus(benchmark, bench_fits, save_result):
    summary = benchmark(corpus_background_rates, bench_fits)

    rows = []
    for i, name in enumerate(HAWKES_PROCESSES):
        rows.append([
            name,
            int(summary.urls[MAIN][i]), int(summary.urls[ALT][i]),
            int(summary.events[MAIN][i]), int(summary.events[ALT][i]),
            f"{summary.mean_background[MAIN][i]:.6f}",
            f"{summary.mean_background[ALT][i]:.6f}",
        ])
    text = render_table(
        ["Process", "URLs main", "URLs alt", "Events main", "Events alt",
         "Mean λ0 main", "Mean λ0 alt"], rows,
        title="Table 11 — Hawkes corpus summary")
    save_result("table11_hawkes_corpus.txt", text)

    twitter = HAWKES_PROCESSES.index("Twitter")
    pol = HAWKES_PROCESSES.index("/pol/")
    td = HAWKES_PROCESSES.index("The_Donald")
    for category in (ALT, MAIN):
        # selection guarantees every URL touches Twitter and /pol/
        n_urls = summary.urls[category][twitter]
        assert summary.urls[category][pol] == n_urls
        assert n_urls > 10
        # Twitter accumulates the most events
        assert summary.events[category].argmax() == twitter
    # mainstream corpus larger than alternative (paper: 5589 vs 2136)
    assert (summary.urls[MAIN][twitter] > summary.urls[ALT][twitter])
    # The_Donald: alternative background exceeds mainstream
    assert (summary.mean_background[ALT][td]
            > 0.5 * summary.mean_background[MAIN][td])
    # Twitter has the highest background rate
    assert summary.mean_background[ALT].argmax() == twitter
