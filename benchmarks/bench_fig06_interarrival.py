"""Figure 6: CDF of per-URL mean inter-arrival times.

Paper shape: each platform's distribution differs significantly
(two-sample KS); Twitter has the smallest mean inter-arrival times;
/pol/ and the six subreddits resemble each other.
"""

import numpy as np

from repro.analysis import temporal
from repro.analysis.stats import ks_two_sample
from repro.news.domains import NewsCategory
from repro.reporting import write_series
from _helpers import RESULTS_DIR


def _interarrivals(bench_data):
    slices = {
        "reddit6": bench_data.reddit_six,
        "pol": bench_data.pol,
        "twitter": bench_data.twitter,
    }
    common = temporal.common_urls(slices)
    out = {}
    for name, ds in slices.items():
        for category in NewsCategory:
            out[("common", name, category)] = temporal.interarrival_cdf(
                ds, category, restrict_urls=common)
            out[("all", name, category)] = temporal.interarrival_cdf(
                ds, category)
    return out


def test_fig06_interarrival(benchmark, bench_data, save_result):
    cdfs = benchmark(_interarrivals, bench_data)

    columns = {}
    lines = []
    for (scope, name, category), ecdf in cdfs.items():
        if ecdf is None:
            continue
        xs, ys = ecdf.on_log_grid(48)
        key = f"{scope}_{name}_{category.value}"
        columns[f"{key}_seconds"] = list(np.round(xs, 2))
        columns[f"{key}_F"] = list(np.round(ys, 4))
        lines.append(f"{key}: median={ecdf.median:.0f}s n={ecdf.n}")
    write_series(RESULTS_DIR / "fig06_interarrival.csv", columns)

    main = NewsCategory.MAINSTREAM
    tw = cdfs[("all", "twitter", main)]
    r6 = cdfs[("all", "reddit6", main)]
    # Twitter's inter-arrival times are the smallest overall
    assert tw.median < r6.median
    # KS: platform distributions differ significantly
    ks = ks_two_sample(tw.values, r6.values)
    lines.append(f"KS twitter-vs-reddit6 (main, all): "
                 f"D={ks.statistic:.3f} p={ks.pvalue:.2e}")
    assert ks.pvalue < 0.01
    save_result("fig06_summary.txt", "\n".join(lines))
