"""Scenario presets end-to-end: fit + serve latency across K.

Runs three registered presets — ``minimal`` (the paper-shaped smoke
world), ``web-centipede`` (the paper, K=8), and ``gab`` (K=4 with a
generic fourth platform) — through the full ``Study(scenario=...)``
path: world → collect → corpus → influence fit, then a live
``StudyService`` answering ``/influence`` and ``/scenarios``.  The
point is that the K-platform generalization costs nothing on the paper
path and scales sanely with K.

Each run emits ``results/BENCH_scenarios.json``; ``BENCH_SMOKE=1``
shrinks the worlds for a fast CI pass (the JSON is emitted either
way).  All fits use fast EM so the bench measures the scenario
plumbing, not Gibbs sweeps.
"""

import dataclasses
import http.client
import os
import threading
import time

import pytest

from repro.api import Study, StudyService
from repro.config import HawkesConfig
from repro.reporting import render_table
from repro.scenarios import get_scenario

from _helpers import write_bench_json

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

SCENARIOS = ("minimal", "gab", "web-centipede")

#: World scale per mode: smoke stays under a minute on one core.
SCALE = (dict(n_stories_alternative=150, n_stories_mainstream=450,
              n_twitter_users=250, n_reddit_users=200,
              n_generic_subreddits=30)
         if SMOKE else
         dict(n_stories_alternative=600, n_stories_mainstream=1800,
              n_twitter_users=800, n_reddit_users=600,
              n_generic_subreddits=80))

MAX_URLS = 15 if SMOKE else 60
SERVE_REQUESTS = 50 if SMOKE else 300

BENCH_HAWKES = HawkesConfig(gibbs_iterations=20, gibbs_burn_in=6)

_RESULTS: dict = {}
_METRICS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    write_bench_json(_RESULTS, "BENCH_scenarios.json", case={
        "smoke": SMOKE,
        "scenarios": list(SCENARIOS),
        "scale": SCALE,
        "max_urls": MAX_URLS,
        "serve_requests": SERVE_REQUESTS,
    }, metrics=_METRICS)


def _scaled_study(name: str) -> Study:
    scenario = get_scenario(name)
    world = dataclasses.replace(scenario.world, **SCALE)
    return Study(scenario=dataclasses.replace(scenario, world=world),
                 hawkes=BENCH_HAWKES, method="em", max_urls=MAX_URLS)


def _get(port: int, path: str) -> int:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


def _serve_seconds(study: Study) -> float:
    """Wall time for SERVE_REQUESTS warm GETs across the endpoints."""
    service = StudyService(study, port=0)
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    try:
        assert _get(service.port, "/influence") == 200  # warm the cache
        start = time.perf_counter()
        for i in range(SERVE_REQUESTS):
            path = "/influence" if i % 2 else "/scenarios"
            assert _get(service.port, path) == 200
        return time.perf_counter() - start
    finally:
        service.shutdown()
        service.close()
        thread.join(timeout=5)


def test_bench_scenarios(benchmark, save_result):
    rows = []
    for i, name in enumerate(SCENARIOS):
        study = _scaled_study(name)
        scenario = study.scenario

        def _fit(s=study):
            start = time.perf_counter()
            result = s.influence()
            return result, time.perf_counter() - start

        if i == 0:
            # One scenario goes through the benchmark fixture so the
            # run is visible to pytest-benchmark's own reporting.
            result, fit_s = benchmark.pedantic(_fit, rounds=1,
                                               iterations=1)
        else:
            result, fit_s = _fit()
        assert result.processes == scenario.ecosystem.processes
        n_urls = len(result.fits)
        serve_s = _serve_seconds(study)
        _RESULTS[f"{name}/fit"] = {
            "ops_per_sec": n_urls / fit_s if fit_s else None,
            "mean_seconds": fit_s / max(1, n_urls),
            "wall_seconds": fit_s,
            "k": scenario.k,
            "n_urls": n_urls,
        }
        _RESULTS[f"{name}/serve"] = {
            "ops_per_sec": SERVE_REQUESTS / serve_s,
            "mean_seconds": serve_s / SERVE_REQUESTS,
            "wall_seconds": serve_s,
            "requests": SERVE_REQUESTS,
        }
        rows.append([name, str(scenario.k), str(n_urls),
                     f"{n_urls / fit_s:.1f}" if fit_s else "-",
                     f"{SERVE_REQUESTS / serve_s:.0f}"])
    from repro.obs import get_registry
    _METRICS.update(get_registry().snapshot())
    table = render_table(
        ["Scenario", "K", "Corpus URLs", "fit URLs/s", "serve req/s"],
        rows, title=f"Scenario presets end-to-end "
                    f"({'smoke' if SMOKE else 'full'} mode, EM)")
    print()
    print(table)
    save_result("bench_scenarios.txt", table)
