"""Parallel corpus fitting: throughput vs. worker count.

Complements ``bench_core_fitters.py`` (single-fit microbenchmarks) with
the corpus-level question the `repro.parallel` subsystem answers: how
does `fit_corpus` scale when the per-URL fits fan out over worker
processes?  Reports wall time, URLs/sec, speedup over serial, and
parallel efficiency (speedup / workers) for 1/2/4 jobs — and verifies
on real corpus data that every configuration returns the same bits.

Speedup is hardware-dependent (on a single-core container the pool
only adds dispatch overhead); the determinism check is not.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import HawkesConfig
from repro.core import fit_corpus
from repro.reporting import render_table

from _helpers import RESULTS_DIR  # noqa: F401 (pytest adds benchmarks/)

#: Corpus slice sized so three full fits stay in benchmark territory.
N_URLS = 16
JOB_COUNTS = (1, 2, 4)
PARALLEL_HAWKES = HawkesConfig(gibbs_iterations=40, gibbs_burn_in=15)
SEED = 7


@pytest.fixture(scope="module")
def parallel_corpus(bench_corpus):
    return bench_corpus[:N_URLS]


def _timed_fit(corpus, n_jobs):
    start = time.perf_counter()
    result = fit_corpus(corpus, PARALLEL_HAWKES, rng=SEED, n_jobs=n_jobs)
    return result, time.perf_counter() - start


def test_bench_parallel_corpus_fit(benchmark, parallel_corpus, save_result):
    corpus = parallel_corpus
    serial, serial_elapsed = benchmark.pedantic(
        _timed_fit, args=(corpus, 1), rounds=1, iterations=1)
    assert len(serial.fits) == len(corpus)

    rows = []
    for n_jobs in JOB_COUNTS:
        if n_jobs == 1:
            result, elapsed = serial, serial_elapsed
        else:
            result, elapsed = _timed_fit(corpus, n_jobs)
        speedup = serial_elapsed / elapsed
        rows.append([
            str(n_jobs), f"{elapsed:.2f}", f"{len(corpus) / elapsed:.2f}",
            f"{speedup:.2f}x", f"{100 * speedup / n_jobs:.0f}%",
        ])
        # The determinism guarantee, on real corpus data: every worker
        # count reproduces the serial fit exactly.
        for fit_serial, fit_parallel in zip(serial.fits, result.fits):
            assert np.array_equal(fit_serial.weights, fit_parallel.weights)
            assert np.array_equal(fit_serial.background,
                                  fit_parallel.background)

    table = render_table(
        ["Jobs", "Wall (s)", "URLs/s", "Speedup", "Efficiency"], rows,
        title=f"fit_corpus, {len(corpus)} URLs, Gibbs "
              f"{PARALLEL_HAWKES.gibbs_iterations} sweeps "
              f"({os.cpu_count()} cores)")
    save_result("parallel_corpus_scaling.txt", table)
    print()
    print(table)
