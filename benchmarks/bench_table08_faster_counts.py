"""Table 8: which platform sees a shared URL first, per pair and category.

Paper: Reddit beats Twitter (18,762 vs 11,416 mainstream URLs; 5,232 vs
4,301 alternative); Twitter beats /pol/ (4,700 vs 2,938 mainstream —
i.e. /pol/ loses both directions); Reddit beats /pol/ decisively.
"""

from repro.analysis import temporal
from repro.news.domains import NewsCategory
from repro.reporting import render_table


def test_table08_faster_counts(benchmark, bench_data, save_result):
    pairs = {
        "Reddit vs Twitter": (bench_data.reddit_six, bench_data.twitter),
        "/pol/ vs Twitter": (bench_data.pol, bench_data.twitter),
        "/pol/ vs Reddit": (bench_data.pol, bench_data.reddit_six),
    }
    rows = benchmark(temporal.faster_platform_counts, pairs)
    text = render_table(
        ["Comparison", "Type", "#URLs platform 1 faster",
         "#URLs platform 2 faster"],
        [[r.comparison, str(r.category), r.faster_on_1, r.faster_on_2]
         for r in rows],
        title="Table 8 — cross-platform speed comparison")
    save_result("table08_faster_counts.txt", text)

    by_key = {(r.comparison, r.category): r for r in rows}
    main = NewsCategory.MAINSTREAM
    alt = NewsCategory.ALTERNATIVE
    # Reddit sees shared URLs before Twitter more often (mainstream)
    reddit_twitter = by_key[("Reddit vs Twitter", main)]
    assert reddit_twitter.faster_on_1 > reddit_twitter.faster_on_2 * 0.8
    # /pol/ loses to Reddit in both categories
    pol_reddit_main = by_key[("/pol/ vs Reddit", main)]
    pol_reddit_alt = by_key[("/pol/ vs Reddit", alt)]
    assert pol_reddit_main.faster_on_2 > pol_reddit_main.faster_on_1
    assert pol_reddit_alt.faster_on_2 > pol_reddit_alt.faster_on_1
    # every comparison found URLs
    for row in rows:
        assert row.faster_on_1 + row.faster_on_2 > 0
