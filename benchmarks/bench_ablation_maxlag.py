"""Ablation: excitation-window length (Delta t_max).

The paper states that windows of 6, 12, 24, and 48 hours "gave similar
results" (Section 5.2) without showing them.  This bench refits a
corpus subsample at each window and reports how W(Twitter->Twitter)
moves — the reproduction's check of that claim.
"""

from repro.analysis.ablation import sweep_max_lag, weight_stability
from repro.config import HawkesConfig
from repro.reporting import render_table

FAST = HawkesConfig(gibbs_iterations=25, gibbs_burn_in=8)


def test_ablation_maxlag(benchmark, bench_corpus, save_result):
    subsample = bench_corpus[:40]
    points = benchmark(sweep_max_lag, subsample, FAST, (6, 12, 24, 48))

    rows = []
    for point in points:
        alt, main = point.twitter_self_excitation()
        rows.append([point.label, point.n_urls, f"{alt:.4f}",
                     f"{main:.4f}"])
    stability = weight_stability(points)
    text = (render_table(
        ["Window", "URLs", "W(T→T) alt", "W(T→T) main"], rows,
        title="Ablation — excitation window (paper: 'similar results')")
        + f"\nmax relative change of W(T→T): {stability:.2f}")
    save_result("ablation_maxlag.txt", text)

    # the paper's claim: results similar across windows
    assert stability < 0.5
    for point in points:
        alt, main = point.twitter_self_excitation()
        assert alt > 0 and main > 0
