"""Shared benchmark fixtures: one medium world, collected and fitted once.

Every bench regenerates one of the paper's tables or figures.  The
rendered output is written to ``results/`` so EXPERIMENTS.md can quote
paper-reported vs. measured values side by side.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.config import HawkesConfig, TWITTER_GAPS
from repro.core import fit_corpus, select_urls, trim_gap_urls
from repro.pipeline import generate_and_collect, influence_cascades
from repro.synthesis.world import WorldConfig

from _helpers import RESULTS_DIR  # noqa: E402 (pytest adds benchmarks/ to sys.path)

#: Medium-scale world: ~1/25 of the paper's corpus, minutes to analyze.
BENCH_CONFIG = WorldConfig(
    seed=42,
    n_stories_alternative=1500,
    n_stories_mainstream=4500,
    n_twitter_users=1500,
    n_reddit_users=1200,
    n_generic_subreddits=150,
)

#: Reduced sweep count keeps the full-corpus fit to a couple of minutes.
BENCH_HAWKES = HawkesConfig(gibbs_iterations=40, gibbs_burn_in=15)


@pytest.fixture(scope="session")
def bench_data():
    return generate_and_collect(BENCH_CONFIG)


@pytest.fixture(scope="session")
def bench_corpus(bench_data):
    cascades = influence_cascades(bench_data)
    selected = select_urls(cascades)
    return trim_gap_urls(selected, TWITTER_GAPS,
                         BENCH_HAWKES.gap_trim_fraction)


@pytest.fixture(scope="session")
def bench_fits(bench_corpus):
    rng = np.random.default_rng(7)
    return fit_corpus(bench_corpus, BENCH_HAWKES, rng=rng)


@pytest.fixture(scope="session")
def save_result():
    """Writer for rendered tables/figure series under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / name
        path.write_text(text if text.endswith("\n") else text + "\n",
                        encoding="utf-8")
        return path

    return _save
