"""Figure 9: the illustrative three-process Hawkes cascade.

The paper's Figure 9 is a cartoon of events on The_Donald, Twitter, and
/pol/ exciting each other.  We regenerate it as an actual simulation of
a three-process model and benchmark the branching sampler.
"""

import numpy as np

from repro.core.hawkes import HawkesParams, simulate_branching
from repro.core.hawkes.simulation import expected_total_events
from repro.reporting import render_table

PROCESSES = ("The_Donald", "Twitter", "/pol/")


def _demo_params():
    k, max_lag = 3, 60
    pmf = np.exp(-np.arange(1, max_lag + 1) / 10.0)
    pmf /= pmf.sum()
    return HawkesParams(
        background=np.array([0.002, 0.004, 0.002]),
        weights=np.array([
            [0.30, 0.25, 0.20],
            [0.15, 0.40, 0.10],
            [0.20, 0.20, 0.30],
        ]),
        impulse=np.tile(pmf, (k, k, 1)),
    )


def test_fig09_hawkes_demo(benchmark, save_result):
    params = _demo_params()
    rng = np.random.default_rng(20)
    events = benchmark(simulate_branching, params, 10_000, rng)

    per_process = events.events_per_process()
    expected = expected_total_events(params, 10_000)
    text = render_table(
        ["Process", "Simulated events", "Analytic expectation"],
        [[name, int(per_process[i]), f"{expected[i]:.1f}"]
         for i, name in enumerate(PROCESSES)],
        title="Figure 9 — three-process Hawkes cascade demo")
    save_result("fig09_hawkes_demo.txt", text)

    assert events.total_events > 0
    # totals within a factor of the analytic branching expectation
    for i in range(3):
        assert per_process[i] < 3 * expected[i] + 30
    # excitation clusters events: variance of counts per window exceeds
    # Poisson (index of dispersion > 1)
    dense = events.to_dense().sum(axis=1)
    windows = dense[:len(dense) // 100 * 100].reshape(100, -1).sum(axis=1)
    dispersion = windows.var() / max(windows.mean(), 1e-9)
    assert dispersion > 1.0
