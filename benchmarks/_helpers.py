"""Shared rendering helpers for the benchmark harness (not collected)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import characterization as chz
from repro.news.domains import NewsCategory
from repro.reporting import render_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record_ops(registry: dict, name: str, benchmark) -> None:
    """Record a benchmark's throughput (ops/sec) into ``registry``.

    Tolerates runs where timing is disabled (``--benchmark-disable`` or
    plain test collection): entries are simply not recorded.
    """
    meta = getattr(benchmark, "stats", None)
    stats = getattr(meta, "stats", None)
    mean = getattr(stats, "mean", None)
    if mean:
        registry[name] = {
            "ops_per_sec": 1.0 / mean,
            "mean_seconds": mean,
            "rounds": getattr(stats, "rounds", None),
        }


def write_bench_json(registry: dict, filename: str,
                     case: dict | None = None,
                     metrics: dict | None = None) -> Path | None:
    """Write machine-readable benchmark throughput to ``results/``.

    Shape: ``{"case": {...}, "benchmarks": {name: {ops_per_sec, ...}},
    "metrics": {...}}`` — ``case`` records the workload parameters
    (sizes, sweep counts, smoke flag) so numbers from different modes
    are never compared as if they measured the same work, and
    ``metrics`` embeds the run's :mod:`repro.obs` registry snapshot
    (pass one explicitly to override the ambient registry's).  Returns
    the path written, or ``None`` when nothing was recorded (e.g.
    benchmarking disabled).
    """
    if not registry:
        return None
    if metrics is None:
        from repro.obs import get_registry
        metrics = get_registry().snapshot()
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    payload = {"case": case or {}, "benchmarks": registry,
               "metrics": metrics}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def render_top_domains(dataset, title: str) -> tuple[str, list, list]:
    """Render a Tables 5-7 style two-column top-20 domain table."""
    alt = chz.top_domains(dataset, NewsCategory.ALTERNATIVE, 20)
    main = chz.top_domains(dataset, NewsCategory.MAINSTREAM, 20)
    width = max(len(alt), len(main))
    rows = []
    for i in range(width):
        a = alt[i] if i < len(alt) else None
        m = main[i] if i < len(main) else None
        rows.append([
            a.name if a else "", f"{a.percentage:.2f}%" if a else "",
            m.name if m else "", f"{m.percentage:.2f}%" if m else "",
        ])
    text = render_table(
        ["Domain (Alt.)", "(%)", "Domain (Main.)", "(%)"], rows,
        title=title)
    return text, alt, main
