"""Shared rendering helpers for the benchmark harness (not collected)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import characterization as chz
from repro.news.domains import NewsCategory
from repro.reporting import render_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def render_top_domains(dataset, title: str) -> tuple[str, list, list]:
    """Render a Tables 5-7 style two-column top-20 domain table."""
    alt = chz.top_domains(dataset, NewsCategory.ALTERNATIVE, 20)
    main = chz.top_domains(dataset, NewsCategory.MAINSTREAM, 20)
    width = max(len(alt), len(main))
    rows = []
    for i in range(width):
        a = alt[i] if i < len(alt) else None
        m = main[i] if i < len(main) else None
        rows.append([
            a.name if a else "", f"{a.percentage:.2f}%" if a else "",
            m.name if m else "", f"{m.percentage:.2f}%" if m else "",
        ])
    text = render_table(
        ["Domain (Alt.)", "(%)", "Domain (Main.)", "(%)"], rows,
        title=title)
    return text, alt, main
