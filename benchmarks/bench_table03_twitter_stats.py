"""Table 3: tweet re-crawl retrieval rates and engagement statistics.

Paper: alternative 83.2% retrieved, 341 +/- 1,228 mean retweets, 0.82 +/-
15.6 likes; mainstream 87.7%, 404 +/- 2,146, 0.96 +/- 55.6.  Shape:
alternative tweets vanish more often; engagement is heavy-tailed with
mean retweets in the hundreds and likes below one.
"""

from repro.analysis import characterization as chz
from repro.collection import TweetRecrawler
from repro.news.domains import NewsCategory
from repro.reporting import render_table


def test_table03_twitter_stats(benchmark, bench_data, save_result):
    recrawl = benchmark(
        TweetRecrawler().recrawl, bench_data.twitter,
        bench_data.world.twitter)
    rows = chz.twitter_recrawl_stats(recrawl)
    text = render_table(
        ["Category", "Tweets", "Retrieved (%)", "Avg. Retweets",
         "Avg. Likes"],
        [[str(r.category), r.tweets,
          f"{r.retrieved} ({r.retrieved_pct:.1f}%)",
          f"{r.mean_retweets:.0f} ± {r.std_retweets:.0f}",
          f"{r.mean_likes:.2f} ± {r.std_likes:.1f}"] for r in rows],
        title="Table 3 — Twitter re-crawl statistics")
    save_result("table03_twitter_stats.txt", text)

    alt = next(r for r in rows if r.category == NewsCategory.ALTERNATIVE)
    main = next(r for r in rows if r.category == NewsCategory.MAINSTREAM)
    assert alt.retrieved_pct < main.retrieved_pct   # alt vanishes more
    assert 70 < alt.retrieved_pct < 95
    assert 75 < main.retrieved_pct < 97
    for row in rows:
        assert row.mean_retweets > 50          # heavy-tailed RT counts
        assert row.std_retweets > row.mean_retweets
        assert row.mean_likes < 5              # likes mostly zero
