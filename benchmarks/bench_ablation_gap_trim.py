"""Ablation: gap-overlap trim fraction.

Section 5.2 drops the 10% shortest-duration URLs among those whose
events overlap the Twitter outage windows.  This bench measures how
sensitive the headline weights are to that choice (0% / 10% / 20%).
"""

from repro.analysis.ablation import sweep_gap_trim, weight_stability
from repro.config import HawkesConfig, TWITTER_GAPS
from repro.core import select_urls
from repro.pipeline import influence_cascades
from repro.reporting import render_table

FAST = HawkesConfig(gibbs_iterations=25, gibbs_burn_in=8)


def test_ablation_gap_trim(benchmark, bench_data, save_result):
    # rebuild the corpus without any trimming so the sweep controls it
    cascades = select_urls(influence_cascades(bench_data))[:60]
    points = benchmark(sweep_gap_trim, cascades, TWITTER_GAPS, FAST,
                       (0.0, 0.10, 0.20))

    rows = []
    for point in points:
        alt, main = point.twitter_self_excitation()
        rows.append([point.label, point.n_urls, f"{alt:.4f}",
                     f"{main:.4f}"])
    stability = weight_stability(points)
    text = (render_table(
        ["Trim", "URLs", "W(T→T) alt", "W(T→T) main"], rows,
        title="Ablation — gap-overlap trimming (paper: 10%)")
        + f"\nmax relative change of W(T→T): {stability:.2f}")
    save_result("ablation_gap_trim.txt", text)

    # more trimming keeps fewer URLs, monotonically
    assert points[0].n_urls >= points[1].n_urls >= points[2].n_urls
    # and the conclusion is robust to the choice
    assert stability < 0.5
