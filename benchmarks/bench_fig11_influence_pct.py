"""Figure 11: estimated share of events caused by each source community.

Paper: Twitter is the most influential single source for most
destinations (e.g. causes 37.07% of conspiracy's alternative events);
after Twitter, The_Donald and /pol/ lead for alternative URLs —
The_Donald causes 2.72% of Twitter's alternative events and 8% of
/pol/'s; The_Donald + /pol/ contribute >4.5% of Twitter's alternative
and ~6% of its mainstream URLs.
"""

import numpy as np

from repro.config import HAWKES_PROCESSES
from repro.core import influence_percentages
from repro.news.domains import NewsCategory
from repro.reporting import render_matrix_cells

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def test_fig11_influence_pct(benchmark, bench_fits, save_result):
    pct_alt = benchmark(influence_percentages, bench_fits, ALT)
    pct_main = influence_percentages(bench_fits, MAIN)

    cells = [[[f"A: {pct_alt[i, j]:.2f}%",
               f"M: {pct_main[i, j]:.2f}%",
               f"{pct_alt[i, j] - pct_main[i, j]:+.2f}"]
              for j in range(8)] for i in range(8)]
    text = render_matrix_cells(
        HAWKES_PROCESSES, cells,
        title="Figure 11 — estimated percentage of events caused "
              "(source rows, destination columns)")
    save_result("fig11_influence_pct.txt", text)

    twitter = HAWKES_PROCESSES.index("Twitter")
    td = HAWKES_PROCESSES.index("The_Donald")
    pol = HAWKES_PROCESSES.index("/pol/")
    for pct in (pct_alt, pct_main):
        assert np.all(pct >= 0)
        assert np.all(np.isfinite(pct))
    # Twitter is the top off-diagonal influence for most destinations
    off_diag_wins = 0
    for j in range(8):
        if j == twitter:
            continue
        sources = [pct_alt[i, j] for i in range(8) if i != j]
        if pct_alt[twitter, j] == max(sources):
            off_diag_wins += 1
    assert off_diag_wins >= 4
    # The_Donald and /pol/ both contribute measurably to Twitter's
    # alternative events
    fringe_influence = pct_alt[td, twitter] + pct_alt[pol, twitter]
    assert fringe_influence > 1.0
    # Twitter influences /pol/'s alternative events more than the
    # reverse (per the paper's asymmetry discussion)
    assert pct_alt[twitter, pol] > pct_alt[pol, twitter]
