"""Figure 4: normalized daily occurrence of news URLs per community.

Paper shape: /pol/ and the six subreddits show the highest normalized
alternative-news occurrence; spikes appear around the first debate and
election day; mainstream sharing is more uniform across communities.
"""

import numpy as np

from repro.analysis import temporal
from repro.config import STUDY_END, STUDY_START
from repro.news.domains import NewsCategory
from repro.reporting import write_series
from repro.timeutil import SECONDS_PER_DAY, utc
from _helpers import RESULTS_DIR


def _series(bench_data):
    named = {
        "pol": bench_data.pol,
        "4chan_other": bench_data.fourchan_other,
        "reddit6": bench_data.reddit_six,
        "reddit_other": bench_data.reddit_other,
        "twitter": bench_data.twitter,
    }
    return {name: temporal.daily_occurrence(ds, name, STUDY_START,
                                            STUDY_END)
            for name, ds in named.items()}


def test_fig04_daily_occurrence(benchmark, bench_data, save_result):
    series = benchmark(_series, bench_data)

    columns = {}
    for name, daily in series.items():
        columns[f"{name}_alt"] = list(
            np.round(daily.normalized(NewsCategory.ALTERNATIVE), 5))
        columns[f"{name}_main"] = list(
            np.round(daily.normalized(NewsCategory.MAINSTREAM), 5))
        columns[f"{name}_fraction"] = list(
            np.round(daily.alternative_fraction(), 4))
    columns["day"] = list(range(series["twitter"].n_days))
    write_series(RESULTS_DIR / "fig04_daily_occurrence.csv", columns)

    election_day = (utc(2016, 11, 8) - STUDY_START) // SECONDS_PER_DAY
    lines = []
    for name, daily in series.items():
        alt = daily.normalized(NewsCategory.ALTERNATIVE)
        lines.append(f"{name}: mean_alt={alt.mean():.4f} "
                     f"election_day={alt[election_day]:.4f}")
    save_result("fig04_summary.txt", "\n".join(lines))

    # /pol/ and the six subreddits lead in normalized alternative share
    pol_alt = series["pol"].normalized(NewsCategory.ALTERNATIVE).mean()
    tw_alt = series["twitter"].normalized(NewsCategory.ALTERNATIVE).mean()
    other_reddit_alt = series["reddit_other"].normalized(
        NewsCategory.ALTERNATIVE).mean()
    assert pol_alt > other_reddit_alt
    # election-day spike on the large communities
    reddit6 = series["reddit6"]
    alt = reddit6.alternative + reddit6.mainstream
    window = alt[max(0, election_day - 30):election_day + 30]
    assert alt[election_day] > 1.5 * np.median(window[window > 0])
