"""Figure 7: CDFs of first-occurrence deltas between platform pairs.

Paper shape: alternative news crosses platforms faster than mainstream;
each pair shows a turning point near 24 hours; Twitter tends to see
alternative URLs before the six subreddits and /pol/.
"""

import numpy as np

from repro.analysis import temporal
from repro.news.domains import NewsCategory
from repro.reporting import write_series
from _helpers import RESULTS_DIR

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def _pairs(bench_data):
    twitter = bench_data.twitter
    reddit6 = bench_data.reddit_six
    pol = bench_data.pol
    out = {}
    for category in (ALT, MAIN):
        out[("twitter-reddit6", category)] = temporal.cross_platform_lags(
            twitter, reddit6, "Twitter", "Reddit6", category)
        out[("twitter-pol", category)] = temporal.cross_platform_lags(
            twitter, pol, "Twitter", "/pol/", category)
        out[("pol-reddit6", category)] = temporal.cross_platform_lags(
            pol, reddit6, "/pol/", "Reddit6", category)
    return out


def test_fig07_cross_platform(benchmark, bench_data, save_result):
    lags = benchmark(_pairs, bench_data)

    columns = {}
    lines = []
    for (pair, category), result in lags.items():
        for direction, ecdf in (("ab", result.a_first),
                                ("ba", result.b_first)):
            if ecdf is None:
                continue
            xs, ys = ecdf.on_log_grid(48)
            key = f"{pair}_{category.value}_{direction}"
            columns[f"{key}_seconds"] = list(np.round(xs, 1))
            columns[f"{key}_F"] = list(np.round(ys, 4))
        share_a, share_b = result.turning_share_24h()
        cross = result.cross_point_seconds()
        lines.append(
            f"{pair} {category.value}: n_a_first={result.n_a_first} "
            f"n_b_first={result.n_b_first} F_ab(24h)={share_a:.2f} "
            f"F_ba(24h)={share_b:.2f} "
            f"cross={'%.0fs' % cross if cross else 'none'}")
    write_series(RESULTS_DIR / "fig07_cross_platform.csv", columns)
    save_result("fig07_summary.txt", "\n".join(lines))

    # alternative URLs cross platforms faster than mainstream
    alt_tw_r = lags[("twitter-reddit6", ALT)]
    main_tw_r = lags[("twitter-reddit6", MAIN)]
    if alt_tw_r.a_first and main_tw_r.a_first:
        assert alt_tw_r.a_first.median <= main_tw_r.a_first.median * 3
    # every populated pair has mass near the day boundary
    for result in lags.values():
        if result.a_first is not None and result.a_first.n > 10:
            share_a, _ = result.turning_share_24h()
            assert share_a > 0.15
