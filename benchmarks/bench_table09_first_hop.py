"""Table 9: distribution of first-hop appearance sequences.

Paper: most URLs appear on one platform only (82% alternative / 89%
mainstream summing the "only" rows); T-only 44.5%/41%, R-only
33.3%/46.1%, 4-only 4.4%/3.7%; among hops, R→T and T→R dominate and
flows through /pol/ are rare.
"""

from repro.analysis import sequences
from repro.news.domains import NewsCategory
from repro.reporting import render_table


def test_table09_first_hop(benchmark, bench_data, save_result):
    slices = bench_data.sequence_slices()
    alt = benchmark(sequences.first_hop_distribution, slices,
                    NewsCategory.ALTERNATIVE)
    main = sequences.first_hop_distribution(slices,
                                            NewsCategory.MAINSTREAM)
    alt_by = {r.sequence: r for r in alt}
    main_by = {r.sequence: r for r in main}
    all_sequences = sorted(set(alt_by) | set(main_by))
    text = render_table(
        ["Sequence", "Alternative (%)", "Mainstream (%)"],
        [[s,
          (f"{alt_by[s].count} ({alt_by[s].percentage:.1f}%)"
           if s in alt_by else "-"),
          (f"{main_by[s].count} ({main_by[s].percentage:.1f}%)"
           if s in main_by else "-")] for s in all_sequences],
        title="Table 9 — first-hop sequence distribution")
    save_result("table09_first_hop.txt", text)

    for by in (alt_by, main_by):
        singles = sum(r.percentage for s, r in by.items() if "only" in s)
        assert singles > 55  # single-platform URLs dominate
        # /pol/ rarely originates cross-platform URLs
        from_pol = sum(r.percentage for s, r in by.items()
                       if s.startswith("4→"))
        from_reddit = sum(r.percentage for s, r in by.items()
                          if s.startswith("R→"))
        assert from_reddit > from_pol
    # T-only and R-only are the two largest single-platform shares
    for by in (alt_by, main_by):
        t_only = by.get("T only")
        four_only = by.get("4 only")
        assert t_only is not None
        if four_only is not None:
            assert t_only.percentage > four_only.percentage
