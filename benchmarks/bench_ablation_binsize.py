"""Ablation: time-bin width (Delta t).

The paper picks 1-minute bins as "a reasonable compromise between
accuracy and computational cost" and notes 92% of events sit alone in
their bin.  This bench refits at 30 s / 1 min / 5 min and reports both
the weight movement and the bin-sharing statistic.
"""

import numpy as np

from repro.analysis.ablation import sweep_bin_size, weight_stability
from repro.config import HAWKES_PROCESSES, HawkesConfig
from repro.core.influence import cascade_to_events
from repro.reporting import render_table

FAST = HawkesConfig(gibbs_iterations=25, gibbs_burn_in=8)


def _alone_in_bin_share(corpus, delta_t: float) -> float:
    alone = 0
    total = 0
    for cascade in corpus:
        events = cascade_to_events(cascade, delta_t=delta_t)
        bins, counts = np.unique(events.bins, return_counts=True)
        dense_counts = events.counts
        total += events.total_events
        # events alone in their bin: occupied cells with count 1 whose
        # bin holds no other process's events
        for m in range(len(events)):
            if dense_counts[m] == 1:
                same_bin = events.bins == events.bins[m]
                if same_bin.sum() == 1:
                    alone += 1
    return alone / total if total else 0.0


def test_ablation_binsize(benchmark, bench_corpus, save_result):
    subsample = bench_corpus[:40]
    points = benchmark(sweep_bin_size, subsample, FAST, (30, 60, 300))

    rows = []
    for point, delta_t in zip(points, (30, 60, 300)):
        alt, main = point.twitter_self_excitation()
        share = _alone_in_bin_share(subsample, delta_t)
        rows.append([point.label, f"{alt:.4f}", f"{main:.4f}",
                     f"{100 * share:.1f}%"])
    text = render_table(
        ["Bin width", "W(T→T) alt", "W(T→T) main", "events alone in bin"],
        rows,
        title="Ablation — bin width (paper: 1 min, 92% of events alone)")
    save_result("ablation_binsize.txt", text)

    # at 1-minute bins most events should sit alone, like the paper's 92%
    share_60 = _alone_in_bin_share(subsample, 60)
    assert share_60 > 0.75
    # coarser bins merge more events
    assert _alone_in_bin_share(subsample, 300) < share_60
    # weights stay in the same ballpark across bin widths
    assert weight_stability(points) < 0.6
