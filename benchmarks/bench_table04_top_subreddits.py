"""Table 4: top-20 subreddits by alternative/mainstream URL occurrences.

Paper: The_Donald heads the alternative column with 35.37%; politics
heads the mainstream column with 12.9%; the six selected subreddits all
appear high in both columns.
"""

from repro.analysis import characterization as chz
from repro.config import SELECTED_SUBREDDITS
from repro.news.domains import NewsCategory
from repro.reporting import render_table


def test_table04_top_subreddits(benchmark, bench_data, save_result):
    alt = benchmark(chz.top_subreddits, bench_data.reddit,
                    NewsCategory.ALTERNATIVE, 20)
    main = chz.top_subreddits(bench_data.reddit,
                              NewsCategory.MAINSTREAM, 20)
    width = max(len(alt), len(main))
    rows = []
    for i in range(width):
        a = alt[i] if i < len(alt) else None
        m = main[i] if i < len(main) else None
        rows.append([
            a.name if a else "", f"{a.percentage:.2f}%" if a else "",
            m.name if m else "", f"{m.percentage:.2f}%" if m else "",
        ])
    text = render_table(
        ["Subreddit (Alt.)", "(%)", "Subreddit (Main.)", "(%)"], rows,
        title="Table 4 — top subreddits by news-URL occurrence")
    save_result("table04_top_subreddits.txt", text)

    assert alt[0].name == "The_Donald"
    assert alt[0].percentage > 15
    main_top5 = {r.name for r in main[:5]}
    assert main_top5 & {"politics", "worldnews", "news"}
    # the six selected subreddits rank inside both top-20 lists
    alt_names = {r.name for r in alt}
    assert len(alt_names & set(SELECTED_SUBREDDITS)) >= 4
