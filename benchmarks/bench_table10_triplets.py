"""Table 10: sequence distribution for URLs on all three platforms.

Paper: R→T→4 (36.3% alt / 35.3% main) and T→R→4 (29% / 18.8%) dominate;
the six subreddits head the sequence for 51% (alt) / 59% (main) of
triple-platform URLs; 4chan-headed sequences are the rarest.
"""

from repro.analysis import sequences
from repro.news.domains import NewsCategory
from repro.reporting import render_table


def test_table10_triplets(benchmark, bench_data, save_result):
    slices = bench_data.sequence_slices()
    alt = benchmark(sequences.triplet_distribution, slices,
                    NewsCategory.ALTERNATIVE)
    main = sequences.triplet_distribution(slices,
                                          NewsCategory.MAINSTREAM)
    alt_by = {r.sequence: r for r in alt}
    main_by = {r.sequence: r for r in main}
    all_sequences = sorted(set(alt_by) | set(main_by))
    text_rows = []
    for s in all_sequences:
        a = alt_by.get(s)
        m = main_by.get(s)
        text_rows.append([
            s,
            f"{a.count} ({a.percentage:.1f}%)" if a else "-",
            f"{m.count} ({m.percentage:.1f}%)" if m else "-",
        ])
    head_alt = sequences.head_of_sequence_share(alt, "R")
    head_main = sequences.head_of_sequence_share(main, "R")
    text = (render_table(
        ["Sequence", "Alternative (%)", "Mainstream (%)"], text_rows,
        title="Table 10 — triple-platform sequences")
        + f"\nReddit-headed share: alt {head_alt:.1f}% "
        + f"main {head_main:.1f}%")
    save_result("table10_triplets.txt", text)

    assert sum(r.count for r in alt) > 5
    assert sum(r.count for r in main) > 10
    # sequences ending at /pol/ dominate (R→T→4 + T→R→4)
    for by in (alt_by, main_by):
        ends_at_pol = sum(r.percentage for s, r in by.items()
                          if s.endswith("→4"))
        starts_at_pol = sum(r.percentage for s, r in by.items()
                            if s.startswith("4→"))
        assert ends_at_pol > starts_at_pol
    # Reddit heads a substantial share of triplets
    assert head_main > 25
