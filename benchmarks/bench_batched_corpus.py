"""Batched vs per-URL corpus EM: urls/sec per engine × corpus shape.

The batched engine exists for exactly one workload: thousands of small
cascades, where per-URL EM is NumPy-dispatch-bound (hundreds of kernel
launches per URL on arrays with tens of elements).  This bench fits the
same synthetic corpora with ``engine="per-url"`` and
``engine="batched"`` (both ``n_jobs=1``, so the comparison isolates the
packing, not process fan-out), checks the results agree within
tolerance, and reports urls/sec plus the batched speedup per shape.

Each run emits ``results/BENCH_batched_corpus.json``; ``BENCH_SMOKE=1``
shrinks the corpora for a fast CI pass (the JSON is emitted either
way).  Corpora are synthesized directly — no world build — so the full
mode stays in seconds, not minutes.
"""

import os
import time

import numpy as np
import pytest

from repro.config import HAWKES_PROCESSES, HawkesConfig
from repro.core.influence import UrlCascade, fit_corpus
from repro.news.domains import NewsCategory
from repro.reporting import render_table

from _helpers import write_bench_json

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (name, n_urls, events_per_url) — tiny cascades dominate the paper's
#: corpus (median URL has a handful of posts), small ones the tail.
SHAPES = ((("tiny-cascades", 120, 5), ("small-cascades", 60, 12))
          if SMOKE else
          (("tiny-cascades", 1500, 5), ("small-cascades", 400, 12)))

BENCH_HAWKES = HawkesConfig(max_lag_bins=120)

_RESULTS: dict = {}
_METRICS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    write_bench_json(_RESULTS, "BENCH_batched_corpus.json", case={
        "smoke": SMOKE,
        "shapes": [{"name": name, "n_urls": n, "events_per_url": m}
                   for name, n, m in SHAPES],
        "max_lag_bins": BENCH_HAWKES.max_lag_bins,
        "n_jobs": 1,
    }, metrics=_METRICS)


def build_corpus(n_urls, events_per_url, seed):
    """Synthetic selected-corpus lookalike: every URL clears the
    Twitter + /pol/ + subreddit bar, remaining events are random."""
    rng = np.random.default_rng(seed)
    cascades = []
    for i in range(n_urls):
        t0 = i * 1e6
        events = [(t0, "Twitter"), (t0 + 180.0, "/pol/"),
                  (t0 + 420.0, "The_Donald")]
        for _ in range(events_per_url - 3):
            name = str(rng.choice(HAWKES_PROCESSES))
            events.append((t0 + float(rng.uniform(0, 40_000)), name))
        events.sort()
        category = (NewsCategory.ALTERNATIVE if i % 2
                    else NewsCategory.MAINSTREAM)
        cascades.append(UrlCascade(f"u{i}", category, tuple(events)))
    return cascades


def _timed_fit(corpus, engine):
    start = time.perf_counter()
    result = fit_corpus(corpus, BENCH_HAWKES, method="em", engine=engine)
    return result, time.perf_counter() - start


def test_bench_batched_corpus(benchmark, save_result):
    corpora = {name: build_corpus(n, m, seed=17 + i)
               for i, (name, n, m) in enumerate(SHAPES)}
    first_shape = SHAPES[0][0]
    rows = []
    for name, n_urls, events_per_url in SHAPES:
        corpus = corpora[name]
        if name == first_shape:
            # One shape goes through the benchmark fixture so the run
            # is visible to pytest-benchmark's own reporting.
            per_url, per_url_s = benchmark.pedantic(
                _timed_fit, args=(corpus, "per-url"),
                rounds=1, iterations=1)
        else:
            per_url, per_url_s = _timed_fit(corpus, "per-url")
        batched, batched_s = _timed_fit(corpus, "batched")
        # The engines must agree before their timings are comparable.
        for ref, got in zip(per_url.fits, batched.fits):
            np.testing.assert_allclose(got.weights, ref.weights,
                                       rtol=5e-3, atol=1e-8)
        speedup = per_url_s / batched_s
        for engine, elapsed in (("per-url", per_url_s),
                                ("batched", batched_s)):
            _RESULTS[f"{name}/{engine}"] = {
                "ops_per_sec": n_urls / elapsed,
                "mean_seconds": elapsed / n_urls,
                "wall_seconds": elapsed,
                "n_urls": n_urls,
                "events_per_url": events_per_url,
            }
        _RESULTS[f"{name}/speedup"] = {"batched_over_per_url": speedup}
        rows.append([name, str(n_urls), str(events_per_url),
                     f"{n_urls / per_url_s:.1f}",
                     f"{n_urls / batched_s:.1f}", f"{speedup:.1f}x"])
    from repro.obs import get_registry
    _METRICS.update(get_registry().snapshot())
    table = render_table(
        ["Corpus", "URLs", "Ev/URL", "per-url URLs/s", "batched URLs/s",
         "Speedup"],
        rows, title=f"Corpus EM engines, n_jobs=1, max_lag="
                    f"{BENCH_HAWKES.max_lag_bins}"
                    f"{' (smoke)' if SMOKE else ''}")
    save_result("batched_corpus_throughput.txt", table)
    print()
    print(table)
