"""API/service benchmark: artifact-cache latency and HTTP throughput.

Two claims back the `repro.api` design:

- the artifact cache turns repeat queries into lookups: a warm
  ``table()``/``influence()`` call must be >= 10x faster than the cold
  compute (the PR's acceptance bar, asserted below even in smoke mode);
- the HTTP service serves warm results at interactive rates, and
  conditional requests (ETag / 304) cost even less because they never
  build a body.

``BENCH_SMOKE=1`` shrinks the world and sweep counts for CI.  Numbers
land in ``results/BENCH_api_serve.json``.
"""

from __future__ import annotations

import http.client
import math
import os
import threading
import time

from repro.api import Study, StudyService
from repro.config import HawkesConfig
from repro.synthesis.world import WorldConfig

from _helpers import record_ops, write_bench_json

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
CONFIG = WorldConfig(
    seed=13,
    n_stories_alternative=60 if SMOKE else 400,
    n_stories_mainstream=150 if SMOKE else 1100,
    n_twitter_users=80 if SMOKE else 500,
    n_reddit_users=70 if SMOKE else 400,
    n_generic_subreddits=20 if SMOKE else 80,
)
HAWKES = HawkesConfig(gibbs_iterations=10 if SMOKE else 40,
                      gibbs_burn_in=3 if SMOKE else 15)
MAX_URLS = 6 if SMOKE else 24
N_REQUESTS = 150 if SMOKE else 1200
WARM_ROUNDS = 50


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _warm_seconds(fn, rounds: int = WARM_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        _, elapsed = _timed(fn)
        best = min(best, elapsed)
    return best


def test_bench_api_cold_vs_warm(benchmark, tmp_path_factory):
    registry: dict = {}
    cache = tmp_path_factory.mktemp("api_cache")
    study = Study(world=CONFIG, hawkes=HAWKES, fit_seed=7,
                  max_urls=MAX_URLS, cache_dir=cache)

    _, cold_table = _timed(lambda: study.table(4))       # world+data+table
    _, cold_influence = _timed(study.influence)          # corpus+fits
    warm_table = _warm_seconds(lambda: study.table(4))
    warm_influence = _warm_seconds(study.influence)

    # Fresh session, same cache dir: warm from disk, zero recompute.
    fresh = Study(world=CONFIG, hawkes=HAWKES, fit_seed=7,
                  max_urls=MAX_URLS, cache_dir=cache)
    _, disk_table = _timed(lambda: fresh.table(4))
    _, disk_influence = _timed(fresh.influence)
    assert fresh.stats["computed"] == 0

    # The acceptance bar: warm queries skip recomputation entirely.
    assert warm_table * 10 <= cold_table
    assert warm_influence * 10 <= cold_influence
    assert disk_table * 10 <= cold_table
    assert disk_influence * 10 <= cold_influence

    benchmark(lambda: study.table(4))
    record_ops(registry, "warm_table_memo", benchmark)
    registry["artifact_latency"] = {
        "cold_table_seconds": cold_table,
        "warm_table_seconds": warm_table,
        "disk_table_seconds": disk_table,
        "table_speedup": cold_table / warm_table,
        "cold_influence_seconds": cold_influence,
        "warm_influence_seconds": warm_influence,
        "disk_influence_seconds": disk_influence,
        "influence_speedup": cold_influence / warm_influence,
    }

    registry["http"] = _measure_http(study)
    write_bench_json(registry, "BENCH_api_serve.json", case={
        "smoke": SMOKE,
        "max_urls": MAX_URLS,
        "gibbs_iterations": HAWKES.gibbs_iterations,
        "n_requests": N_REQUESTS,
    })
    print()
    print(f"cold table {cold_table:.3f}s -> warm {warm_table * 1e6:.0f}us "
          f"({cold_table / warm_table:.0f}x); "
          f"cold influence {cold_influence:.3f}s -> warm "
          f"{warm_influence * 1e6:.0f}us "
          f"({cold_influence / warm_influence:.0f}x)")
    latency = registry["http"]["table_latency_seconds"]
    print(f"HTTP: {registry['http']['table_requests_per_sec']:.0f} req/s "
          f"warm (p50 {latency['p50'] * 1e6:.0f}us, "
          f"p99 {latency['p99'] * 1e6:.0f}us), "
          f"{registry['http']['conditional_requests_per_sec']:.0f} "
          "req/s conditional (304)")


def _measure_http(study) -> dict:
    service = StudyService(study, port=0)
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    try:
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=30)
        try:
            def fetch(path, headers=None):
                conn.request("GET", path, headers=headers or {})
                response = conn.getresponse()
                return response.status, response.getheader("ETag"), \
                    response.read()

            status, etag, first = fetch("/tables/4")     # warm the body cache
            assert status == 200 and etag

            full_latencies = []
            for _ in range(N_REQUESTS):
                start = time.perf_counter()
                status, _, body = fetch("/tables/4")
                full_latencies.append(time.perf_counter() - start)
                assert status == 200
                assert body == first                     # byte-identical

            conditional_latencies = []
            for _ in range(N_REQUESTS):
                start = time.perf_counter()
                status, _, body = fetch("/tables/4",
                                        {"If-None-Match": etag})
                conditional_latencies.append(time.perf_counter() - start)
                assert status == 304
                assert body == b""
        finally:
            conn.close()
    finally:
        service.shutdown()
        service.close()
        thread.join(timeout=5)
    return {
        "n_requests": N_REQUESTS,
        "table_requests_per_sec": N_REQUESTS / sum(full_latencies),
        "conditional_requests_per_sec":
            N_REQUESTS / sum(conditional_latencies),
        "table_latency_seconds": _latency_summary(full_latencies),
        "conditional_latency_seconds":
            _latency_summary(conditional_latencies),
    }


def _percentile(samples: list[float], q: float) -> float:
    """Exact nearest-rank percentile over the measured latencies."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _latency_summary(samples: list[float]) -> dict:
    return {
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "p99": _percentile(samples, 0.99),
        "mean": sum(samples) / len(samples),
        "max": max(samples),
    }
