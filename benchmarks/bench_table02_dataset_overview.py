"""Table 2: posts with news URLs and unique URL counts per community split.

Paper: Twitter 486,700 posts / 42,550 alt / 236,480 main; six subreddits
620,530 / 40,046 / 301,840; other subreddits 1,228,105 / 24,027 /
726,948; /pol/ 90,537 / 8,963 / 40,164; other boards 7,131 / 615 /
5,513.  Shape: mainstream uniques dominate everywhere; /pol/ dwarfs the
baseline boards; other-Reddit has more mainstream but fewer alternative
uniques than the six subreddits.
"""

from repro.analysis import characterization as chz
from repro.reporting import render_table


def _slices(bench_data):
    return {
        "Twitter": bench_data.twitter,
        "Reddit (six selected subreddits)": bench_data.reddit_six,
        "Reddit (all other subreddits)": bench_data.reddit_other,
        "4chan (/pol/)": bench_data.pol,
        "4chan (/int/, /sci/, /sp/)": bench_data.fourchan_other,
    }


def test_table02_dataset_overview(benchmark, bench_data, save_result):
    named = _slices(bench_data)
    rows = benchmark(chz.dataset_overview, named)
    text = render_table(
        ["Platform", "Posts/Comments", "Alt. URLs", "Main. URLs"],
        [[r.name, r.posts_with_urls, r.unique_alternative,
          r.unique_mainstream] for r in rows],
        title="Table 2 — dataset overview")
    save_result("table02_dataset_overview.txt", text)

    by_name = {r.name: r for r in rows}
    pol = by_name["4chan (/pol/)"]
    other_boards = by_name["4chan (/int/, /sci/, /sp/)"]
    assert pol.posts_with_urls > 5 * other_boards.posts_with_urls
    for row in rows:
        assert row.unique_mainstream > row.unique_alternative
    six = by_name["Reddit (six selected subreddits)"]
    other = by_name["Reddit (all other subreddits)"]
    assert other.unique_mainstream > six.unique_mainstream
