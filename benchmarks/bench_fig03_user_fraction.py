"""Figure 3: CDF of per-user alternative-news fractions.

Paper shape: ~80% of users on both platforms share only mainstream
URLs; ~13% of Twitter users share only alternative URLs (likely bots);
mixed users span the whole [0, 1] preference range.
"""

import numpy as np

from repro.analysis import characterization as chz
from repro.reporting import write_series
from _helpers import RESULTS_DIR


def _both(bench_data):
    return {
        "twitter": chz.user_alternative_fraction(bench_data.twitter),
        "reddit6": chz.user_alternative_fraction(bench_data.reddit_six),
    }


def test_fig03_user_fraction(benchmark, bench_data, save_result):
    result = benchmark(_both, bench_data)

    columns = {}
    lines = []
    for name, fractions in result.items():
        lines.append(
            f"{name}: users={fractions.n_users} "
            f"main-only={fractions.pct_mainstream_only:.1f}% "
            f"alt-only={fractions.pct_alternative_only:.1f}%")
        for label, ecdf in (("all", fractions.all_users),
                            ("mixed", fractions.mixed_users)):
            if ecdf is None:
                continue
            grid = np.linspace(0, 1, 41)
            columns[f"{name}_{label}_x"] = list(grid)
            columns[f"{name}_{label}_F"] = list(np.round(ecdf(grid), 4))
    write_series(RESULTS_DIR / "fig03_user_fraction.csv", columns)
    save_result("fig03_summary.txt", "\n".join(lines))

    twitter = result["twitter"]
    reddit = result["reddit6"]
    assert twitter.pct_mainstream_only > 50
    assert reddit.pct_mainstream_only > 50
    # Twitter's alt-only share (bots) well above Reddit's
    assert twitter.pct_alternative_only > reddit.pct_alternative_only
    assert twitter.pct_alternative_only > 5
    # mixed users cover a wide preference range
    assert twitter.mixed_users.values.max() > 0.6
    assert twitter.mixed_users.values.min() < 0.4
