"""Ablation: bot removal — the counterfactual the paper declined.

Section 3 argues bot activity is part of the ecosystem and keeps it.
Here we detect bot-like accounts with the BotOrNot-style scorer, filter
their tweets, and measure what changes: the alternative-news share on
Twitter and the detection quality against the world's ground truth.
"""

from repro.analysis.bots import detect_bots, evaluate_detection
from repro.news.domains import NewsCategory
from repro.reporting import render_table

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def test_ablation_bots(benchmark, bench_data, save_result):
    detection = benchmark(detect_bots, bench_data.twitter, 0.4)
    filtered = detection.filter_dataset(bench_data.twitter)

    world = bench_data.world
    truth = {uid for uid, u in world.twitter.users.items() if u.is_bot}
    authors = {r.author_id for r in bench_data.twitter
               if r.author_id is not None}
    quality = evaluate_detection(detection, truth, authors)

    def alt_share(dataset):
        alt = dataset.url_post_count(ALT)
        main = dataset.url_post_count(MAIN)
        return 100.0 * alt / (alt + main) if alt + main else 0.0

    rows = [
        ["with bots", len(bench_data.twitter),
         f"{alt_share(bench_data.twitter):.1f}%"],
        ["bots filtered", len(filtered), f"{alt_share(filtered):.1f}%"],
    ]
    text = (render_table(
        ["Dataset", "Tweets", "Alternative share"], rows,
        title="Ablation — bot removal on Twitter")
        + f"\ndetected {len(detection.detected)} accounts; "
        + f"precision {quality.precision:.2f} recall {quality.recall:.2f} "
        + f"f1 {quality.f1:.2f} "
        + f"(base rate {len(truth & authors) / max(1, len(authors)):.2f})")
    save_result("ablation_bots.txt", text)

    # filtering removes content and lowers the alternative share
    assert len(filtered) < len(bench_data.twitter)
    assert alt_share(filtered) <= alt_share(bench_data.twitter)
    # detection is far better than chance on precision; recall is
    # inherently low because most synthetic bots post too rarely to
    # distinguish — mirroring the paper's skepticism (Section 3) that
    # bot classification is reliable enough to subtract.
    base_rate = len(truth & authors) / max(1, len(authors))
    assert detection.detected, "no accounts flagged at threshold 0.4"
    assert quality.precision > 2 * base_rate
