"""Figure 1: CDF of per-URL appearance counts within each platform.

Paper shape: a large share of URLs appear exactly once on every
platform; on Twitter, alternative URLs are reposted more than
mainstream ones (the alternative CDF sits below the mainstream CDF).
"""

import numpy as np

from repro.analysis import characterization as chz
from repro.news.domains import NewsCategory
from repro.reporting import write_series
from _helpers import RESULTS_DIR


def _all_cdfs(bench_data):
    slices = {
        "reddit6": bench_data.reddit_six,
        "pol": bench_data.pol,
        "twitter": bench_data.twitter,
    }
    out = {}
    for name, dataset in slices.items():
        for category in NewsCategory:
            ecdf = chz.url_appearance_cdf(dataset, category)
            out[(name, category)] = ecdf
    return out


def test_fig01_url_appearance(benchmark, bench_data, save_result):
    cdfs = benchmark(_all_cdfs, bench_data)

    columns = {}
    for (name, category), ecdf in cdfs.items():
        if ecdf is None:
            continue
        xs, ys = ecdf.on_log_grid(48)
        columns[f"{name}_{category.value}_x"] = list(np.round(xs, 3))
        columns[f"{name}_{category.value}_F"] = list(np.round(ys, 4))
    write_series(RESULTS_DIR / "fig01_url_appearance.csv", columns)
    save_result("fig01_summary.txt", "\n".join(
        f"{name} {category.value}: P(count=1)={ecdf(1):.2f} "
        f"median={ecdf.median:.0f} max={ecdf.values.max():.0f}"
        for (name, category), ecdf in cdfs.items() if ecdf is not None))

    for (name, category), ecdf in cdfs.items():
        if ecdf is None:
            continue
        # substantial single-appearance mass on every platform
        assert ecdf(1) > 0.25
    # Twitter: alternative URLs repost at least as much as mainstream
    # (robust comparison: single-appearance mass and log-mean counts,
    # since the raw mean is dominated by a few mega-viral URLs)
    tw_alt = cdfs[("twitter", NewsCategory.ALTERNATIVE)]
    tw_main = cdfs[("twitter", NewsCategory.MAINSTREAM)]
    assert tw_alt(1) <= tw_main(1) + 0.02
    assert (np.log(tw_alt.values).mean()
            >= 0.9 * np.log(tw_main.values).mean())
