"""Quality gate: MCMC convergence and model fit on real corpus URLs.

The paper reports no convergence evidence for its per-URL Gibbs fits.
This bench fits representative corpus URLs with long chains and runs
Geweke/ESS diagnostics plus posterior predictive checks; the busiest
URLs are also reported (unasserted) because their tightly-coupled
posteriors mix much more slowly — a caveat the paper never surfaces.
"""

import numpy as np

from repro.config import HawkesConfig
from repro.core.hawkes.basis import LogBinnedLagBasis
from repro.core.hawkes.diagnostics import (
    diagnose_weight_chains,
    posterior_predictive_check,
)
from repro.core.hawkes.inference import Priors, fit_gibbs
from repro.core.influence import cascade_to_events
from repro.reporting import render_table

CONFIG = HawkesConfig(gibbs_iterations=300, gibbs_burn_in=100)


def _fit_with_samples(cascade, rng):
    events = cascade_to_events(cascade, delta_t=CONFIG.delta_t)
    priors = Priors(weight_rate=CONFIG.weight_rate)
    return events, fit_gibbs(
        events, CONFIG.max_lag_bins,
        basis=LogBinnedLagBasis(CONFIG.max_lag_bins),
        priors=priors, n_iterations=CONFIG.gibbs_iterations,
        burn_in=CONFIG.gibbs_burn_in, rng=rng, keep_samples=True)


def test_diagnostics(benchmark, bench_corpus, save_result):
    rng = np.random.default_rng(11)
    ranked = sorted(bench_corpus, key=lambda c: len(c.events))
    # representative URLs: around the corpus median event count
    mid = len(ranked) // 2
    representative = ranked[mid - 2: mid + 2]
    busiest = ranked[-2:]
    events, result = benchmark(_fit_with_samples, representative[0], rng)

    rows = []
    representative_ok = True
    for cascade, asserted in ([(c, True) for c in representative]
                              + [(c, False) for c in busiest]):
        ev, res = _fit_with_samples(cascade, rng)
        diag = diagnose_weight_chains(res.weight_samples)
        check = posterior_predictive_check(res.params, ev,
                                           n_replicates=10, rng=rng)
        ok = (diag.converged(z_threshold=3.0, min_ess=5.0,
                             max_flagged_fraction=0.15)
              and check.acceptable(threshold=4.0))
        if asserted:
            representative_ok = representative_ok and ok
        rows.append([
            cascade.url.rsplit("/", 1)[-1][:28],
            len(cascade.events),
            f"{100 * diag.fraction_large_geweke(3.0):.0f}%",
            f"{diag.min_ess:.1f}",
            f"{np.abs(check.z_scores).max():.2f}",
            ("ok" if ok else "slow-mixing")
            + ("" if asserted else " (reported only)"),
        ])
    text = render_table(
        ["URL", "events", "Geweke |z|>3 cells", "min ESS",
         "max predictive |z|", "verdict"], rows,
        title="Gibbs convergence diagnostics "
              "(4 median-size + 2 busiest URLs, 300 sweeps)")
    save_result("diagnostics.txt", text)

    assert representative_ok, \
        "Gibbs chains fail to converge on representative URLs"
