"""Figure 8: the domain -> platform "who saw it first" digraphs.

Paper shape: breitbart.com URLs surface first on the six subreddits
more often than on Twitter; infowars/rt/sputniknews surface on Twitter
first; /pol/ is almost never the first platform for any domain.
"""

import networkx as nx

from repro.analysis import graphs
from repro.config import PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER
from repro.news.domains import NewsCategory
from repro.reporting import render_table

PLATFORMS = (PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER)


def _build(bench_data, category):
    return graphs.build_ecosystem_graph(
        bench_data.sequence_slices(), category, bench_data.url_domains())


def test_fig08_ecosystem_graph(benchmark, bench_data, save_result):
    alt_graph = benchmark(_build, bench_data, NewsCategory.ALTERNATIVE)
    main_graph = _build(bench_data, NewsCategory.MAINSTREAM)

    sections = []
    for label, graph in (("alternative", alt_graph),
                         ("mainstream", main_graph)):
        rows = graphs.domain_first_platform_shares(graph, PLATFORMS)
        sections.append(render_table(
            ["Domain", "URLs", "/pol/ first", "Reddit6 first",
             "Twitter first"],
            [[r.domain, r.total,
              f"{r.shares[PLATFORM_POL]:.2f}",
              f"{r.shares[PLATFORM_REDDIT]:.2f}",
              f"{r.shares[PLATFORM_TWITTER]:.2f}"] for r in rows[:20]],
            title=f"Figure 8 ({label}) — first-appearance shares"))
        hops = graphs.platform_hop_weights(graph, PLATFORMS)
        sections.append("first-hop edges: " + ", ".join(
            f"{a}→{b}: {w}" for (a, b), w in sorted(hops.items())))
    save_result("fig08_ecosystem_graph.txt", "\n\n".join(sections))

    assert isinstance(alt_graph, nx.DiGraph)
    alt_rows = graphs.domain_first_platform_shares(alt_graph, PLATFORMS)
    assert alt_rows, "no alternative domains in graph"
    # /pol/ is never the dominant first platform for any major domain
    for row in alt_rows[:10]:
        assert row.dominant != PLATFORM_POL
    # every domain's shares sum to one
    for row in alt_rows:
        assert abs(sum(row.shares.values()) - 1.0) < 1e-9
    # platform hop edges exist in the mainstream graph
    hops = graphs.platform_hop_weights(main_graph, PLATFORMS)
    assert sum(hops.values()) > 10
