"""Figure 5: CDF of lag between a URL's first post and later reposts.

Paper shape: URLs are recycled for months; Twitter shows shorter lags
than Reddit and /pol/; an inflection appears around the 24-hour mark;
mainstream news propagates a bit faster than alternative on the six
subreddits.
"""

import numpy as np

from repro.analysis import temporal
from repro.news.domains import NewsCategory
from repro.reporting import write_series
from _helpers import RESULTS_DIR


def _lag_cdfs(bench_data):
    slices = {
        "reddit6": bench_data.reddit_six,
        "pol": bench_data.pol,
        "twitter": bench_data.twitter,
    }
    return {(name, category): temporal.repost_lag_cdf(ds, category)
            for name, ds in slices.items() for category in NewsCategory}


def test_fig05_repost_lags(benchmark, bench_data, save_result):
    cdfs = benchmark(_lag_cdfs, bench_data)

    columns = {}
    lines = []
    for (name, category), ecdf in cdfs.items():
        if ecdf is None:
            continue
        xs, ys = ecdf.on_log_grid(48)
        columns[f"{name}_{category.value}_hours"] = list(np.round(xs, 4))
        columns[f"{name}_{category.value}_F"] = list(np.round(ys, 4))
        lines.append(
            f"{name} {category.value}: median={ecdf.median:.1f}h "
            f"F(24h)={temporal.repost_lag_day_inflection(ecdf):.2f} "
            f"max={ecdf.values.max():.0f}h")
    write_series(RESULTS_DIR / "fig05_repost_lags.csv", columns)
    save_result("fig05_summary.txt", "\n".join(lines))

    alt = NewsCategory.ALTERNATIVE
    main = NewsCategory.MAINSTREAM
    # long recycling tails: months (> 1000 h) on at least one platform
    assert any(e is not None and e.values.max() > 1000
               for e in cdfs.values())
    # Twitter reposts faster than /pol/
    if cdfs[("twitter", main)] and cdfs[("pol", main)]:
        assert cdfs[("twitter", main)].median <= \
            cdfs[("pol", main)].median * 2.5
    # a meaningful share of reposts happen within the first day
    for ecdf in cdfs.values():
        if ecdf is not None:
            assert ecdf(24.0) > 0.2
