"""Live engine: ingestion throughput and incremental-vs-batch scaling.

Two measurements back the `repro.live` design:

* streaming the full corpus through the bus + aggregators, reported as
  records/sec;
* the cost of keeping answers fresh — after N records, applying Δ more
  and re-querying is O(Δ) for the live engine, while recomputing the
  same answers by batch scan is O(N).  The scaling table shows the
  batch/incremental ratio growing with N.
"""

from __future__ import annotations

import time

from repro.analysis import characterization as chz
from repro.analysis import sequences
from repro.collection.store import Dataset
from repro.live import EventBus, LiveEngine, dataset_source
from repro.news.domains import NewsCategory
from repro.reporting import render_table

from _helpers import RESULTS_DIR  # noqa: F401 (pytest adds benchmarks/)

ALT = NewsCategory.ALTERNATIVE


def _merged_records(bench_data):
    return sorted(bench_data.merged(), key=lambda r: r.created_at)


def _batch_answers(records):
    """Recompute the headline views from scratch (the O(N) path)."""
    dataset = Dataset(records)
    slices = {
        "/pol/": chz.slice_board(dataset.filter(
            lambda r: r.platform == "4chan")),
        "Reddit": chz.slice_six_subreddits(dataset.filter(
            lambda r: r.platform == "reddit")),
        "Twitter": dataset.filter(lambda r: r.platform == "twitter"),
    }
    return (chz.domain_platform_fractions(slices, ALT),
            sequences.first_hop_distribution(slices, ALT))


def _live_answers(engine):
    return (engine.domains.platform_fractions(ALT),
            engine.first_hops.first_hop(ALT))


def test_live_ingest_throughput(benchmark, bench_data, save_result):
    records = _merged_records(bench_data)

    def ingest():
        engine = LiveEngine(EventBus([("replay", iter(records))]),
                            summary_every=0)
        engine.run()
        return engine

    engine = benchmark(ingest)
    assert engine.records_seen == len(records)

    start = time.perf_counter()
    ingest()
    elapsed = time.perf_counter() - start
    throughput = len(records) / elapsed
    save_result(
        "live_ingest_throughput.txt",
        f"live ingest: {len(records)} records in {elapsed:.3f}s "
        f"-> {throughput:,.0f} records/sec")
    assert throughput > 1000  # sanity floor; real runs are far above


def test_incremental_vs_batch_scaling(bench_data, save_result):
    records = _merged_records(bench_data)
    n_total = len(records)
    delta = max(500, n_total // 50)
    budget = n_total - delta
    checkpoints = sorted({max(delta, int(budget * f))
                          for f in (0.25, 0.5, 0.75, 1.0)})

    engine = LiveEngine(summary_every=0)
    consumed = 0
    rows = []
    ratios = []
    inc_times = []
    for target in checkpoints:
        while consumed < target:
            engine.process(records[consumed])
            consumed += 1

        start = time.perf_counter()
        for record in records[consumed:consumed + delta]:
            engine.process(record)
        live = _live_answers(engine)
        t_incremental = time.perf_counter() - start
        consumed += delta

        start = time.perf_counter()
        batch = _batch_answers(records[:consumed])
        t_batch = time.perf_counter() - start

        assert live == batch  # same stream -> identical answers
        ratio = t_batch / t_incremental if t_incremental else float("inf")
        ratios.append(ratio)
        inc_times.append(t_incremental)
        rows.append([f"{consumed}", f"{delta}",
                     f"{1000 * t_incremental:.2f}",
                     f"{1000 * t_batch:.2f}", f"{ratio:.1f}x"])

    text = render_table(
        ["N records", "Δ", "incremental (ms)", "batch recompute (ms)",
         "speedup"],
        rows, title="Incremental update (O(Δ)) vs batch recompute (O(N))")
    save_result("live_ingest_scaling.txt", text)

    # Batch cost grows with N; the incremental update does not, so at
    # the full corpus the live path must win clearly.
    assert ratios[-1] > 2.0
    # The incremental update's cost is driven by Δ, not N: it must not
    # blow up between the smallest and largest prefix (generous 10x
    # bound absorbs timer noise).
    assert inc_times[-1] < 10 * max(inc_times[0], 1e-4)
