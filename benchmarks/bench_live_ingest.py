"""Live engine: row vs columnar ingest throughput + incremental scaling.

Three measurements back the `repro.live` design:

* **row vs columnar drain** — the same merged stream pushed through the
  per-row path (`EventBus.events` + `update()`) and the columnar path
  (`EventBus.event_batches` + `update_batch()`) at several batch sizes.
  Engines are asserted state-identical before the timings are compared;
  the headline number is the columnar speedup at batch size >= 512.
  Batches are pre-packed so the timed region isolates the consume side;
  pack time is reported separately (it is input materialization — a
  real ingest packs while the previous chunk is being consumed).  Row
  and columnar reps are interleaved so machine drift cancels instead of
  biasing one side.
* **ingest throughput** — full-corpus records/sec for both paths, in
  ``results/BENCH_live_ingest.json``.
* **incremental vs batch scaling** — after N records, applying Δ more
  is O(Δ) live but O(N) by rescan; the ratio must grow with N.

``BENCH_SMOKE=1`` shrinks the world for a fast CI pass (the JSON is
emitted either way).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import characterization as chz
from repro.analysis import sequences
from repro.collection.columnar import batch_records
from repro.collection.store import Dataset
from repro.live import EventBus, LiveEngine
from repro.news.domains import NewsCategory
from repro.pipeline import generate_and_collect
from repro.reporting import render_table
from repro.synthesis.world import WorldConfig

from _helpers import write_bench_json

ALT = NewsCategory.ALTERNATIVE

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

BATCH_SIZES = (64, 512, 4096)

#: Interleaved reps per path; best-of cancels one-off machine noise.
REPS = 2 if SMOKE else 5

INGEST_CONFIG = (WorldConfig(seed=7, n_stories_alternative=120,
                             n_stories_mainstream=320,
                             n_twitter_users=150, n_reddit_users=120)
                 if SMOKE else WorldConfig(seed=7))

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    write_bench_json(_RESULTS, "BENCH_live_ingest.json", case={
        "smoke": SMOKE,
        "world_seed": INGEST_CONFIG.seed,
        "batch_sizes": list(BATCH_SIZES),
        "reps": REPS,
    })


@pytest.fixture(scope="module")
def live_records():
    dataset = generate_and_collect(INGEST_CONFIG).merged()
    return sorted(dataset, key=lambda r: r.created_at)


def _row_run(records):
    engine = LiveEngine(EventBus([("replay", iter(records))]),
                        summary_every=0)
    engine.run()
    return engine


def _columnar_run(batches, snapshots, batch_size):
    # Restoring the pack-time cache snapshot inside the timed region
    # drops consumer-derived caches from the previous rep, so every rep
    # measures the same cold-consume work.
    for batch, snapshot in zip(batches, snapshots):
        batch._cache = dict(snapshot)
    bus = EventBus()
    bus.add_batch_source("replay", iter(batches))
    engine = LiveEngine(bus, summary_every=0, batch_size=batch_size)
    engine.run()
    return engine


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def test_live_ingest_row_vs_columnar(benchmark, live_records, save_result):
    records = live_records
    n = len(records)

    packed = {}
    for batch_size in BATCH_SIZES:
        start = time.perf_counter()
        batches = list(batch_records(records, batch_size))
        pack_seconds = time.perf_counter() - start
        snapshots = [dict(batch._cache) for batch in batches]
        packed[batch_size] = (batches, snapshots, pack_seconds)

    # One row rep rides the benchmark fixture so the run is visible to
    # pytest-benchmark's own reporting; the rest interleave manually.
    row_engine, best_row = benchmark.pedantic(
        _timed, args=(_row_run, records), rounds=1, iterations=1)
    reference = row_engine.state_dict()
    best_col = dict.fromkeys(BATCH_SIZES, float("inf"))
    for rep in range(REPS):
        if rep:
            _, elapsed = _timed(_row_run, records)
            best_row = min(best_row, elapsed)
        for batch_size in BATCH_SIZES:
            batches, snapshots, _ = packed[batch_size]
            engine, elapsed = _timed(
                _columnar_run, batches, snapshots, batch_size)
            best_col[batch_size] = min(best_col[batch_size], elapsed)
            if rep == 0:
                # Both drains must agree exactly — values and key
                # order — before their timings are comparable.
                assert engine.state_dict() == reference

    _RESULTS["row"] = {
        "ops_per_sec": n / best_row,
        "mean_seconds": best_row / n,
        "wall_seconds": best_row,
        "records": n,
    }
    rows = [["row", "-", f"{n / best_row:,.0f}", "-", "1.00x"]]
    for batch_size in BATCH_SIZES:
        _, _, pack_seconds = packed[batch_size]
        elapsed = best_col[batch_size]
        speedup = best_row / elapsed
        _RESULTS[f"columnar/{batch_size}"] = {
            "ops_per_sec": n / elapsed,
            "mean_seconds": elapsed / n,
            "wall_seconds": elapsed,
            "records": n,
            "pack_seconds": pack_seconds,
            "speedup_vs_row": speedup,
        }
        rows.append(["columnar", str(batch_size), f"{n / elapsed:,.0f}",
                     f"{1000 * pack_seconds:.1f}", f"{speedup:.2f}x"])

    table = render_table(
        ["Path", "Batch", "records/sec", "pack (ms)", "speedup"],
        rows, title=f"Live ingest: row vs columnar drain, {n} records"
                    f"{' (smoke)' if SMOKE else ''}")
    save_result("live_ingest_throughput.txt", table)
    print()
    print(table)

    # The acceptance bar: >= 3x records/sec at batch size >= 512.  The
    # smoke world is too small to hold the full-corpus margin, so CI
    # only checks that the columnar path wins at all.
    assert _RESULTS["columnar/512"]["speedup_vs_row"] > (1.0 if SMOKE
                                                         else 3.0)


def _batch_answers(records):
    """Recompute the headline views from scratch (the O(N) path)."""
    dataset = Dataset(records)
    slices = {
        "/pol/": chz.slice_board(dataset.filter(
            lambda r: r.platform == "4chan")),
        "Reddit": chz.slice_six_subreddits(dataset.filter(
            lambda r: r.platform == "reddit")),
        "Twitter": dataset.filter(lambda r: r.platform == "twitter"),
    }
    return (chz.domain_platform_fractions(slices, ALT),
            sequences.first_hop_distribution(slices, ALT))


def _live_answers(engine):
    return (engine.domains.platform_fractions(ALT),
            engine.first_hops.first_hop(ALT))


def test_incremental_vs_batch_scaling(live_records, save_result):
    records = live_records
    n_total = len(records)
    delta = max(500, n_total // 50)
    budget = n_total - delta
    checkpoints = sorted({max(delta, int(budget * f))
                          for f in (0.25, 0.5, 0.75, 1.0)})

    engine = LiveEngine(summary_every=0)
    consumed = 0
    rows = []
    ratios = []
    inc_times = []
    for target in checkpoints:
        while consumed < target:
            engine.process(records[consumed])
            consumed += 1

        start = time.perf_counter()
        for record in records[consumed:consumed + delta]:
            engine.process(record)
        live = _live_answers(engine)
        t_incremental = time.perf_counter() - start
        consumed += delta

        start = time.perf_counter()
        batch = _batch_answers(records[:consumed])
        t_batch = time.perf_counter() - start

        assert live == batch  # same stream -> identical answers
        ratio = t_batch / t_incremental if t_incremental else float("inf")
        ratios.append(ratio)
        inc_times.append(t_incremental)
        rows.append([f"{consumed}", f"{delta}",
                     f"{1000 * t_incremental:.2f}",
                     f"{1000 * t_batch:.2f}", f"{ratio:.1f}x"])

    text = render_table(
        ["N records", "Δ", "incremental (ms)", "batch recompute (ms)",
         "speedup"],
        rows, title="Incremental update (O(Δ)) vs batch recompute (O(N))")
    save_result("live_ingest_scaling.txt", text)

    # Batch cost grows with N; the incremental update does not, so at
    # the full corpus the live path must win clearly.
    assert ratios[-1] > 2.0
    # The incremental update's cost is driven by Δ, not N: it must not
    # blow up between the smallest and largest prefix (generous 10x
    # bound absorbs timer noise).
    assert inc_times[-1] < 10 * max(inc_times[0], 1e-4)
