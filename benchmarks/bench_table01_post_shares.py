"""Table 1: total posts crawled and share containing news URLs.

Paper: Twitter 0.022% alt / 0.070% main; Reddit 0.023% / 0.181%;
4chan 0.050% / 0.197%.  Shape: mainstream exceeds alternative on every
platform, and 4chan has the highest alternative share.
"""

from repro.analysis import characterization as chz
from repro.reporting import render_table


def test_table01_post_shares(benchmark, bench_data, save_result):
    world = bench_data.world
    totals = {
        "Twitter": world.twitter.total_posts,
        "Reddit (posts + comments)": world.reddit.total_posts,
        "4chan": world.fourchan.total_posts,
    }
    datasets = {
        "Twitter": bench_data.twitter,
        "Reddit (posts + comments)": bench_data.reddit,
        "4chan": bench_data.fourchan,
    }
    rows = benchmark(chz.total_post_shares, totals, datasets)
    text = render_table(
        ["Platform", "Total Posts", "% Alt.", "% Main."],
        [[r.platform, r.total_posts, f"{r.pct_alternative:.3f}%",
          f"{r.pct_mainstream:.3f}%"] for r in rows],
        title="Table 1 — total posts and news-URL share")
    save_result("table01_post_shares.txt", text)

    by_name = {r.platform: r for r in rows}
    for row in rows:
        assert row.pct_mainstream > row.pct_alternative > 0
    assert by_name["Twitter"].total_posts > by_name["4chan"].total_posts
