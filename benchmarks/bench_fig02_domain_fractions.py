"""Figure 2: per-domain platform fractions for the top-20 domains.

Paper shape: the top-4 alternative domains (breitbart, rt, infowars,
sputniknews) spread across all three platforms, while some outlets are
platform-specific — therealstrategy.com is essentially Twitter-only.
"""

from repro.analysis import characterization as chz
from repro.news.domains import NewsCategory
from repro.reporting import render_table


def _fractions(bench_data, category):
    named = {
        "/pol/": bench_data.pol,
        "Reddit (6 selected subreddits)": bench_data.reddit_six,
        "Twitter": bench_data.twitter,
    }
    return chz.domain_platform_fractions(named, category, top_n=20)


def test_fig02_domain_fractions(benchmark, bench_data, save_result):
    alt = benchmark(_fractions, bench_data, NewsCategory.ALTERNATIVE)
    main = _fractions(bench_data, NewsCategory.MAINSTREAM)

    def rows_of(shares):
        return [[s.domain, s.total,
                 f"{s.fractions['/pol/']:.2f}",
                 f"{s.fractions['Reddit (6 selected subreddits)']:.2f}",
                 f"{s.fractions['Twitter']:.2f}"] for s in shares]

    text = (render_table(
        ["Domain (Alt.)", "Total", "/pol/", "Reddit6", "Twitter"],
        rows_of(alt), title="Figure 2(a) — alternative domains")
        + "\n\n" + render_table(
        ["Domain (Main.)", "Total", "/pol/", "Reddit6", "Twitter"],
        rows_of(main), title="Figure 2(b) — mainstream domains"))
    save_result("fig02_domain_fractions.txt", text)

    assert alt[0].domain == "breitbart.com"
    top4 = {s.domain for s in alt[:4]}
    assert {"breitbart.com", "rt.com"} <= top4
    # therealstrategy.com: Twitter-dominant when present
    trs = next((s for s in alt if s.domain == "therealstrategy.com"), None)
    if trs is not None:
        assert trs.dominant if hasattr(trs, "dominant") else True
        assert trs.fractions["Twitter"] > 0.5
    for share in alt + main:
        assert abs(sum(share.fractions.values()) - 1.0) < 1e-9
