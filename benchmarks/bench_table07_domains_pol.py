"""Table 7: top-20 domains on /pol/.

Paper: breitbart.com 53.00% and rt.com 28.22% of alternative URLs;
theguardian.com 14.10% of mainstream.
"""

from _helpers import render_top_domains


def test_table07_domains_pol(benchmark, bench_data, save_result):
    text, alt, main = benchmark(
        render_top_domains, bench_data.pol,
        "Table 7 — top domains, /pol/")
    save_result("table07_domains_pol.txt", text)

    assert alt[0].name == "breitbart.com"
    assert alt[0].percentage > 35
    alt_top4 = {r.name for r in alt[:4]}
    assert "rt.com" in alt_top4
    main_top5 = {r.name for r in main[:5]}
    assert main_top5 & {"theguardian.com", "nytimes.com", "cnn.com"}
