"""Figure 10: mean Hawkes weights per category with KS significance.

Paper: W(Twitter→Twitter) is the largest cell — 0.1554 alternative vs
0.1096 mainstream (+41.9%, p<0.01); Twitter-source rows show the most
significant alt/main differences; weights sit in the 0.04-0.16 range.
Since the synthetic world is *generated* from the paper's Figure 10
matrices, this bench is a parameter-recovery check of the full
pipeline.
"""

import numpy as np

from repro.config import HAWKES_PROCESSES
from repro.core import aggregate_weights
from repro.reporting import render_matrix_cells
from repro.synthesis.params import (
    PAPER_WEIGHTS_ALTERNATIVE,
    PAPER_WEIGHTS_MAINSTREAM,
)


def test_fig10_mean_weights(benchmark, bench_fits, save_result):
    agg = benchmark(aggregate_weights, bench_fits)

    stars = agg.significance_stars()
    cells = [[[f"A: {agg.mean_alternative[i, j]:.4f}",
               f"M: {agg.mean_mainstream[i, j]:.4f}",
               f"{agg.percent_change[i, j]:+.1f}% {stars[i, j]}".strip()]
              for j in range(8)] for i in range(8)]
    text = render_matrix_cells(HAWKES_PROCESSES, cells,
                               title="Figure 10 — mean weights "
                                     "(source rows, destination columns)")
    save_result("fig10_mean_weights.txt", text)

    twitter = HAWKES_PROCESSES.index("Twitter")
    # Twitter self-excitation is the global maximum, both categories
    assert agg.mean_alternative.argmax() == twitter * 8 + twitter
    assert agg.mean_mainstream.argmax() == twitter * 8 + twitter
    # and alternative self-excitation beats mainstream (paper: +41.9%)
    assert (agg.mean_alternative[twitter, twitter]
            > agg.mean_mainstream[twitter, twitter])
    # recovered weights correlate with the generating ground truth
    for measured, truth in (
            (agg.mean_alternative, PAPER_WEIGHTS_ALTERNATIVE),
            (agg.mean_mainstream, PAPER_WEIGHTS_MAINSTREAM)):
        corr = np.corrcoef(measured.ravel(), truth.ravel())[0, 1]
        assert corr > 0.5, f"weight recovery correlation too low: {corr}"
    # all weights in a plausible range
    assert agg.mean_alternative.max() < 1.0
    assert agg.mean_alternative.min() >= 0.0
