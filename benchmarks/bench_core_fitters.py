"""Microbenchmarks of the statistical core.

Times the pieces every experiment pays for: branching simulation,
a single Gibbs fit, a single EM fit, and log-likelihood evaluation, on
a standardized 8-process synthetic cascade sized like a busy corpus URL.
"""

import numpy as np
import pytest

from repro.core.hawkes import (
    HawkesParams,
    fit_em,
    fit_gibbs,
    simulate_branching,
)
from repro.core.hawkes.basis import LogBinnedLagBasis
from repro.core.hawkes.model import discrete_log_likelihood

K = 8
MAX_LAG = 720


@pytest.fixture(scope="module")
def standard_case():
    pmf = np.exp(-np.arange(1, MAX_LAG + 1) / 90.0)
    pmf /= pmf.sum()
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.03, 0.08, (K, K))
    np.fill_diagonal(weights, rng.uniform(0.06, 0.12, K))
    params = HawkesParams(
        background=rng.uniform(0.0005, 0.003, K),
        weights=weights,
        impulse=np.tile(pmf, (K, K, 1)),
    )
    events = simulate_branching(params, 10_000, np.random.default_rng(1))
    return params, events


def test_bench_simulate_branching(benchmark, standard_case):
    params, _ = standard_case
    result = benchmark(simulate_branching, params, 10_000,
                       np.random.default_rng(2))
    assert result.total_events > 0


def test_bench_log_likelihood(benchmark, standard_case):
    params, events = standard_case
    value = benchmark(discrete_log_likelihood, params, events)
    assert np.isfinite(value)


def test_bench_fit_gibbs(benchmark, standard_case):
    _, events = standard_case
    basis = LogBinnedLagBasis(MAX_LAG)

    def run():
        return fit_gibbs(events, MAX_LAG, basis=basis, n_iterations=40,
                         burn_in=15, rng=np.random.default_rng(3),
                         keep_samples=False)

    result = benchmark(run)
    assert result.params.n_processes == K


def test_bench_fit_em(benchmark, standard_case):
    _, events = standard_case
    basis = LogBinnedLagBasis(MAX_LAG)

    def run():
        return fit_em(events, MAX_LAG, basis=basis, max_iterations=50)

    result = benchmark(run)
    assert result.params.n_processes == K
