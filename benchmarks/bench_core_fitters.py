"""Microbenchmarks of the statistical core.

Times the pieces every experiment pays for: branching simulation,
a single Gibbs fit, a single EM fit, and log-likelihood evaluation, on
a standardized 8-process synthetic cascade sized like a busy corpus URL.

Each run also emits ``results/BENCH_core_fitters.json`` with ops/sec
per benchmark, so CI can archive the perf trajectory.  Set
``BENCH_SMOKE=1`` to shrink the case (fewer bins and sweeps) for a fast
CI smoke pass; the JSON is emitted either way.
"""

import os

import numpy as np
import pytest

from repro.core.hawkes import (
    HawkesParams,
    fit_em,
    fit_gibbs,
    simulate_branching,
)
from repro.core.hawkes.basis import LogBinnedLagBasis
from repro.core.hawkes.model import discrete_log_likelihood

from _helpers import record_ops, write_bench_json

K = 8
MAX_LAG = 720

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_BINS = 2_000 if SMOKE else 10_000
GIBBS_SWEEPS, GIBBS_BURN = (10, 3) if SMOKE else (40, 15)
EM_ITERATIONS = 10 if SMOKE else 50

_OPS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    write_bench_json(_OPS, "BENCH_core_fitters.json", case={
        "smoke": SMOKE,
        "n_processes": K,
        "max_lag": MAX_LAG,
        "n_bins": N_BINS,
        "gibbs_sweeps": GIBBS_SWEEPS,
        "em_iterations": EM_ITERATIONS,
    })


@pytest.fixture(scope="module")
def standard_case():
    pmf = np.exp(-np.arange(1, MAX_LAG + 1) / 90.0)
    pmf /= pmf.sum()
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.03, 0.08, (K, K))
    np.fill_diagonal(weights, rng.uniform(0.06, 0.12, K))
    params = HawkesParams(
        background=rng.uniform(0.0005, 0.003, K),
        weights=weights,
        impulse=np.tile(pmf, (K, K, 1)),
    )
    events = simulate_branching(params, N_BINS, np.random.default_rng(1))
    return params, events


def test_bench_simulate_branching(benchmark, standard_case):
    params, _ = standard_case
    result = benchmark(simulate_branching, params, N_BINS,
                       np.random.default_rng(2))
    assert result.total_events > 0
    record_ops(_OPS, "simulate_branching", benchmark)


def test_bench_log_likelihood(benchmark, standard_case):
    params, events = standard_case
    value = benchmark(discrete_log_likelihood, params, events)
    assert np.isfinite(value)
    record_ops(_OPS, "log_likelihood", benchmark)


def test_bench_fit_gibbs(benchmark, standard_case):
    _, events = standard_case
    basis = LogBinnedLagBasis(MAX_LAG)

    def run():
        return fit_gibbs(events, MAX_LAG, basis=basis,
                         n_iterations=GIBBS_SWEEPS, burn_in=GIBBS_BURN,
                         rng=np.random.default_rng(3),
                         keep_samples=False)

    result = benchmark(run)
    assert result.params.n_processes == K
    record_ops(_OPS, "fit_gibbs", benchmark)


def test_bench_fit_em(benchmark, standard_case):
    _, events = standard_case
    basis = LogBinnedLagBasis(MAX_LAG)

    def run():
        return fit_em(events, MAX_LAG, basis=basis,
                      max_iterations=EM_ITERATIONS)

    result = benchmark(run)
    assert result.params.n_processes == K
    record_ops(_OPS, "fit_em", benchmark)
