"""Ablation: estimator choice — Gibbs vs EM vs continuous-time EM.

The paper uses the Gibbs sampler of [20, 21].  This bench fits the same
URLs with the deterministic discrete EM and with a continuous-time
exponential-kernel EM, and reports agreement — evidence that the
conclusions are estimator-robust, not sampler artifacts.
"""

from repro.analysis.ablation import estimator_agreement
from repro.config import HawkesConfig
from repro.reporting import render_table

FAST = HawkesConfig(gibbs_iterations=25, gibbs_burn_in=8)


def test_ablation_estimators(benchmark, bench_corpus, save_result):
    subsample = bench_corpus[:25]
    comparison = benchmark(estimator_agreement, subsample, FAST)

    pairs = (("gibbs", "em"), ("gibbs", "continuous"),
             ("em", "continuous"))
    rows = [[f"{a} vs {b}",
             f"{comparison.correlation(a, b):.3f}",
             f"{comparison.mean_matrix_correlation(a, b):.3f}",
             f"{comparison.mean_absolute_difference(a, b):.4f}"]
            for a, b in pairs]
    text = render_table(
        ["Estimator pair", "per-URL corr", "mean-matrix corr",
         "mean |ΔW|"], rows,
        title="Ablation — estimator agreement on identical URLs")
    save_result("ablation_estimators.txt", text)

    # The interpreted quantity is the corpus-mean matrix (Figure 10);
    # per-URL cells are noisy on sparse cascades, so agreement is
    # asserted at the aggregate level.
    assert comparison.mean_matrix_correlation("gibbs", "em") > 0.3
    assert comparison.mean_absolute_difference("gibbs", "em") < 0.1
    # continuous-time estimates stay on the same scale
    assert comparison.continuous.mean() < 0.5
