"""Table 5: top-20 domains in the six selected subreddits.

Paper: breitbart.com 55.58% of alternative URLs; nytimes.com 14.07% of
mainstream.  The top-20 cover 99% (alt) and 89% (main) of occurrences.
"""

from _helpers import render_top_domains

from repro.analysis import characterization as chz
from repro.news.domains import NewsCategory


def test_table05_domains_reddit(benchmark, bench_data, save_result):
    dataset = bench_data.reddit_six
    text, alt, main = benchmark(
        render_top_domains, dataset,
        "Table 5 — top domains, six selected subreddits")
    save_result("table05_domains_reddit.txt", text)

    assert alt[0].name == "breitbart.com"
    assert alt[0].percentage > 35
    # paper: nytimes.com leads; viral stories blend the per-platform
    # profiles, so we require nytimes/cnn in the top three.
    main_top3 = {r.name for r in main[:3]}
    assert main_top3 & {"nytimes.com", "cnn.com"}
    coverage_alt = chz.top_domain_coverage(
        dataset, NewsCategory.ALTERNATIVE, 20)
    coverage_main = chz.top_domain_coverage(
        dataset, NewsCategory.MAINSTREAM, 20)
    assert coverage_alt > 90
    assert coverage_main > 70
