"""Story arrival schedule over the study window.

Stories (unique article URLs) arrive as an inhomogeneous Poisson process
across the paper's June 2016 - February 2017 window, with rate spikes on
the 2016 US-election calendar events visible in Figure 4 (the first
presidential debate and election day).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import STUDY_END, STUDY_START
from ..timeutil import SECONDS_PER_DAY, utc

#: Event calendar driving the Figure 4 spikes (epoch day, multiplier).
DEFAULT_SPIKES: tuple[tuple[int, float], ...] = (
    (utc(2016, 9, 26), 2.6),   # first presidential debate
    (utc(2016, 10, 9), 1.8),   # second debate
    (utc(2016, 10, 19), 1.8),  # third debate
    (utc(2016, 11, 8), 3.2),   # election day
    (utc(2016, 11, 9), 2.4),   # day after
    (utc(2017, 1, 20), 1.9),   # inauguration
)


@dataclass(frozen=True)
class StorySchedule:
    """Arrival timestamps for one category of stories."""

    category: str
    timestamps: np.ndarray  # epoch seconds, sorted

    def __len__(self) -> int:
        return len(self.timestamps)


@dataclass
class StoryArrivals:
    """Inhomogeneous Poisson story arrivals with calendar spikes."""

    start: int = STUDY_START
    end: int = STUDY_END
    spikes: tuple[tuple[int, float], ...] = DEFAULT_SPIKES
    #: Mild weekday/weekend cycle (weekend factor).
    weekend_factor: float = 0.75

    def daily_rates(self, total_stories: int) -> np.ndarray:
        """Expected stories per day, scaled to sum to ``total_stories``."""
        n_days = max(1, (self.end - self.start) // SECONDS_PER_DAY)
        base = np.ones(n_days)
        for day in range(n_days):
            epoch = self.start + day * SECONDS_PER_DAY
            weekday = ((epoch // SECONDS_PER_DAY) + 3) % 7  # 0=Mon (epoch day 0 was a Thursday)
            if weekday >= 5:
                base[day] *= self.weekend_factor
        for spike_epoch, factor in self.spikes:
            day = (spike_epoch - self.start) // SECONDS_PER_DAY
            if 0 <= day < n_days:
                base[day] *= factor
        return base * (total_stories / base.sum())

    def spike_multiplier(self, epoch: float) -> float:
        """Calendar-spike factor for the day containing ``epoch``."""
        day = int((epoch - self.start) // SECONDS_PER_DAY)
        factor = 1.0
        for spike_epoch, spike_factor in self.spikes:
            if (spike_epoch - self.start) // SECONDS_PER_DAY == day:
                factor *= spike_factor
        return factor

    def sample(self, category: str, total_stories: int,
               rng: np.random.Generator) -> StorySchedule:
        """Draw story arrival timestamps (approximately ``total_stories``)."""
        rates = self.daily_rates(total_stories)
        times: list[float] = []
        for day, rate in enumerate(rates):
            count = rng.poisson(rate)
            if not count:
                continue
            day_start = self.start + day * SECONDS_PER_DAY
            offsets = rng.uniform(0, SECONDS_PER_DAY, size=count)
            times.extend(day_start + offsets)
        return StorySchedule(
            category=category,
            timestamps=np.sort(np.asarray(times)),
        )
