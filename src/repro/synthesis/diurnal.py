"""Diurnal activity modulation (optional realism extension).

The base cascade engine places events uniformly within their day-scale
dynamics; real platforms breathe with a day/night cycle.  This module
reshapes event timestamps to follow a 24-hour activity profile while
preserving each event's calendar day (so daily counts — Figure 4 — are
unchanged).  Disabled by default; enable via
``GroundTruth(diurnal_enabled=True)`` or apply manually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR


def _default_hours() -> np.ndarray:
    """US-centric activity by UTC hour: trough ~09:00 UTC (4 am ET),
    evening peak ~00:00-02:00 UTC (7-9 pm ET)."""
    hours = np.array([
        1.5, 1.45, 1.3, 1.0, 0.7, 0.5, 0.4, 0.35, 0.3, 0.3, 0.4, 0.55,
        0.75, 0.95, 1.1, 1.2, 1.25, 1.3, 1.3, 1.3, 1.35, 1.4, 1.5, 1.55,
    ])
    return hours


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-value relative-activity profile over UTC hours."""

    hourly: np.ndarray = field(default_factory=_default_hours)

    def __post_init__(self) -> None:
        if self.hourly.shape != (24,):
            raise ValueError("profile needs exactly 24 hourly values")
        if np.any(self.hourly <= 0):
            raise ValueError("hourly activity must be positive")

    def normalized(self) -> np.ndarray:
        """Probabilities over the 24 hours (sums to 1)."""
        return self.hourly / self.hourly.sum()

    def sample_second_of_day(self, rng: np.random.Generator,
                             size: int | None = None) -> np.ndarray:
        """Draw seconds-of-day distributed per the profile."""
        n = size if size is not None else 1
        hours = rng.choice(24, size=n, p=self.normalized())
        seconds = hours * SECONDS_PER_HOUR + rng.uniform(
            0, SECONDS_PER_HOUR, size=n)
        return seconds if size is not None else seconds[0]

    def multiplier(self, epoch: float) -> float:
        """Relative activity at ``epoch`` (mean 1 over a day)."""
        hour = int((epoch % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        return float(self.hourly[hour] / self.hourly.mean())


def apply_diurnal(events: list[tuple[float, str]],
                  rng: np.random.Generator,
                  profile: DiurnalProfile | None = None,
                  keep_first: bool = True) -> list[tuple[float, str]]:
    """Reshape event times-of-day per the profile, preserving days.

    Each event keeps its calendar day but its second-of-day is
    re-drawn from the profile, except (optionally) the cascade's first
    event, whose time anchors the story and the cross-platform lag
    statistics.  The output is re-sorted.
    """
    if not events:
        return events
    profile = profile or DiurnalProfile()
    ordered = sorted(events)
    reshaped: list[tuple[float, str]] = []
    for index, (t, name) in enumerate(ordered):
        if keep_first and index == 0:
            reshaped.append((t, name))
            continue
        day_start = t - (t % SECONDS_PER_DAY)
        second = float(profile.sample_second_of_day(rng))
        reshaped.append((day_start + second, name))
    reshaped.sort()
    return reshaped


def hourly_histogram(timestamps, normalize: bool = True) -> np.ndarray:
    """Observed share of events per UTC hour (for validation)."""
    counts = np.zeros(24)
    for t in timestamps:
        hour = int((t % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        counts[hour] += 1
    if normalize and counts.sum():
        counts = counts / counts.sum()
    return counts
