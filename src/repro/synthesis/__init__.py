"""Synthetic world generation.

The paper's raw data (Twitter Streaming API, Pushshift dumps, a /pol/
crawler) is no longer obtainable, so this package regenerates a
statistically faithful corpus: news stories arrive over the study
window, and each story's cross-community cascade is drawn from a
ground-truth discrete Hawkes process whose parameters are the paper's
*own measured* weight matrices (Fig. 10) and background rates
(Table 11).  The measurement pipeline then re-estimates those
parameters, closing the loop.
"""

from .params import GroundTruth, default_ground_truth
from .users import UserPopulation, UserProfile
from .stories import StoryArrivals, StorySchedule
from .cascades import CascadeEngine, StoryCascade
from .world import World, WorldConfig, build_world

__all__ = [
    "GroundTruth",
    "default_ground_truth",
    "UserPopulation",
    "UserProfile",
    "StoryArrivals",
    "StorySchedule",
    "CascadeEngine",
    "StoryCascade",
    "World",
    "WorldConfig",
    "build_world",
]
