"""World generation: stories -> cascades -> materialized platform content.

:func:`build_world` produces a fully populated :class:`World`: Twitter,
Reddit, and 4chan simulators filled with posts whose text embeds the
news URLs, authored by synthetic users (including bots), plus ambient
non-news traffic accounted in bulk.  The collection layer then crawls
these platforms exactly the way the paper's infrastructure crawled the
real services.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import (
    FOURCHAN_BASELINE_BOARDS,
    SELECTED_SUBREDDITS,
    STUDY_END,
    STUDY_START,
)
from ..news.articles import Article, ArticleGenerator
from ..news.domains import NewsCategory, NewsRegistry, default_registry
from ..platforms.fourchan import FourchanPlatform
from ..platforms.generic import GenericPlatform
from ..platforms.registry import PlatformSpec
from ..platforms.reddit import RedditPlatform
from ..platforms.twitter import TWEET_MAX_CHARS, TwitterPlatform
from .cascades import CascadeEngine, StoryCascade
from .params import (
    GroundTruth,
    OTHER_SUBREDDIT_ALT_SHARES,
    OTHER_SUBREDDIT_MAIN_SHARES,
    default_ground_truth,
    extend_ground_truth,
)
from .stories import StoryArrivals
from .users import (
    REDDIT_SHAPE,
    TWITTER_SHAPE,
    PopulationShape,
    UserPopulation,
    UserProfile,
)


@dataclass
class WorldConfig:
    """Volume and behavior knobs for one synthetic world.

    Defaults target a ~1/40-scale version of the paper's corpus so the
    full pipeline runs on a laptop; the ratios between quantities follow
    the paper's tables.
    """

    seed: int = 7
    n_stories_alternative: int = 2500
    n_stories_mainstream: int = 7000
    n_twitter_users: int = 3000
    n_reddit_users: int = 2500
    #: Probability a non-first Twitter event of a URL is a retweet.
    retweet_prob: float = 0.45
    #: Fraction of Reddit URL events materialized as comments (vs posts).
    reddit_comment_fraction: float = 0.55
    #: Probability a /pol/ URL event opens a new thread.
    pol_new_thread_prob: float = 0.35
    #: Re-crawl unavailability rates (Table 3: 83.2% / 87.7% retrieved).
    tweet_missing_alternative: float = 0.168
    tweet_missing_mainstream: float = 0.123
    #: Ambient (non-news) posts per news-URL post, from Table 1 ratios:
    #: Twitter 0.092% news -> ~1086x, Reddit 0.204% -> ~490x,
    #: 4chan 0.247% -> ~404x.
    ambient_twitter: float = 1086.0
    ambient_reddit: float = 490.0
    ambient_fourchan: float = 404.0
    #: Extra generic subreddit names forming Reddit's long tail.
    n_generic_subreddits: int = 400
    #: Probability an "other Reddit" event lands in the generic tail
    #: instead of a named Table-4 subreddit.
    generic_subreddit_prob: float = 0.35
    ground_truth: GroundTruth = field(default_factory=default_ground_truth)
    #: Scenario-declared generic platforms beyond the paper's triple.
    #: The ground truth is extended per spec (see
    #: :func:`repro.synthesis.params.extend_ground_truth`); the RNG
    #: stream is untouched when this is empty, so legacy worlds are
    #: bit-identical.
    extra_platforms: tuple[PlatformSpec, ...] = ()
    #: Scenario bot-mix overrides; ``None`` keeps the paper shapes.
    twitter_shape: PopulationShape | None = None
    reddit_shape: PopulationShape | None = None


@dataclass
class World:
    """A fully generated synthetic web."""

    config: WorldConfig
    registry: NewsRegistry
    twitter: TwitterPlatform
    reddit: RedditPlatform
    fourchan: FourchanPlatform
    cascades: list[StoryCascade]
    twitter_users: UserPopulation
    reddit_users: UserPopulation
    #: Scenario-declared generic platforms, keyed by spec key.
    extras: dict[str, GenericPlatform] = field(default_factory=dict)
    #: Maps a story URL to its first materialized tweet id (for RTs).
    first_tweet_of_url: dict[str, str] = field(default_factory=dict)

    @property
    def articles(self) -> list[Article]:
        return [c.article for c in self.cascades]

    def cascade_of(self, url: str) -> StoryCascade | None:
        for cascade in self.cascades:
            if cascade.url == url:
                return cascade
        return None


# ---------------------------------------------------------------------------
# Materializers
# ---------------------------------------------------------------------------

class _TwitterMaterializer:
    def __init__(self, world: World, rng: np.random.Generator) -> None:
        self.world = world
        self.rng = rng
        self.platform = world.twitter
        self._user_ids: dict[str, str] = {}
        for profile in world.twitter_users.profiles:
            user = self.platform.register_user(
                handle=profile.name,
                created_at=STUDY_START,
                is_bot=profile.is_bot,
                followers=int(self.rng.pareto(1.2) * 50) + 1,
            )
            self._user_ids[profile.name] = user.user_id

    def _compose(self, article: Article) -> str:
        tag = "#" + article.headline.split()[-1].lower()
        budget = TWEET_MAX_CHARS - len(article.url) - len(tag) - 2
        headline = article.headline[:max(0, budget)].rstrip()
        return f"{headline} {article.url} {tag}".strip()

    def materialize(self, cascade: StoryCascade, when: float) -> None:
        alternative = cascade.article.is_alternative
        profile = self.world.twitter_users.sample_author(alternative)
        user_id = self._user_ids[profile.name]
        first = self.world.first_tweet_of_url.get(cascade.url)
        if first is not None and self.rng.random() < self.world.config.retweet_prob:
            self.platform.retweet(user_id, first, int(when))
            return
        tweet = self.platform.post_tweet(
            user_id, self._compose(cascade.article), int(when),
            hashtags=(cascade.article.headline.split()[-1].lower(),))
        # Global engagement (the firehose we do not sample): heavy-tailed
        # retweet counts, mostly-zero likes (Table 3).
        tweet.retweet_count = int(self.rng.lognormal(4.45, 1.6))
        tweet.like_count = (int(self.rng.lognormal(1.2, 1.8))
                            if self.rng.random() < 0.12 else 0)
        self.world.first_tweet_of_url.setdefault(cascade.url, tweet.tweet_id)

    def finalize(self) -> None:
        """Make tweets unavailable so re-crawls miss the Table 3 fractions.

        A few single-tweet bot accounts are suspended for realism; the
        rest of the target unavailability comes from tweet deletions,
        applied per category so the alternative/mainstream retrieval
        rates land near the paper's 83.2% / 87.7%.
        """
        config = self.world.config
        tweets_by_user: dict[str, list] = {}
        for tweet in self.platform.tweets.values():
            tweets_by_user.setdefault(tweet.user_id, []).append(tweet)
        # Suspend a handful of low-volume bot accounts.
        for user in self.platform.users.values():
            if (user.is_bot and len(tweets_by_user.get(user.user_id, [])) <= 2
                    and self.rng.random() < 0.05):
                self.platform.suspend_user(user.user_id)
        # Top up with per-tweet deletions to the category targets.
        for tweet in list(self.platform.tweets.values()):
            if self.platform.fetch_tweet(tweet.tweet_id) is None:
                continue
            missing = (config.tweet_missing_alternative
                       if self._looks_alternative(tweet.text)
                       else config.tweet_missing_mainstream)
            if self.rng.random() < missing:
                self.platform.delete_tweet(tweet.tweet_id)

    def _looks_alternative(self, text: str) -> bool:
        registry = self.world.registry
        for domain in registry.alternative:
            if domain.name in text:
                return True
        return False


class _RedditMaterializer:
    def __init__(self, world: World, rng: np.random.Generator) -> None:
        self.world = world
        self.rng = rng
        self.platform = world.reddit
        for name in SELECTED_SUBREDDITS:
            self.platform.create_subreddit(name, created_at=0)
        for name in (*OTHER_SUBREDDIT_ALT_SHARES, *OTHER_SUBREDDIT_MAIN_SHARES):
            self.platform.ensure_subreddit(name, created_at=0)
        self.platform.create_subreddit("AutoNewspaper", created_at=0,
                                       is_automated=True)
        self._generic = [f"sub_{i:04d}"
                         for i in range(world.config.n_generic_subreddits)]
        for name in self._generic:
            self.platform.create_subreddit(name, created_at=0)
        self._recent_posts: dict[str, list[str]] = {}
        alt_names = list(OTHER_SUBREDDIT_ALT_SHARES)
        alt_weights = np.array(list(OTHER_SUBREDDIT_ALT_SHARES.values()))
        main_names = list(OTHER_SUBREDDIT_MAIN_SHARES)
        main_weights = np.array(list(OTHER_SUBREDDIT_MAIN_SHARES.values()))
        self._other_pools = {
            True: (alt_names, alt_weights / alt_weights.sum()),
            False: (main_names, main_weights / main_weights.sum()),
        }

    def _other_subreddit(self, alternative: bool) -> str:
        if self.rng.random() < self.world.config.generic_subreddit_prob:
            return self._generic[int(self.rng.integers(len(self._generic)))]
        names, probs = self._other_pools[alternative]
        return names[int(self.rng.choice(len(names), p=probs))]

    def materialize(self, cascade: StoryCascade, when: float,
                    community: str) -> None:
        article = cascade.article
        if community == "Reddit-other":
            community = self._other_subreddit(article.is_alternative)
        profile = self.world.reddit_users.sample_author(
            article.is_alternative)
        as_comment = (self.rng.random()
                      < self.world.config.reddit_comment_fraction)
        recent = self._recent_posts.setdefault(community, [])
        if as_comment and recent:
            parent = recent[int(self.rng.integers(len(recent)))]
            self.platform.submit_comment(
                parent, profile.name,
                f"Source: {article.url}", int(when))
        else:
            post = self.platform.submit_post(
                community, profile.name, article.headline, int(when),
                body=article.url)
            recent.append(post.post_id)
            if len(recent) > 50:
                del recent[0]
            for _ in range(int(self.rng.integers(0, 20))):
                self.platform.vote(post.post_id,
                                   1 if self.rng.random() < 0.75 else -1)


class _FourchanMaterializer:
    def __init__(self, world: World, rng: np.random.Generator) -> None:
        self.world = world
        self.rng = rng
        self.platform = world.fourchan
        self.platform.create_board("pol", thread_capacity=150, bump_limit=300)
        for board in FOURCHAN_BASELINE_BOARDS:
            self.platform.create_board(board, thread_capacity=100,
                                       bump_limit=300)

    def _board_of(self, community: str) -> str:
        if community == "/pol/":
            return "pol"
        boards = FOURCHAN_BASELINE_BOARDS
        return boards[int(self.rng.integers(len(boards)))]

    def materialize(self, cascade: StoryCascade, when: float,
                    community: str) -> None:
        article = cascade.article
        board = self._board_of(community)
        text = f"{article.headline}\n{article.url}"
        catalog = self.platform.catalog(board)
        open_new = (not catalog or self.rng.random()
                    < self.world.config.pol_new_thread_prob)
        if open_new:
            self.platform.create_thread(board, text, int(when))
        else:
            thread = catalog[int(self.rng.integers(min(len(catalog), 20)))]
            quotes = (thread.op.post_number,) if self.rng.random() < 0.4 else ()
            self.platform.reply(thread.thread_id, text, int(when),
                                sage=self.rng.random() < 0.05,
                                quotes=quotes)
        if self.rng.random() < 0.01:
            self.platform.expire_archives(int(when))


class _GenericMaterializer:
    """Materializer for a scenario-declared generic platform."""

    def __init__(self, world: World, rng: np.random.Generator,
                 spec: PlatformSpec) -> None:
        self.world = world
        self.rng = rng
        self.spec = spec
        self.platform = GenericPlatform(spec.key)
        world.extras[spec.key] = self.platform

    def materialize(self, cascade: StoryCascade, when: float,
                    community: str) -> None:
        article = cascade.article
        author = f"{self.spec.key}_u{int(self.rng.integers(self.spec.n_users))}"
        self.platform.submit_post(
            community, author, f"{article.headline}\n{article.url}",
            int(when))


# ---------------------------------------------------------------------------
# Build
# ---------------------------------------------------------------------------

def resolve_ground_truth(config: WorldConfig) -> GroundTruth:
    """The config's ground truth, extended by any extra platforms."""
    truth = config.ground_truth
    missing = tuple(spec for spec in config.extra_platforms
                    if spec.process not in truth.processes)
    if missing:
        truth = extend_ground_truth(missing, base=truth)
    return truth


def build_world(config: WorldConfig | None = None) -> World:
    """Generate a complete synthetic world (stories, cascades, posts)."""
    config = config or WorldConfig()
    rng = np.random.default_rng(config.seed)
    registry = default_registry()
    world = World(
        config=config,
        registry=registry,
        twitter=TwitterPlatform(),
        reddit=RedditPlatform(),
        fourchan=FourchanPlatform(),
        cascades=[],
        twitter_users=UserPopulation(
            "tw_", config.n_twitter_users,
            config.twitter_shape or TWITTER_SHAPE, seed=config.seed),
        reddit_users=UserPopulation(
            "rd_", config.n_reddit_users,
            config.reddit_shape or REDDIT_SHAPE, seed=config.seed + 1),
    )
    engine = CascadeEngine(resolve_ground_truth(config), rng)
    arrivals = StoryArrivals()
    generator = ArticleGenerator(registry, seed=config.seed + 2)

    schedules = (
        (NewsCategory.ALTERNATIVE,
         arrivals.sample("alternative", config.n_stories_alternative, rng)),
        (NewsCategory.MAINSTREAM,
         arrivals.sample("mainstream", config.n_stories_mainstream, rng)),
    )
    blend = _blended_profiles(registry)
    flavor_mix = {category: _viral_platform_weights(category)
                  for category in NewsCategory}
    for category, schedule in schedules:
        groups = list(flavor_mix[category])
        group_probs = [flavor_mix[category][g] for g in groups]
        for published_at in schedule.timestamps:
            viral = engine.draw_viral()
            home: str | None = None
            flavor: str | None = None
            if viral:
                flavor = groups[int(rng.choice(len(groups),
                                               p=group_probs))]
                weights = blend[(category, flavor)]
            else:
                home = engine.pick_local_home(
                    category == NewsCategory.ALTERNATIVE)
                weights = blend[(category, _platform_group(home))]
            article = generator.generate(category, int(published_at),
                                         domain_weights=weights)
            # Calendar-event days produce stories that also spread harder.
            boost = arrivals.spike_multiplier(published_at) ** 0.5
            cascade = engine.generate(article, viral=viral, home=home,
                                      flavor=flavor, virality_boost=boost)
            world.cascades.append(cascade)

    _materialize(world, rng)
    _add_ambient_traffic(world)
    return world


def _platform_group(community: str) -> str:
    if community == "Twitter":
        return "twitter"
    if community in ("/pol/", "4chan-other"):
        return "pol"
    return "reddit"


def _viral_platform_weights(category: NewsCategory) -> dict[str, float]:
    """Per-platform-group mix of viral-story events (Table 11 shares)."""
    from .params import (
        PAPER_EVENT_COUNTS_ALTERNATIVE,
        PAPER_EVENT_COUNTS_MAINSTREAM,
    )
    counts = (PAPER_EVENT_COUNTS_ALTERNATIVE
              if category == NewsCategory.ALTERNATIVE
              else PAPER_EVENT_COUNTS_MAINSTREAM)
    reddit = float(counts[:6].sum())
    pol = float(counts[6])
    twitter = float(counts[7])
    total = reddit + pol + twitter
    return {"reddit": reddit / total, "pol": pol / total,
            "twitter": twitter / total}


def _blended_profiles(registry: NewsRegistry,
                      ) -> dict[tuple[NewsCategory, str], dict[str, float]]:
    """Domain-popularity profiles per (category, platform-group).

    Local stories use their home platform's Table 5-7 profile; viral
    stories use a mixture weighted by where viral events actually land
    (the Table 11 event shares), which preserves the per-platform
    domain signatures of Figure 2.
    """
    blend: dict[tuple[NewsCategory, str], dict[str, float]] = {}
    for category in NewsCategory:
        per_platform = {
            group: registry.popularity_profile(group, category)
            for group in ("twitter", "reddit", "pol")
        }
        blend[(category, "twitter")] = per_platform["twitter"]
        blend[(category, "reddit")] = per_platform["reddit"]
        blend[(category, "pol")] = per_platform["pol"]
        mix = _viral_platform_weights(category)
        viral: dict[str, float] = {}
        for group, profile in per_platform.items():
            for name, weight in profile.items():
                viral[name] = viral.get(name, 0.0) + weight * mix[group]
        blend[(category, "viral")] = viral
    return blend


def _materialize(world: World, rng: np.random.Generator) -> None:
    """Turn cascade events into actual posts on the platform objects."""
    twitter = _TwitterMaterializer(world, rng)
    reddit = _RedditMaterializer(world, rng)
    fourchan = _FourchanMaterializer(world, rng)
    subreddits = set(SELECTED_SUBREDDITS)
    generic: dict[str, _GenericMaterializer] = {}
    for spec in world.config.extra_platforms:
        materializer = _GenericMaterializer(world, rng, spec)
        for community in spec.communities or (spec.process,):
            generic[community] = materializer

    flat: list[tuple[float, str, StoryCascade]] = []
    for cascade in world.cascades:
        for when, community in cascade.events:
            flat.append((when, community, cascade))
    flat.sort(key=lambda item: item[0])

    for when, community, cascade in flat:
        if community == "Twitter":
            twitter.materialize(cascade, when)
        elif community in subreddits or community == "Reddit-other":
            reddit.materialize(cascade, when, community)
        elif community in ("/pol/", "4chan-other"):
            fourchan.materialize(cascade, when, community)
        elif community in generic:
            generic[community].materialize(cascade, when, community)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown community {community!r}")
    twitter.finalize()
    world.fourchan.expire_archives(STUDY_END)


def _add_ambient_traffic(world: World) -> None:
    """Account for the non-news bulk of each platform (Table 1 ratios)."""
    config = world.config
    world.twitter.record_ambient_posts(
        int(len(world.twitter.tweets) * config.ambient_twitter))
    news_reddit = len(world.reddit.posts) + len(world.reddit.comments)
    world.reddit.record_ambient_posts(
        int(news_reddit * config.ambient_reddit))
    world.fourchan.record_ambient_posts(
        int(world.fourchan.total_posts * config.ambient_fourchan))
    for spec in config.extra_platforms:
        platform = world.extras[spec.key]
        platform.record_ambient_posts(
            int(len(platform.posts) * spec.ambient_ratio))
