"""Ground-truth cascade generation per story.

Two story kinds:

* **viral** stories run a full multivariate Hawkes cascade over all
  communities, with the paper-calibrated ground truth of
  :mod:`repro.synthesis.params`;
* **local** stories stay on a single "home" platform with a couple of
  posts — these produce the single-platform bulk of Table 9.

Both kinds can later be "recycled": reposted weeks or months after the
original burst, which creates the long CDF tails of Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SELECTED_SUBREDDITS, STUDY_END
from ..core.hawkes import HawkesParams, simulate_branching
from ..news.articles import Article
from .diurnal import DiurnalProfile, apply_diurnal
from .params import (
    GroundTruth,
    PAPER_EVENT_COUNTS_ALTERNATIVE,
    PAPER_EVENT_COUNTS_MAINSTREAM,
)

#: Subreddit mix (Table 11 event counts) for local Reddit stories.
_SUBREDDIT_WEIGHTS = {
    True: PAPER_EVENT_COUNTS_ALTERNATIVE[:6].astype(float),
    False: PAPER_EVENT_COUNTS_MAINSTREAM[:6].astype(float),
}


@dataclass(frozen=True)
class StoryCascade:
    """All synthetic posting events of one article across communities."""

    article: Article
    #: (epoch_seconds, process_name) pairs, sorted by time.
    events: tuple[tuple[float, str], ...]
    viral: bool

    @property
    def url(self) -> str:
        return self.article.url

    def processes_present(self) -> frozenset[str]:
        return frozenset(name for _, name in self.events)


class CascadeEngine:
    """Generates :class:`StoryCascade` objects from the ground truth."""

    def __init__(self, ground_truth: GroundTruth,
                 rng: np.random.Generator,
                 study_end: int = STUDY_END) -> None:
        self.truth = ground_truth
        self.rng = rng
        self.study_end = study_end
        self._impulse = ground_truth.impulse()
        self._diurnal = (DiurnalProfile()
                         if ground_truth.diurnal_enabled else None)
        self._local_homes = ("Twitter", "reddit-six", "/pol/",
                             "Reddit-other", "4chan-other")

    # -- public API --------------------------------------------------------

    def draw_viral(self) -> bool:
        """Decide whether the next story is viral."""
        return bool(self.rng.random() < self.truth.viral_fraction)

    def pick_local_home(self, alternative: bool) -> str:
        """Draw the home community of a local story."""
        return self._pick_local_home(alternative)

    def generate(self, article: Article, viral: bool | None = None,
                 home: str | None = None,
                 flavor: str | None = None,
                 virality_boost: float = 1.0) -> StoryCascade:
        """Generate the full cascade of one article.

        ``viral``, ``home``, and ``flavor`` may be pre-drawn by the
        caller (the world generator does this so it can correlate the
        article's domain with where the story lands); all default to
        fresh draws.  ``flavor`` is a platform group (``"twitter"``,
        ``"reddit"``, ``"pol"``) a viral story leans toward.
        """
        if viral is None:
            viral = self.draw_viral()
        if viral:
            events = self._viral_events(article, flavor, virality_boost)
        else:
            if home is None:
                home = self._pick_local_home(article.is_alternative)
            events = self._local_events(article, home)
        if not events:  # every story is posted at least once
            events = [(float(article.published_at),
                       self._pick_local_home(article.is_alternative))]
        events = self._recycle(events)
        if self._diurnal is not None:
            events = apply_diurnal(events, self.rng, self._diurnal)
        events = [(t, name) for t, name in events if t < self.study_end]
        if not events:
            events = [(float(min(article.published_at, self.study_end - 1)),
                       self._pick_local_home(article.is_alternative))]
        events.sort()
        return StoryCascade(article=article, events=tuple(events),
                            viral=viral)

    # -- viral stories -----------------------------------------------------

    def _flavor_boost(self, flavor: str | None) -> np.ndarray:
        """Background multipliers leaning a viral story toward a group.

        Platform-exclusive domains (Figure 2) exist because even viral
        stories have a home turf; flavored stories emit more events on
        their group's communities and fewer elsewhere.
        """
        k = len(self.truth.processes)
        boost = np.ones(k)
        if flavor is None:
            return boost
        extras = set(self.truth.extra_platform_names)
        groups = {
            "twitter": [self.truth.processes.index("Twitter")],
            "pol": [self.truth.processes.index("/pol/"),
                    self.truth.processes.index("4chan-other")],
            "reddit": [i for i, name in enumerate(self.truth.processes)
                       if name not in ("Twitter", "/pol/", "4chan-other")
                       and name not in extras],
        }
        # Scenario extras form their own flavor groups, one per platform.
        for i, name in enumerate(self.truth.processes):
            if name in extras:
                groups[name] = [i]
        boost *= self.truth.flavor_damp
        boost[groups[flavor]] = self.truth.flavor_boost
        return boost

    def _viral_events(self, article: Article,
                      flavor: str | None = None,
                      virality_boost: float = 1.0,
                      ) -> list[tuple[float, str]]:
        truth = self.truth
        window = self._draw_window_minutes()
        virality = virality_boost * self.rng.lognormal(
            truth.virality_log_mean, truth.virality_log_sigma)
        params = HawkesParams(
            background=(truth.background(article.is_alternative)
                        * virality * self._flavor_boost(flavor)),
            weights=truth.weights(article.is_alternative),
            impulse=self._impulse,
        )
        simulated = simulate_branching(params, n_bins=window, rng=self.rng)
        events: list[tuple[float, str]] = []
        for m in range(len(simulated)):
            name = truth.processes[int(simulated.processes[m])]
            base = article.published_at + 60.0 * int(simulated.bins[m])
            for _ in range(int(simulated.counts[m])):
                events.append((base + self.rng.uniform(0, 60), name))
        return events

    def _draw_window_minutes(self) -> int:
        truth = self.truth
        window = self.rng.lognormal(truth.window_log_mean,
                                    truth.window_log_sigma)
        return int(np.clip(window, truth.min_window_minutes,
                           truth.max_window_minutes))

    # -- local stories -----------------------------------------------------

    def _pick_local_home(self, alternative: bool) -> str:
        home = self.rng.choice(len(self._local_homes),
                               p=self.truth.local_home_probs)
        name = self._local_homes[home]
        if name == "reddit-six":
            weights = _SUBREDDIT_WEIGHTS[alternative]
            idx = self.rng.choice(6, p=weights / weights.sum())
            return SELECTED_SUBREDDITS[idx]
        return name

    def _local_events(self, article: Article,
                      home: str) -> list[tuple[float, str]]:
        # Total home posts ~ geometric with mean 1 + local_extra_posts_mean;
        # the first is the story's initial appearance.
        n_extra = self.rng.geometric(
            1.0 / (1.0 + self.truth.local_extra_posts_mean)) - 1
        events = [(float(article.published_at), home)]
        repost_hours = (self.truth.local_repost_hours_twitter
                        if home == "Twitter"
                        else self.truth.local_repost_hours_other)
        for _ in range(n_extra):
            lag = self.rng.exponential(repost_hours * 3600.0)
            events.append((article.published_at + lag, home))
        if self.rng.random() < self.truth.local_leak_prob:
            other = self._pick_local_home(article.is_alternative)
            if other != home:
                lag = self.rng.exponential(24 * 3600.0)
                events.append((article.published_at + lag, other))
        return events

    # -- recycling ---------------------------------------------------------

    def _recycle(self, events: list[tuple[float, str]],
                 ) -> list[tuple[float, str]]:
        """Possibly repost the URL long after the original burst."""
        if not events or self.rng.random() >= self.truth.recycle_prob:
            return events
        last = max(t for t, _ in events)
        horizon = min(self.study_end,
                      last + self.truth.recycle_horizon_days * 86400.0)
        if horizon <= last + 3600:
            return events
        present = sorted({name for _, name in events})
        extra = int(self.rng.integers(1, self.truth.recycle_max_posts + 1))
        recycled = list(events)
        for _ in range(extra):
            name = present[int(self.rng.integers(0, len(present)))]
            t = float(self.rng.uniform(last + 3600, horizon))
            recycled.append((t, name))
        return recycled
