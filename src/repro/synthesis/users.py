"""Synthetic user populations for Twitter and Reddit.

Figure 3 of the paper shows that ~80% of users on both platforms share
only mainstream news, that 13% of Twitter users share *only* alternative
news (likely bots), and that mixed users span the whole preference
range.  We generate users in those archetypes and sample authors for
each post conditioned on the post's news category, which reproduces the
per-user fraction CDFs by construction rather than by accident.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class UserArchetype(enum.Enum):
    MAINSTREAM_ONLY = "mainstream_only"
    ALTERNATIVE_ONLY = "alternative_only"
    MIXED = "mixed"


@dataclass
class UserProfile:
    """Sampling profile for one synthetic account."""

    name: str
    archetype: UserArchetype
    #: Preference for alternative news within mixed users (0..1).
    alt_preference: float
    #: Relative posting activity (Zipf-like heavy tail).
    activity: float
    is_bot: bool = False


@dataclass
class PopulationShape:
    """Archetype mix; defaults follow Figure 3."""

    mainstream_only: float = 0.80
    alternative_only: float = 0.13
    bot_fraction_of_alt_only: float = 0.85
    #: Beta parameters of mixed users' alternative preference.
    mixed_alpha: float = 0.7
    mixed_beta: float = 0.7

    def __post_init__(self) -> None:
        if self.mainstream_only + self.alternative_only > 1.0:
            raise ValueError("archetype fractions exceed 1")


#: Reddit has far fewer single-category alternative posters (Fig. 3a).
REDDIT_SHAPE = PopulationShape(mainstream_only=0.80, alternative_only=0.035,
                               bot_fraction_of_alt_only=0.2,
                               mixed_alpha=0.55, mixed_beta=0.55)
TWITTER_SHAPE = PopulationShape()


class UserPopulation:
    """A pool of profiles with category-conditioned author sampling."""

    def __init__(self, prefix: str, n_users: int,
                 shape: PopulationShape | None = None,
                 seed: int = 0) -> None:
        if n_users < 3:
            raise ValueError("need at least 3 users for the 3 archetypes")
        self.shape = shape or PopulationShape()
        self._rng = random.Random(seed)
        self.profiles: list[UserProfile] = []
        for i in range(n_users):
            roll = self._rng.random()
            if roll < self.shape.mainstream_only:
                archetype = UserArchetype.MAINSTREAM_ONLY
                pref = 0.0
                bot = False
            elif roll < self.shape.mainstream_only + self.shape.alternative_only:
                archetype = UserArchetype.ALTERNATIVE_ONLY
                pref = 1.0
                bot = self._rng.random() < self.shape.bot_fraction_of_alt_only
            else:
                archetype = UserArchetype.MIXED
                pref = self._rng.betavariate(self.shape.mixed_alpha,
                                             self.shape.mixed_beta)
                bot = False
            activity = self._rng.paretovariate(1.35)
            self.profiles.append(UserProfile(
                name=f"{prefix}{i}",
                archetype=archetype,
                alt_preference=pref,
                activity=activity,
                is_bot=bot,
            ))
        self._index_pools()

    def _index_pools(self) -> None:
        """Precompute per-category author pools and sampling weights.

        A mainstream post can come from a mainstream-only or a mixed
        user (weighted by activity and 1 - preference); symmetrically
        for alternative posts.
        """
        self._pool: dict[bool, tuple[list[UserProfile], list[float]]] = {}
        for alternative in (False, True):
            members: list[UserProfile] = []
            weights: list[float] = []
            for profile in self.profiles:
                if alternative:
                    if profile.archetype == UserArchetype.MAINSTREAM_ONLY:
                        continue
                    affinity = (1.0 if profile.archetype
                                == UserArchetype.ALTERNATIVE_ONLY
                                else profile.alt_preference)
                else:
                    if profile.archetype == UserArchetype.ALTERNATIVE_ONLY:
                        continue
                    affinity = (1.0 if profile.archetype
                                == UserArchetype.MAINSTREAM_ONLY
                                else 1.0 - profile.alt_preference)
                if affinity <= 0:
                    continue
                members.append(profile)
                weights.append(profile.activity * affinity)
            if not members:  # degenerate tiny populations
                members = list(self.profiles)
                weights = [p.activity for p in self.profiles]
            self._pool[alternative] = (members, weights)

    def sample_author(self, alternative: bool) -> UserProfile:
        """Draw an author for a post of the given category."""
        members, weights = self._pool[alternative]
        return self._rng.choices(members, weights=weights, k=1)[0]

    @property
    def bots(self) -> list[UserProfile]:
        return [p for p in self.profiles if p.is_bot]

    def archetype_counts(self) -> dict[UserArchetype, int]:
        counts = {archetype: 0 for archetype in UserArchetype}
        for profile in self.profiles:
            counts[profile.archetype] += 1
        return counts
