"""Ground-truth parameters for the synthetic world.

The 8x8 interaction weights come from the paper's Figure 10 and the
background rates from Table 11 — i.e. we simulate from the parameters
the paper measured, then check that our pipeline measures them back.

Transcription note: in the published figure the *destination* axis runs
The_Donald..Twitter left to right, but the per-cell text extracted from
the PDF lists each source row's cells in the *reverse* destination
order.  We verified the orientation against every claim in the prose:
``W[Twitter, Twitter]`` = 0.1554 (alt) / 0.1096 (main), The_Donald's
input column is alternative-dominant in all eight cells, and Twitter's
outgoing weights are mainstream-dominant everywhere except The_Donald.
The matrices below are in canonical order (rows = source, columns =
destination, both ordered as :data:`repro.config.HAWKES_PROCESSES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import HAWKES_PROCESSES

#: Canonical process order: The_Donald, worldnews, politics, news,
#: conspiracy, AskReddit, /pol/, Twitter.
PROCESSES = HAWKES_PROCESSES

#: Figure 10 mean weights, alternative news URLs (rows=source, cols=dest).
PAPER_WEIGHTS_ALTERNATIVE = np.array([
    [0.0741, 0.0549, 0.0592, 0.0562, 0.0549, 0.0526, 0.0652, 0.0797],
    [0.0624, 0.0665, 0.0551, 0.0531, 0.0596, 0.0606, 0.0570, 0.0647],
    [0.0614, 0.0539, 0.0715, 0.0584, 0.0540, 0.0549, 0.0635, 0.0677],
    [0.0652, 0.0549, 0.0557, 0.0672, 0.0579, 0.0547, 0.0629, 0.0664],
    [0.0634, 0.0570, 0.0566, 0.0558, 0.0623, 0.0578, 0.0589, 0.0675],
    [0.0680, 0.0644, 0.0624, 0.0607, 0.0546, 0.0534, 0.0623, 0.0494],
    [0.0598, 0.0554, 0.0577, 0.0551, 0.0532, 0.0540, 0.0761, 0.0639],
    [0.0583, 0.0443, 0.0471, 0.0459, 0.0454, 0.0440, 0.0579, 0.1554],
])

#: Figure 10 mean weights, mainstream news URLs.
PAPER_WEIGHTS_MAINSTREAM = np.array([
    [0.0720, 0.0563, 0.0622, 0.0556, 0.0561, 0.0551, 0.0621, 0.0700],
    [0.0569, 0.0694, 0.0593, 0.0615, 0.0555, 0.0551, 0.0580, 0.0667],
    [0.0596, 0.0522, 0.0758, 0.0521, 0.0507, 0.0505, 0.0581, 0.0655],
    [0.0640, 0.0607, 0.0594, 0.0617, 0.0571, 0.0559, 0.0610, 0.0673],
    [0.0603, 0.0588, 0.0600, 0.0555, 0.0626, 0.0591, 0.0587, 0.0625],
    [0.0550, 0.0558, 0.0585, 0.0521, 0.0563, 0.0637, 0.0573, 0.0598],
    [0.0588, 0.0576, 0.0580, 0.0569, 0.0561, 0.0549, 0.0734, 0.0634],
    [0.0558, 0.0536, 0.0575, 0.0533, 0.0501, 0.0506, 0.0606, 0.1096],
])

#: Table 11 mean background rates (events per minute), canonical order.
PAPER_BACKGROUND_ALTERNATIVE = np.array([
    0.001627, 0.000619, 0.000696, 0.000553,
    0.000423, 0.000034, 0.001525, 0.002803,
])
PAPER_BACKGROUND_MAINSTREAM = np.array([
    0.001502, 0.001382, 0.001265, 0.001392,
    0.000501, 0.000107, 0.001564, 0.002330,
])

#: Table 11 corpus sizes, used to proportion the synthetic corpus.
PAPER_URL_COUNTS = {"alternative": 2136, "mainstream": 5589}
PAPER_EVENT_COUNTS_ALTERNATIVE = np.array(
    [7797, 458, 2484, 586, 497, 176, 7322, 23172])
PAPER_EVENT_COUNTS_MAINSTREAM = np.array(
    [12312, 7517, 26160, 5794, 1995, 2302, 19746, 36250])

#: Table 4 subreddit shares (percent of all-Reddit news URL occurrences)
#: for subreddits *outside* the selected six, used to spread
#: "other Reddit" events over named communities.
OTHER_SUBREDDIT_ALT_SHARES = {
    "Uncensored": 2.66, "Health": 2.10, "PoliticsAll": 1.54,
    "Conservative": 1.45, "WhiteRights": 1.21, "KotakuInAction": 1.04,
    "HillaryForPrison": 0.94, "TheOnion": 0.94, "AskTrumpSupporters": 0.84,
    "POLITIC": 0.81, "rss_theonion": 0.67, "the_Europe": 0.67,
    "new_right": 0.60, "AnythingGoesNews": 0.51, "UFOs": 0.35,
    "C_S_T": 0.30, "DescentIntoTyranny": 0.25, "altnewz": 0.20,
}
OTHER_SUBREDDIT_MAIN_SHARES = {
    "TheColorIsBlue": 3.06, "TheColorIsRed": 2.48, "willis7737_news": 2.27,
    "news_etc": 1.94, "canada": 1.31, "EnoughTrumpSpam": 1.20,
    "NoFilterNews": 1.16, "BreakingNews24hr": 1.07, "todayilearned": 0.83,
    "thenewsrightnow": 0.78, "europe": 0.77, "ReddLineNews": 0.75,
    "hillaryclinton": 0.73, "nottheonion": 0.73, "ukpolitics": 0.55,
    "Economics": 0.45, "TrueReddit": 0.40, "inthenews": 0.35,
}

#: Aggregate processes appended after the canonical eight when the world
#: generator simulates cascades.
EXTRA_PROCESSES = ("Reddit-other", "4chan-other")


def _impulse_pmf(max_lag: int, decay_minutes: float) -> np.ndarray:
    """Exponentially decaying lag PMF over ``1..max_lag`` minute bins."""
    lags = np.arange(1, max_lag + 1, dtype=np.float64)
    pmf = np.exp(-lags / decay_minutes)
    return pmf / pmf.sum()


@dataclass
class GroundTruth:
    """Everything the cascade engine needs to generate stories."""

    processes: tuple[str, ...] = PROCESSES + EXTRA_PROCESSES
    #: (K+2, K+2) weights per category, canonical 8 extended by the
    #: aggregate Reddit-other / 4chan-other processes.
    weights_alternative: np.ndarray = field(default=None)  # type: ignore[assignment]
    weights_mainstream: np.ndarray = field(default=None)  # type: ignore[assignment]
    background_alternative: np.ndarray = field(default=None)  # type: ignore[assignment]
    background_mainstream: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Lag PMF over minutes.  The paper does not report impulse shapes;
    #: we use exponential decay, much faster for Twitter self-excitation
    #: (retweets arrive within minutes) than for forum reposts.
    impulse_decay_minutes: float = 90.0
    twitter_self_decay_minutes: float = 8.0
    max_lag_minutes: int = 720
    #: Mean lag of a local story's repeat posts, per platform kind.
    local_repost_hours_twitter: float = 0.8
    local_repost_hours_other: float = 9.0
    #: Story windows (minutes): lognormal(mu, sigma) of the observation
    #: span of each viral story.
    window_log_mean: float = 6.9     # median ~ 1000 min (~17 h)
    window_log_sigma: float = 1.1
    min_window_minutes: int = 60
    max_window_minutes: int = 60 * 24 * 45
    #: Per-story virality multiplier on background rates.
    virality_log_mean: float = -0.125
    virality_log_sigma: float = 0.5
    #: Fraction of stories that are "viral" (full Hawkes cascade);
    #: the rest stay essentially on one platform.  The paper's Hawkes
    #: corpus is a small share of all URLs (7.7k of ~290k unique), so
    #: local stories must dominate each platform's observed domain mix.
    viral_fraction: float = 0.10
    #: Home-platform probabilities for local (non-viral) stories,
    #: over (Twitter, Reddit-six, /pol/, Reddit-other, 4chan-other);
    #: proportions follow Table 9's single-platform rows plus Table 2's
    #: other-community volumes.
    local_home_probs: tuple[float, ...] = (0.33, 0.22, 0.045, 0.397, 0.008)
    #: Mean extra posts (geometric) of a local story on its home platform.
    local_extra_posts_mean: float = 0.8
    #: Probability a local story leaks one post to another platform.
    local_leak_prob: float = 0.06
    #: Viral-story flavor: background multipliers for the story's home
    #: platform group vs the rest (drives Figure 2's platform-exclusive
    #: domains while keeping cascades cross-platform).
    flavor_boost: float = 2.1
    flavor_damp: float = 0.65
    #: Optional diurnal (time-of-day) modulation of event times;
    #: preserves daily counts, disabled by default.
    diurnal_enabled: bool = False
    #: Late "recycling" reposts: probability and count per story.
    recycle_prob: float = 0.17
    recycle_max_posts: int = 3
    recycle_horizon_days: int = 150
    #: Scenario-declared generic platforms appended after the aggregate
    #: processes (see :func:`extend_ground_truth`); empty for the paper.
    extra_platform_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        k = len(PROCESSES)
        if self.weights_alternative is None:
            self.weights_alternative = _extend_weights(
                PAPER_WEIGHTS_ALTERNATIVE)
        if self.weights_mainstream is None:
            self.weights_mainstream = _extend_weights(
                PAPER_WEIGHTS_MAINSTREAM)
        if self.background_alternative is None:
            self.background_alternative = np.concatenate(
                [PAPER_BACKGROUND_ALTERNATIVE, [0.0009, 0.00003]])
        if self.background_mainstream is None:
            self.background_mainstream = np.concatenate(
                [PAPER_BACKGROUND_MAINSTREAM, [0.0032, 0.00012]])
        k_ext = len(self.processes)
        for name, arr in (("weights_alternative", self.weights_alternative),
                          ("weights_mainstream", self.weights_mainstream)):
            if arr.shape != (k_ext, k_ext):
                raise ValueError(f"{name} must be ({k_ext}, {k_ext})")
        for name, arr in (("background_alternative",
                           self.background_alternative),
                          ("background_mainstream",
                           self.background_mainstream)):
            if arr.shape != (k_ext,):
                raise ValueError(f"{name} must be ({k_ext},)")

    def impulse(self) -> np.ndarray:
        """(K, K, D) lag PMFs; Twitter self-excitation decays fastest."""
        k = len(self.processes)
        pmf = _impulse_pmf(self.max_lag_minutes, self.impulse_decay_minutes)
        impulse = np.broadcast_to(pmf, (k, k, self.max_lag_minutes)).copy()
        twitter = self.processes.index("Twitter")
        impulse[twitter, twitter] = _impulse_pmf(
            self.max_lag_minutes, self.twitter_self_decay_minutes)
        return impulse

    def weights(self, alternative: bool) -> np.ndarray:
        return (self.weights_alternative if alternative
                else self.weights_mainstream)

    def background(self, alternative: bool) -> np.ndarray:
        return (self.background_alternative if alternative
                else self.background_mainstream)


def _extend_weights(core: np.ndarray) -> np.ndarray:
    """Append the aggregate Reddit-other / 4chan-other rows and columns.

    The extras couple weakly to everything (0.03), self-excite like the
    median community (0.06), and receive typical weights (0.05).
    """
    k = core.shape[0]
    ext = np.full((k + 2, k + 2), 0.03)
    ext[:k, :k] = core
    ext[k:, k:] = 0.03
    ext[k, k] = 0.06
    ext[k + 1, k + 1] = 0.06
    ext[:k, k] = 0.05
    ext[:k, k + 1] = 0.01
    return ext


_DEFAULT: GroundTruth | None = None


def default_ground_truth() -> GroundTruth:
    """Shared default ground truth (paper-calibrated)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = GroundTruth()
    return _DEFAULT


def extend_ground_truth(specs, base: GroundTruth | None = None) -> GroundTruth:
    """Ground truth extended by scenario-declared generic platforms.

    Each :class:`~repro.platforms.registry.PlatformSpec` in ``specs``
    appends one process after the paper's ten (eight canonical plus the
    two aggregates), with its own background rates, self-excitation,
    and generic cross-couplings — so viral cascades flow onto the extra
    platform the same way they flow between the paper's communities.
    """
    import dataclasses

    if base is None:
        base = default_ground_truth()
    specs = tuple(specs)
    names = tuple(spec.process for spec in specs)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate extra process names in {names!r}")
    for name in names:
        if name in base.processes:
            raise ValueError(f"process {name!r} already in ground truth")
    k = len(base.processes)
    n = len(specs)

    def _extend(core: np.ndarray) -> np.ndarray:
        ext = np.full((k + n, k + n), 0.0)
        ext[:k, :k] = core
        for i, spec in enumerate(specs):
            ext[k + i, :] = spec.coupling          # extra -> everything
            ext[:, k + i] = spec.incoming_weight   # everything -> extra
            ext[k + i, k + i] = spec.self_excitation
        return ext

    return dataclasses.replace(
        base,
        processes=base.processes + names,
        weights_alternative=_extend(base.weights_alternative),
        weights_mainstream=_extend(base.weights_mainstream),
        background_alternative=np.concatenate(
            [base.background_alternative,
             [spec.background_alternative for spec in specs]]),
        background_mainstream=np.concatenate(
            [base.background_mainstream,
             [spec.background_mainstream for spec in specs]]),
        extra_platform_names=base.extra_platform_names + names,
    )
