"""A minimal generic forum for scenario-declared extra platforms.

The paper's three platforms have bespoke simulators with the mechanics
the measurements depend on (retweets, threaded comments, bump-ordered
ephemeral threads).  A scenario that adds a K-th platform (e.g. Gab in
the ``gab`` preset) usually only needs the part every analysis layer
consumes: a time-stamped stream of posts carrying news URLs, plus an
ambient-traffic total for the Table-1 style overview.
:class:`GenericPlatform` provides exactly that — a flat forum keyed by
a :class:`~repro.platforms.registry.PlatformSpec`.
"""

from __future__ import annotations

from .base import IdAllocator, Post


class GenericPlatform:
    """A flat forum: communities holding plain time-stamped posts."""

    def __init__(self, key: str) -> None:
        self.key = key
        self.posts: list[Post] = []
        self.ambient_posts = 0
        self._ids = IdAllocator()

    def submit_post(self, community: str, author_id: str, text: str,
                    created_at: int) -> Post:
        post = Post(
            post_id=self._ids.next_id(f"{self.key}_p"),
            platform=self.key,
            community=community,
            author_id=author_id,
            created_at=created_at,
            text=text,
        )
        self.posts.append(post)
        return post

    def record_ambient_posts(self, count: int) -> None:
        """Account for non-news posts (counted, never materialized)."""
        if count < 0:
            raise ValueError("ambient post count must be non-negative")
        self.ambient_posts += count

    @property
    def total_posts(self) -> int:
        return len(self.posts) + self.ambient_posts
