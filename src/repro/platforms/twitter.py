"""A Twitter simulator with the mechanics the paper measures.

Users broadcast <=140-character tweets; tweets can be retweeted and
liked; accounts can later be suspended or tweets deleted, which is what
makes a fraction of tweets unavailable when the paper re-crawls them for
engagement counts (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import Author, IdAllocator, Post

TWEET_MAX_CHARS = 140
PLATFORM_NAME = "twitter"


@dataclass
class TwitterUser:
    """An account; ``is_bot`` marks automated amplifiers (Section 3)."""

    user_id: str
    handle: str
    created_at: int
    is_bot: bool = False
    followers: int = 0
    suspended: bool = False

    def as_author(self) -> Author:
        return Author(author_id=self.user_id, handle=self.handle,
                      is_bot=self.is_bot)


@dataclass
class Tweet:
    """One tweet.  ``retweet_of`` points at the original when a RT."""

    tweet_id: str
    user_id: str
    created_at: int
    text: str
    hashtags: tuple[str, ...] = ()
    retweet_of: str | None = None
    retweet_count: int = 0
    like_count: int = 0
    deleted: bool = False

    @property
    def is_retweet(self) -> bool:
        return self.retweet_of is not None

    def to_post(self) -> Post:
        return Post(
            post_id=self.tweet_id,
            platform=PLATFORM_NAME,
            community="Twitter",
            author_id=self.user_id,
            created_at=self.created_at,
            text=self.text,
        )


class TwitterError(Exception):
    """Raised for operations the real service would reject."""


class TwitterPlatform:
    """In-memory Twitter: users, tweets, retweets, likes, suspensions."""

    def __init__(self) -> None:
        self._ids = IdAllocator()
        self.users: dict[str, TwitterUser] = {}
        self.tweets: dict[str, Tweet] = {}
        #: Tweets in timeline order (append-only; mirrors the firehose).
        self.firehose: list[Tweet] = []
        #: Bulk counter for ambient traffic not materialized as objects.
        self.unmaterialized_posts: int = 0

    # -- accounts -----------------------------------------------------------

    def register_user(self, handle: str, created_at: int,
                      is_bot: bool = False, followers: int = 0) -> TwitterUser:
        user = TwitterUser(
            user_id=self._ids.next_id("u"),
            handle=handle,
            created_at=created_at,
            is_bot=is_bot,
            followers=followers,
        )
        self.users[user.user_id] = user
        return user

    def suspend_user(self, user_id: str) -> None:
        """Suspend an account; its tweets become unavailable to re-crawls."""
        self._require_user(user_id).suspended = True

    def _require_user(self, user_id: str) -> TwitterUser:
        user = self.users.get(user_id)
        if user is None:
            raise TwitterError(f"unknown user {user_id}")
        return user

    # -- tweeting -----------------------------------------------------------

    def post_tweet(self, user_id: str, text: str, created_at: int,
                   hashtags: tuple[str, ...] = ()) -> Tweet:
        user = self._require_user(user_id)
        if user.suspended:
            raise TwitterError(f"user {user_id} is suspended")
        if len(text) > TWEET_MAX_CHARS:
            raise TwitterError(
                f"tweet exceeds {TWEET_MAX_CHARS} characters ({len(text)})")
        tweet = Tweet(
            tweet_id=self._ids.next_id("t"),
            user_id=user_id,
            created_at=created_at,
            text=text,
            hashtags=hashtags,
        )
        self.tweets[tweet.tweet_id] = tweet
        self.firehose.append(tweet)
        return tweet

    def retweet(self, user_id: str, tweet_id: str, created_at: int) -> Tweet:
        """Rebroadcast ``tweet_id``; bumps the original's retweet count."""
        original = self._require_tweet(tweet_id)
        if original.is_retweet:  # retweeting a RT credits the original
            original = self._require_tweet(original.retweet_of)
        user = self._require_user(user_id)
        if user.suspended:
            raise TwitterError(f"user {user_id} is suspended")
        rt_text = f"RT @{self.users[original.user_id].handle}: {original.text}"
        tweet = Tweet(
            tweet_id=self._ids.next_id("t"),
            user_id=user_id,
            created_at=created_at,
            text=rt_text[:TWEET_MAX_CHARS + 20],  # RT prefix may overflow
            hashtags=original.hashtags,
            retweet_of=original.tweet_id,
        )
        original.retweet_count += 1
        self.tweets[tweet.tweet_id] = tweet
        self.firehose.append(tweet)
        return tweet

    def like(self, tweet_id: str, count: int = 1) -> None:
        self._require_tweet(tweet_id).like_count += count

    def delete_tweet(self, tweet_id: str) -> None:
        self._require_tweet(tweet_id).deleted = True

    def _require_tweet(self, tweet_id: str) -> Tweet:
        tweet = self.tweets.get(tweet_id)
        if tweet is None:
            raise TwitterError(f"unknown tweet {tweet_id}")
        return tweet

    # -- lookups used by collection ------------------------------------------

    def fetch_tweet(self, tweet_id: str) -> Tweet | None:
        """Re-crawl one tweet; ``None`` if deleted or author suspended."""
        tweet = self.tweets.get(tweet_id)
        if tweet is None or tweet.deleted:
            return None
        if self.users[tweet.user_id].suspended:
            return None
        return tweet

    def record_ambient_posts(self, count: int) -> None:
        """Account for background tweets not materialized as objects."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.unmaterialized_posts += count

    @property
    def total_posts(self) -> int:
        return len(self.tweets) + self.unmaterialized_posts
