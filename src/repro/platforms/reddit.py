"""A Reddit simulator: subreddits, link posts, threaded comments, votes.

The paper consumes Reddit as posts + comments grouped by subreddit; the
simulator also implements the "hot" ranking so examples can exercise
realistic front-page dynamics, and supports bot accounts (allowed on
Reddit per its API rules, Section 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .base import IdAllocator, Post

PLATFORM_NAME = "reddit"

#: Epoch used by Reddit's historical hot-ranking formula.
_HOT_EPOCH = 1134028003


@dataclass
class Subreddit:
    """A community; moderation policy reduced to an automation flag."""

    name: str
    created_at: int
    is_automated: bool = False  # e.g. /r/AutoNewspaper-style feeds
    post_ids: list[str] = field(default_factory=list)


@dataclass
class RedditPost:
    """A submission: a URL or self text plus a title, with votes."""

    post_id: str
    subreddit: str
    author_id: str
    created_at: int
    title: str
    body: str = ""
    ups: int = 1
    downs: int = 0
    comment_ids: list[str] = field(default_factory=list)

    @property
    def score(self) -> int:
        return self.ups - self.downs

    def hot_rank(self) -> float:
        """Reddit's classic hot score: log-votes plus time decay."""
        score = self.score
        order = math.log10(max(abs(score), 1))
        sign = 1 if score > 0 else -1 if score < 0 else 0
        seconds = self.created_at - _HOT_EPOCH
        return round(sign * order + seconds / 45000, 7)

    def to_post(self) -> Post:
        text = f"{self.title}\n{self.body}".strip()
        return Post(
            post_id=self.post_id,
            platform=PLATFORM_NAME,
            community=self.subreddit,
            author_id=self.author_id,
            created_at=self.created_at,
            text=text,
        )


@dataclass
class RedditComment:
    """A threaded comment; ``parent_id`` is a post or another comment."""

    comment_id: str
    post_id: str
    parent_id: str
    subreddit: str
    author_id: str
    created_at: int
    body: str
    ups: int = 1
    downs: int = 0

    @property
    def score(self) -> int:
        return self.ups - self.downs

    def to_post(self) -> Post:
        return Post(
            post_id=self.comment_id,
            platform=PLATFORM_NAME,
            community=self.subreddit,
            author_id=self.author_id,
            created_at=self.created_at,
            text=self.body,
        )


class RedditError(Exception):
    """Raised for operations the real service would reject."""


class RedditPlatform:
    """In-memory Reddit with subreddits, submissions, comments, voting."""

    def __init__(self) -> None:
        self._ids = IdAllocator()
        self.subreddits: dict[str, Subreddit] = {}
        self.posts: dict[str, RedditPost] = {}
        self.comments: dict[str, RedditComment] = {}
        self.unmaterialized_posts: int = 0

    # -- communities ---------------------------------------------------------

    def create_subreddit(self, name: str, created_at: int = 0,
                         is_automated: bool = False) -> Subreddit:
        if name in self.subreddits:
            raise RedditError(f"subreddit {name!r} already exists")
        sub = Subreddit(name=name, created_at=created_at,
                        is_automated=is_automated)
        self.subreddits[name] = sub
        return sub

    def ensure_subreddit(self, name: str, created_at: int = 0) -> Subreddit:
        if name not in self.subreddits:
            return self.create_subreddit(name, created_at)
        return self.subreddits[name]

    # -- content -------------------------------------------------------------

    def submit_post(self, subreddit: str, author_id: str, title: str,
                    created_at: int, body: str = "") -> RedditPost:
        sub = self.subreddits.get(subreddit)
        if sub is None:
            raise RedditError(f"unknown subreddit {subreddit!r}")
        post = RedditPost(
            post_id=self._ids.next_id("rp"),
            subreddit=subreddit,
            author_id=author_id,
            created_at=created_at,
            title=title,
            body=body,
        )
        self.posts[post.post_id] = post
        sub.post_ids.append(post.post_id)
        return post

    def submit_comment(self, parent_id: str, author_id: str, body: str,
                       created_at: int) -> RedditComment:
        """Reply to a post or to another comment."""
        if parent_id in self.posts:
            post = self.posts[parent_id]
        elif parent_id in self.comments:
            post = self.posts[self.comments[parent_id].post_id]
        else:
            raise RedditError(f"unknown parent {parent_id!r}")
        comment = RedditComment(
            comment_id=self._ids.next_id("rc"),
            post_id=post.post_id,
            parent_id=parent_id,
            subreddit=post.subreddit,
            author_id=author_id,
            created_at=created_at,
            body=body,
        )
        self.comments[comment.comment_id] = comment
        post.comment_ids.append(comment.comment_id)
        return comment

    def vote(self, item_id: str, direction: int) -> None:
        """Upvote (+1) or downvote (-1) a post or comment."""
        if direction not in (1, -1):
            raise RedditError("direction must be +1 or -1")
        item: RedditPost | RedditComment | None
        item = self.posts.get(item_id) or self.comments.get(item_id)
        if item is None:
            raise RedditError(f"unknown item {item_id!r}")
        if direction == 1:
            item.ups += 1
        else:
            item.downs += 1

    # -- ranking and lookups ---------------------------------------------------

    def hot_posts(self, subreddit: str, limit: int = 25) -> list[RedditPost]:
        sub = self.subreddits.get(subreddit)
        if sub is None:
            raise RedditError(f"unknown subreddit {subreddit!r}")
        ranked = sorted((self.posts[pid] for pid in sub.post_ids),
                        key=lambda p: p.hot_rank(), reverse=True)
        return ranked[:limit]

    def comment_tree(self, post_id: str) -> dict[str, list[RedditComment]]:
        """Children grouped by parent id, for threaded rendering."""
        post = self.posts.get(post_id)
        if post is None:
            raise RedditError(f"unknown post {post_id!r}")
        tree: dict[str, list[RedditComment]] = {}
        for cid in post.comment_ids:
            comment = self.comments[cid]
            tree.setdefault(comment.parent_id, []).append(comment)
        return tree

    def record_ambient_posts(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.unmaterialized_posts += count

    @property
    def total_posts(self) -> int:
        """Posts + comments, matching the paper's Reddit accounting."""
        return (len(self.posts) + len(self.comments)
                + self.unmaterialized_posts)
