"""A 4chan simulator: anonymous bump-ordered ephemeral imageboards.

Mechanics modeled (Section 2.1): users create threads with an image;
replies bump a thread to the top of the board unless saged or past the
bump limit; each board holds a bounded number of live threads — creating
a new one purges the lowest-ranked; purged threads linger in a temporary
archive and *all* threads are permanently deleted 7 days after purge.
Ephemerality is what a crawler races against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import IdAllocator, Post
from ..timeutil import SECONDS_PER_DAY

PLATFORM_NAME = "4chan"
ANONYMOUS = "Anonymous"

#: Threads are permanently deleted this long after being purged.
ARCHIVE_RETENTION = 7 * SECONDS_PER_DAY


@dataclass
class FourchanPost:
    """One post; 4chan posts are anonymous (no author identity)."""

    post_number: int
    thread_id: int
    board: str
    created_at: int
    text: str
    has_image: bool = False
    #: Post numbers quoted with ``>>`` syntax.
    quotes: tuple[int, ...] = ()

    def to_post(self) -> Post:
        return Post(
            post_id=f"{self.board}/{self.post_number}",
            platform=PLATFORM_NAME,
            community=f"/{self.board}/",
            author_id=None,
            created_at=self.created_at,
            text=self.text,
        )


@dataclass
class FourchanThread:
    """A thread: an opening post plus replies, with bump bookkeeping."""

    thread_id: int
    board: str
    created_at: int
    posts: list[FourchanPost] = field(default_factory=list)
    last_bumped_at: int = 0
    purged_at: int | None = None
    deleted: bool = False

    @property
    def op(self) -> FourchanPost:
        return self.posts[0]

    @property
    def reply_count(self) -> int:
        return len(self.posts) - 1

    @property
    def is_live(self) -> bool:
        return self.purged_at is None and not self.deleted


@dataclass
class FourchanBoard:
    """Board configuration: capacity and bump limit differ per board."""

    name: str
    thread_capacity: int = 150
    bump_limit: int = 300
    thread_ids: list[int] = field(default_factory=list)


class FourchanError(Exception):
    """Raised for operations the real service would reject."""


class FourchanPlatform:
    """In-memory 4chan with bump ordering, purging, and 7-day deletion."""

    def __init__(self) -> None:
        self._ids = IdAllocator()
        self._post_counters: dict[str, int] = {}
        self.boards: dict[str, FourchanBoard] = {}
        self.threads: dict[int, FourchanThread] = {}
        self.unmaterialized_posts: int = 0
        self._materialized_posts = 0

    # -- boards ---------------------------------------------------------------

    def create_board(self, name: str, thread_capacity: int = 150,
                     bump_limit: int = 300) -> FourchanBoard:
        name = name.strip("/")
        if name in self.boards:
            raise FourchanError(f"board /{name}/ already exists")
        board = FourchanBoard(name=name, thread_capacity=thread_capacity,
                              bump_limit=bump_limit)
        self.boards[name] = board
        return board

    def _require_board(self, name: str) -> FourchanBoard:
        board = self.boards.get(name.strip("/"))
        if board is None:
            raise FourchanError(f"unknown board /{name}/")
        return board

    def _next_post_number(self, board: str) -> int:
        self._post_counters[board] = self._post_counters.get(board, 0) + 1
        return self._post_counters[board]

    # -- posting ----------------------------------------------------------------

    def create_thread(self, board: str, text: str, created_at: int,
                      ) -> FourchanThread:
        """Open a new thread (OP must carry an image)."""
        board_obj = self._require_board(board)
        thread = FourchanThread(
            thread_id=int(self._ids.next_id("th").lstrip("th")),
            board=board_obj.name,
            created_at=created_at,
            last_bumped_at=created_at,
        )
        op = FourchanPost(
            post_number=self._next_post_number(board_obj.name),
            thread_id=thread.thread_id,
            board=board_obj.name,
            created_at=created_at,
            text=text,
            has_image=True,
        )
        thread.posts.append(op)
        self._materialized_posts += 1
        self.threads[thread.thread_id] = thread
        board_obj.thread_ids.append(thread.thread_id)
        self._enforce_capacity(board_obj, now=created_at)
        return thread

    def reply(self, thread_id: int, text: str, created_at: int,
              has_image: bool = False, sage: bool = False,
              quotes: tuple[int, ...] = ()) -> FourchanPost:
        """Add a reply; bumps the thread unless saged or past bump limit."""
        thread = self.threads.get(thread_id)
        if thread is None or thread.deleted:
            raise FourchanError(f"thread {thread_id} does not exist")
        if not thread.is_live:
            raise FourchanError(f"thread {thread_id} is archived")
        post = FourchanPost(
            post_number=self._next_post_number(thread.board),
            thread_id=thread_id,
            board=thread.board,
            created_at=created_at,
            text=text,
            has_image=has_image,
            quotes=quotes,
        )
        thread.posts.append(post)
        self._materialized_posts += 1
        board = self.boards[thread.board]
        if not sage and thread.reply_count <= board.bump_limit:
            thread.last_bumped_at = created_at
        return post

    # -- ephemerality -------------------------------------------------------------

    def _enforce_capacity(self, board: FourchanBoard, now: int) -> None:
        """Purge lowest-bumped threads once the board exceeds capacity."""
        live = [tid for tid in board.thread_ids
                if self.threads[tid].is_live]
        excess = len(live) - board.thread_capacity
        if excess <= 0:
            return
        by_bump = sorted(live, key=lambda tid: self.threads[tid].last_bumped_at)
        for tid in by_bump[:excess]:
            self.threads[tid].purged_at = now

    def expire_archives(self, now: int) -> int:
        """Permanently delete threads purged more than 7 days ago."""
        deleted = 0
        for thread in self.threads.values():
            if (thread.purged_at is not None and not thread.deleted
                    and now - thread.purged_at >= ARCHIVE_RETENTION):
                thread.deleted = True
                deleted += 1
        return deleted

    # -- views -----------------------------------------------------------------

    def catalog(self, board: str) -> list[FourchanThread]:
        """Live threads in bump order (what the site shows)."""
        board_obj = self._require_board(board)
        live = [self.threads[tid] for tid in board_obj.thread_ids
                if self.threads[tid].is_live]
        return sorted(live, key=lambda t: t.last_bumped_at, reverse=True)

    def visible_threads(self, board: str) -> list[FourchanThread]:
        """Live + archived-but-not-yet-deleted threads (crawler view)."""
        board_obj = self._require_board(board)
        return [self.threads[tid] for tid in board_obj.thread_ids
                if not self.threads[tid].deleted]

    def bump_position(self, thread_id: int) -> int | None:
        """Zero-based catalog position, or ``None`` if not live."""
        thread = self.threads.get(thread_id)
        if thread is None or not thread.is_live:
            return None
        ordering = self.catalog(thread.board)
        return next(i for i, t in enumerate(ordering)
                    if t.thread_id == thread_id)

    def record_ambient_posts(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.unmaterialized_posts += count

    @property
    def total_posts(self) -> int:
        return self._materialized_posts + self.unmaterialized_posts
