"""Platform substrates: Twitter, Reddit, and 4chan simulators.

Each simulator models the mechanics the paper's measurements depend on:
Twitter's retweets/likes and account suspension, Reddit's subreddits
with threaded voted comments, and 4chan's bump-ordered ephemeral
threads.  The collection layer crawls these objects the way the paper's
infrastructure crawled the real services.
"""

from .base import Author, Post
from .generic import GenericPlatform
from .registry import PAPER_ECOSYSTEM, Ecosystem, PlatformSpec, make_ecosystem
from .twitter import Tweet, TwitterPlatform, TwitterUser
from .reddit import RedditComment, RedditPlatform, RedditPost, Subreddit
from .fourchan import FourchanBoard, FourchanPlatform, FourchanPost, FourchanThread

__all__ = [
    "Author",
    "Ecosystem",
    "GenericPlatform",
    "PAPER_ECOSYSTEM",
    "PlatformSpec",
    "Post",
    "make_ecosystem",
    "Tweet",
    "TwitterPlatform",
    "TwitterUser",
    "RedditComment",
    "RedditPlatform",
    "RedditPost",
    "Subreddit",
    "FourchanBoard",
    "FourchanPlatform",
    "FourchanPost",
    "FourchanThread",
]
