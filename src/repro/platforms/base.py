"""Shared platform primitives.

Every platform ultimately produces :class:`Post` records — the common
currency the collection layer stores and the analyses consume.  A post
knows its platform, community (subreddit, board, or ``"twitter"``),
author (``None`` on anonymous 4chan), timestamp, and raw text.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Author:
    """A pseudonymous account on some platform."""

    author_id: str
    handle: str
    is_bot: bool = False


@dataclass(frozen=True)
class Post:
    """The minimal record the measurement pipeline operates on."""

    post_id: str
    platform: str
    community: str
    author_id: str | None
    created_at: int
    text: str

    def __post_init__(self) -> None:
        if self.created_at < 0:
            raise ValueError("created_at must be non-negative")


class IdAllocator:
    """Monotonic string-id factory, one namespace per prefix."""

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}

    def next_id(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count(1))
        return f"{prefix}{next(counter)}"
