"""Platform registry: declarative platform specs and K-platform ecosystems.

The paper studies one fixed ecosystem — Twitter, Reddit (six selected
subreddits), and 4chan's /pol/ — and the original codebase hardwired
that triple everywhere.  This module is the generalization point: a
:class:`PlatformSpec` declares one platform (its collector key, its
influence process, its sequence-table code, its synthesis knobs for
generic platforms), and an :class:`Ecosystem` bundles K platforms into
the routing every layer shares:

* ``processes`` — the K axes of the Hawkes influence matrices
  (Figures 10-11, Table 11);
* ``process_of(community)`` — community name → influence process,
  or ``None`` for communities outside the model (Section 5.2);
* ``slice_of(record)`` — record → coarse platform slice (Tables 8-10);
* ``require_all`` / ``require_any`` — the corpus selection rule
  generalizing "on Twitter AND /pol/ AND ≥ 1 subreddit".

:data:`PAPER_ECOSYSTEM` reproduces the paper's fixed triple exactly;
scenarios (:mod:`repro.scenarios`) build variants via
:func:`make_ecosystem`.  This module is import-cycle safe: it imports
nothing from :mod:`repro.config` (config derives its legacy constants
*from* here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Paper community literals (Sections 3 and 5)
# ---------------------------------------------------------------------------

#: The six selected subreddits (Section 3).
SELECTED_SUBREDDITS: tuple[str, ...] = (
    "The_Donald",
    "worldnews",
    "politics",
    "news",
    "conspiracy",
    "AskReddit",
)

#: 4chan boards studied; /pol/ is primary, the rest are baselines.
FOURCHAN_BOARDS: tuple[str, ...] = ("pol", "sp", "int", "sci")
FOURCHAN_BASELINE_BOARDS: tuple[str, ...] = ("sp", "int", "sci")

#: Canonical ordering of the 8 Hawkes processes, matching Fig. 10/11 axes.
HAWKES_PROCESSES: tuple[str, ...] = SELECTED_SUBREDDITS + ("/pol/", "Twitter")

#: Display names for the coarse platform split used in Tables 8-10.
PLATFORM_TWITTER = "Twitter"
PLATFORM_REDDIT = "Reddit"       # six selected subreddits
PLATFORM_POL = "/pol/"
SEQUENCE_PLATFORMS: tuple[str, ...] = (PLATFORM_POL, PLATFORM_REDDIT,
                                       PLATFORM_TWITTER)
#: Single-letter codes used by the paper's sequence tables.
PLATFORM_CODES = {PLATFORM_POL: "4", PLATFORM_REDDIT: "R",
                  PLATFORM_TWITTER: "T"}


# ---------------------------------------------------------------------------
# Platform specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlatformSpec:
    """One platform of an ecosystem, declaratively.

    ``kind`` selects the simulator/collector pair: the three built-in
    kinds (``twitter`` / ``reddit`` / ``fourchan``) are the paper's
    platforms with their full mechanics; ``generic`` is a minimal forum
    (:class:`repro.platforms.generic.GenericPlatform`) whose synthesis
    knobs live on the spec itself, so a scenario can add a K-th
    platform (Gab, Telegram, ...) without writing a simulator.
    """

    #: Collector/stream key; also ``DatasetRecord.platform`` for records.
    key: str
    #: Human-readable name used in tables and reports.
    display: str
    #: ``twitter`` | ``reddit`` | ``fourchan`` | ``generic``.
    kind: str
    #: Name of this platform's influence process / sequence slice.
    process: str
    #: Single-letter code for the sequence tables (Tables 9-10).
    code: str
    #: Community names whose events route to this platform.
    communities: tuple[str, ...] = ()
    # -- generic-platform synthesis knobs (ignored for built-in kinds) --
    #: Ground-truth background rates, events/minute (Table 11 scale).
    background_alternative: float = 0.0008
    background_mainstream: float = 0.0015
    #: Self-excitation weight and generic cross-couplings appended to
    #: the ground-truth weight matrix (:func:`extend_ground_truth`).
    self_excitation: float = 0.08
    coupling: float = 0.03
    incoming_weight: float = 0.04
    #: Ambient (non-news) posts per news post (Table 1 style ratio).
    ambient_ratio: float = 600.0
    #: Synthetic author pool size.
    n_users: int = 400


TWITTER_SPEC = PlatformSpec(
    key="twitter", display="Twitter", kind="twitter",
    process=PLATFORM_TWITTER, code="T", communities=("Twitter",))
REDDIT_SPEC = PlatformSpec(
    key="reddit", display="Reddit", kind="reddit",
    process=PLATFORM_REDDIT, code="R", communities=SELECTED_SUBREDDITS)
FOURCHAN_SPEC = PlatformSpec(
    key="4chan", display="4chan", kind="fourchan",
    process=PLATFORM_POL, code="4", communities=("/pol/",))

#: The paper's fixed platform triple, in sequence-table order.
BUILTIN_SPECS: tuple[PlatformSpec, ...] = (FOURCHAN_SPEC, REDDIT_SPEC,
                                           TWITTER_SPEC)


# ---------------------------------------------------------------------------
# Ecosystems
# ---------------------------------------------------------------------------

@dataclass
class Ecosystem:
    """K platforms plus the routing every analysis layer shares."""

    name: str
    #: All platforms, built-ins first, then generic extras.
    platforms: tuple[PlatformSpec, ...]
    #: The K axes of the influence matrices, in canonical order.
    processes: tuple[str, ...]
    #: Community name -> influence process (communities absent from the
    #: map are outside the model, Section 5.2).
    community_to_process: dict[str, str]
    #: The subreddits routed to the Reddit slice.
    subreddits: tuple[str, ...] = SELECTED_SUBREDDITS
    #: Coarse platform slices of Tables 8-10, in table order.
    slices: tuple[str, ...] = SEQUENCE_PLATFORMS
    #: Slice -> single-letter sequence-table code.
    codes: dict[str, str] = field(default_factory=lambda: dict(PLATFORM_CODES))
    #: Corpus selection rule: a URL qualifies with >= 1 event on every
    #: ``require_all`` process and >= 1 event on any ``require_any``
    #: process (empty ``require_any`` disables that clause).
    require_all: tuple[str, ...] = (PLATFORM_TWITTER, PLATFORM_POL)
    require_any: tuple[str, ...] = SELECTED_SUBREDDITS

    def __post_init__(self) -> None:
        self._subreddit_set = frozenset(self.subreddits)
        #: record.platform -> slice, for generic extras.
        self._extra_slices = {spec.key: spec.process
                              for spec in self.extras}

    @property
    def extras(self) -> tuple[PlatformSpec, ...]:
        """The generic platforms beyond the paper's built-in triple."""
        return tuple(spec for spec in self.platforms
                     if spec.kind == "generic")

    def process_of(self, community: str) -> str | None:
        """Influence process of a community, or ``None`` if unmodeled."""
        return self.community_to_process.get(community)

    def slice_of(self, record) -> str | None:
        """Coarse-platform slice of a dataset record, or ``None``.

        Reproduces :func:`repro.analysis.characterization.sequence_slice_of`
        exactly for the paper's platforms, and routes generic extras by
        their collector key.
        """
        if record.platform == "twitter":
            return PLATFORM_TWITTER
        if record.platform == "reddit":
            return (PLATFORM_REDDIT
                    if record.community in self._subreddit_set else None)
        if record.platform == "4chan":
            return (PLATFORM_POL
                    if record.community == PLATFORM_POL else None)
        return self._extra_slices.get(record.platform)


def make_ecosystem(name: str, *,
                   extras: tuple[PlatformSpec, ...] = (),
                   merge_subreddits: bool = False,
                   require_all: tuple[str, ...] | None = None,
                   require_any: tuple[str, ...] | None = None,
                   subreddits: tuple[str, ...] = SELECTED_SUBREDDITS,
                   ) -> Ecosystem:
    """Build an ecosystem over the built-in triple plus generic extras.

    ``merge_subreddits=False`` keeps the paper's process axes (each of
    the six subreddits is its own process, K = 8 + extras);
    ``merge_subreddits=True`` collapses them into one platform-level
    ``Reddit`` process (K = 3 + extras), which is the natural axis set
    when comparing whole platforms (e.g. the ``gab`` scenario's 4x4
    matrix).
    """
    extra_processes = tuple(spec.process for spec in extras)
    if merge_subreddits:
        processes = (PLATFORM_REDDIT, PLATFORM_POL,
                     PLATFORM_TWITTER) + extra_processes
        mapping = {sub: PLATFORM_REDDIT for sub in subreddits}
        mapping[PLATFORM_POL] = PLATFORM_POL
        mapping[PLATFORM_TWITTER] = PLATFORM_TWITTER
        default_any = (PLATFORM_REDDIT,) + extra_processes
    else:
        processes = tuple(subreddits) + (PLATFORM_POL,
                                         PLATFORM_TWITTER) + extra_processes
        mapping = {p: p for p in processes}
        default_any = tuple(subreddits)
    for spec in extras:
        for community in spec.communities or (spec.process,):
            mapping[community] = spec.process
    codes = dict(PLATFORM_CODES)
    codes.update({spec.process: spec.code for spec in extras})
    return Ecosystem(
        name=name,
        platforms=BUILTIN_SPECS + tuple(extras),
        processes=processes,
        community_to_process=mapping,
        subreddits=tuple(subreddits),
        slices=SEQUENCE_PLATFORMS + tuple(spec.process for spec in extras),
        codes=codes,
        require_all=(require_all if require_all is not None
                     else (PLATFORM_TWITTER, PLATFORM_POL)),
        require_any=(require_any if require_any is not None
                     else default_any),
    )


#: The paper's ecosystem: K = 8 processes over the fixed triple, with
#: the Section 5.2 selection rule.  Every legacy entry point that does
#: not name a scenario runs against this.
PAPER_ECOSYSTEM = make_ecosystem("paper")
