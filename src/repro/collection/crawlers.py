"""Reddit dump reader and 4chan crawler (Section 2.2).

Reddit data came from Pushshift dumps — complete, no gaps — so the
reader simply walks every post and comment.  The 4chan crawler polls
boards continuously; it has outage windows, and because threads are
ephemeral, posts whose thread is purged *and* permanently deleted while
the crawler is down are lost forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..config import FOURCHAN_GAPS
from ..news.classify import extract_news_urls
from ..news.domains import NewsRegistry, default_registry
from ..platforms.fourchan import FourchanPlatform
from ..platforms.generic import GenericPlatform
from ..platforms.reddit import RedditPlatform
from ..timeutil import Interval, in_any_interval
from .columnar import RecordBatch, batch_records
from .store import Dataset, DatasetRecord, UrlOccurrence


@dataclass
class GenericCollector:
    """Dump-style reader for a scenario-declared generic platform."""

    registry: NewsRegistry = field(default_factory=default_registry)

    def stream(self, platform: GenericPlatform) -> Iterator[DatasetRecord]:
        """Yield news-URL records one at a time, in timestamp order."""
        for post in sorted(platform.posts, key=lambda p: p.created_at):
            news_urls = extract_news_urls(post.text, self.registry)
            if not news_urls:
                continue
            yield DatasetRecord(
                post_id=post.post_id,
                platform=platform.key,
                community=post.community,
                author_id=post.author_id,
                created_at=float(post.created_at),
                urls=tuple(
                    UrlOccurrence(url=u.url, domain=u.domain,
                                  category=u.category)
                    for u in news_urls
                ),
            )

    def stream_batches(self, platform: GenericPlatform,
                       batch_size: int = 512) -> Iterator[RecordBatch]:
        """:meth:`stream` packed into timestamp-ordered column chunks."""
        return batch_records(self.stream(platform), batch_size)

    def collect(self, platform: GenericPlatform) -> Dataset:
        return Dataset(self.stream(platform))


@dataclass
class RedditDumpReader:
    """Reads every post and comment, Pushshift style."""

    registry: NewsRegistry = field(default_factory=default_registry)

    def stream(self, platform: RedditPlatform) -> Iterator[DatasetRecord]:
        """Yield news-URL records one at a time, in timestamp order."""
        items = [post.to_post() for post in platform.posts.values()]
        items.extend(comment.to_post()
                     for comment in platform.comments.values())
        items.sort(key=lambda p: p.created_at)
        for post in items:
            news_urls = extract_news_urls(post.text, self.registry)
            if not news_urls:
                continue
            yield DatasetRecord(
                post_id=post.post_id,
                platform="reddit",
                community=post.community,
                author_id=post.author_id,
                created_at=float(post.created_at),
                urls=tuple(
                    UrlOccurrence(url=u.url, domain=u.domain,
                                  category=u.category)
                    for u in news_urls
                ),
            )

    def stream_batches(self, platform: RedditPlatform,
                       batch_size: int = 512) -> Iterator[RecordBatch]:
        """:meth:`stream` packed into timestamp-ordered column chunks."""
        return batch_records(self.stream(platform), batch_size)

    def collect(self, platform: RedditPlatform) -> Dataset:
        return Dataset(self.stream(platform))


@dataclass
class FourchanCrawler:
    """Continuously polls boards; loses posts that expire during outages.

    A post is recoverable if the crawler is up at any moment between the
    post's creation and its thread's permanent deletion (creation + the
    archive retention after purge).  With the paper's gap windows, only
    posts whose entire visibility window falls inside one gap are lost.
    """

    registry: NewsRegistry = field(default_factory=default_registry)
    gaps: Sequence[Interval] = FOURCHAN_GAPS

    def _lost(self, created_at: int, gone_at: int | None) -> bool:
        """True if the whole [created, gone) window sits inside one gap."""
        for gap in self.gaps:
            if gap.contains(created_at):
                if gone_at is not None and gone_at <= gap.end:
                    return True
        return False

    def stream(self, platform: FourchanPlatform,
               boards: Sequence[str] | None = None,
               ) -> Iterator[DatasetRecord]:
        """Yield news-URL records one at a time, in timestamp order."""
        board_names = ([b.strip("/") for b in boards] if boards
                       else list(platform.boards))
        posts = []
        for thread in platform.threads.values():
            if thread.board not in board_names:
                continue
            gone_at = None
            if thread.purged_at is not None:
                from ..platforms.fourchan import ARCHIVE_RETENTION
                gone_at = thread.purged_at + ARCHIVE_RETENTION
            for post in thread.posts:
                if self._lost(post.created_at, gone_at):
                    continue
                posts.append(post)
        posts.sort(key=lambda p: p.created_at)
        for raw in posts:
            post = raw.to_post()
            news_urls = extract_news_urls(post.text, self.registry)
            if not news_urls:
                continue
            yield DatasetRecord(
                post_id=post.post_id,
                platform="4chan",
                community=post.community,
                author_id=None,
                created_at=float(post.created_at),
                urls=tuple(
                    UrlOccurrence(url=u.url, domain=u.domain,
                                  category=u.category)
                    for u in news_urls
                ),
            )

    def stream_batches(self, platform: FourchanPlatform,
                       boards: Sequence[str] | None = None,
                       batch_size: int = 512) -> Iterator[RecordBatch]:
        """:meth:`stream` packed into timestamp-ordered column chunks."""
        return batch_records(self.stream(platform, boards), batch_size)

    def collect(self, platform: FourchanPlatform,
                boards: Sequence[str] | None = None) -> Dataset:
        return Dataset(self.stream(platform, boards))
