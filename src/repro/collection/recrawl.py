"""Tweet re-crawling for engagement counts (Table 3).

Tweets arrive from the stream at posting time, before they accumulate
retweets and likes, so the paper re-crawled every collected tweet months
later.  Some are gone by then — deleted, or the account suspended — and
the unavailability is higher for alternative-news tweets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..news.domains import NewsCategory
from ..platforms.twitter import TwitterPlatform
from .store import Dataset


@dataclass
class CategoryRecrawl:
    """Re-crawl outcome for one news category."""

    tweets: int = 0
    retrieved: int = 0
    retweets: list[int] = field(default_factory=list)
    likes: list[int] = field(default_factory=list)

    @property
    def retrieved_fraction(self) -> float:
        return self.retrieved / self.tweets if self.tweets else 0.0

    @property
    def mean_retweets(self) -> float:
        return float(np.mean(self.retweets)) if self.retweets else 0.0

    @property
    def std_retweets(self) -> float:
        return float(np.std(self.retweets)) if self.retweets else 0.0

    @property
    def mean_likes(self) -> float:
        return float(np.mean(self.likes)) if self.likes else 0.0

    @property
    def std_likes(self) -> float:
        return float(np.std(self.likes)) if self.likes else 0.0


@dataclass
class RecrawlStats:
    """Per-category re-crawl statistics (the rows of Table 3)."""

    alternative: CategoryRecrawl
    mainstream: CategoryRecrawl

    def of(self, category: NewsCategory) -> CategoryRecrawl:
        return (self.alternative if category == NewsCategory.ALTERNATIVE
                else self.mainstream)


class TweetRecrawler:
    """Re-fetches every tweet in a dataset from the platform."""

    def recrawl(self, dataset: Dataset,
                platform: TwitterPlatform) -> RecrawlStats:
        stats = RecrawlStats(alternative=CategoryRecrawl(),
                             mainstream=CategoryRecrawl())
        for record in dataset:
            if record.platform != "twitter":
                continue
            tweet = platform.fetch_tweet(record.post_id)
            categories = {occurrence.category for occurrence in record.urls}
            for category in categories:
                bucket = stats.of(category)
                bucket.tweets += 1
                if tweet is None:
                    continue
                bucket.retrieved += 1
                original = tweet
                if tweet.retweet_of is not None:
                    fetched = platform.fetch_tweet(tweet.retweet_of)
                    if fetched is not None:
                        original = fetched
                bucket.retweets.append(original.retweet_count)
                bucket.likes.append(original.like_count)
        return stats
