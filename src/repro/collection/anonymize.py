"""Dataset anonymization for release.

Measurement papers release datasets with pseudonymized account
identifiers.  :func:`anonymize_dataset` replaces author ids with keyed
HMAC-SHA256 digests: stable within one release (the same author maps to
the same pseudonym, preserving per-user analyses like Figure 3) but
unlinkable without the key, and unlinkable *across* releases that use
different keys.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from .store import Dataset, DatasetRecord


@dataclass(frozen=True)
class AnonymizationKey:
    """The secret key for one release; keep it out of the release."""

    key: bytes

    @classmethod
    def generate(cls) -> "AnonymizationKey":
        return cls(key=secrets.token_bytes(32))

    @classmethod
    def from_passphrase(cls, passphrase: str) -> "AnonymizationKey":
        digest = hashlib.sha256(passphrase.encode("utf-8")).digest()
        return cls(key=digest)

    def pseudonym(self, author_id: str, length: int = 16) -> str:
        mac = hmac.new(self.key, author_id.encode("utf-8"),
                       hashlib.sha256)
        return mac.hexdigest()[:length]


def anonymize_record(record: DatasetRecord,
                     key: AnonymizationKey) -> DatasetRecord:
    """Replace the author id with its keyed pseudonym (None stays None)."""
    if record.author_id is None:
        return record
    return DatasetRecord(
        post_id=record.post_id,
        platform=record.platform,
        community=record.community,
        author_id=key.pseudonym(record.author_id),
        created_at=record.created_at,
        urls=record.urls,
    )


def anonymize_dataset(dataset: Dataset,
                      key: AnonymizationKey | None = None,
                      ) -> tuple[Dataset, AnonymizationKey]:
    """Return an anonymized copy of ``dataset`` and the key used.

    Per-author groupings survive (pseudonyms are stable under the key);
    nothing else changes.
    """
    key = key or AnonymizationKey.generate()
    return Dataset(anonymize_record(r, key) for r in dataset), key
