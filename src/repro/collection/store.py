"""The dataset store: crawled records keyed the way the analyses need.

A :class:`DatasetRecord` is one crawled post/comment/tweet that contains
at least one news URL; a :class:`Dataset` is an ordered collection with
JSONL persistence and the groupings (per community, per URL, per user)
every analysis module consumes.
"""

from __future__ import annotations

import json
import logging
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from .columnar import RecordBatch

from ..news.domains import NewsCategory


@dataclass(frozen=True)
class UrlOccurrence:
    """One news URL found in one post."""

    url: str
    domain: str
    category: NewsCategory


@dataclass(frozen=True)
class DatasetRecord:
    """One crawled post containing news URLs.

    ``community`` is the fine-grained venue: a subreddit name, a 4chan
    board like ``"/pol/"``, or ``"Twitter"``.  ``platform`` is the
    coarse service name (``twitter`` / ``reddit`` / ``4chan``).
    """

    post_id: str
    platform: str
    community: str
    author_id: str | None
    created_at: float
    urls: tuple[UrlOccurrence, ...]

    def urls_of(self, category: NewsCategory) -> tuple[UrlOccurrence, ...]:
        return tuple(u for u in self.urls if u.category == category)

    def to_json(self) -> str:
        payload = {
            "post_id": self.post_id,
            "platform": self.platform,
            "community": self.community,
            "author_id": self.author_id,
            "created_at": self.created_at,
            "urls": [
                {"url": u.url, "domain": u.domain,
                 "category": u.category.value}
                for u in self.urls
            ],
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "DatasetRecord":
        payload = json.loads(line)
        return cls(
            post_id=payload["post_id"],
            platform=payload["platform"],
            community=payload["community"],
            author_id=payload["author_id"],
            created_at=payload["created_at"],
            urls=tuple(
                UrlOccurrence(url=u["url"], domain=u["domain"],
                              category=NewsCategory(u["category"]))
                for u in payload["urls"]
            ),
        )


class Dataset:
    """An append-only collection of crawled records with index helpers."""

    def __init__(self, records: Iterable[DatasetRecord] = ()) -> None:
        self.records: list[DatasetRecord] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DatasetRecord]:
        return iter(self.records)

    def add(self, record: DatasetRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[DatasetRecord]) -> None:
        self.records.extend(records)

    def merged_with(self, other: "Dataset") -> "Dataset":
        return Dataset([*self.records, *other.records])

    # -- groupings ----------------------------------------------------------

    def filter(self, predicate: Callable[[DatasetRecord], bool]) -> "Dataset":
        return Dataset(r for r in self.records if predicate(r))

    def by_community(self) -> dict[str, list[DatasetRecord]]:
        grouped: dict[str, list[DatasetRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.community, []).append(record)
        return grouped

    def by_platform(self) -> dict[str, list[DatasetRecord]]:
        grouped: dict[str, list[DatasetRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.platform, []).append(record)
        return grouped

    def url_timestamps(self, category: NewsCategory | None = None,
                       ) -> dict[str, list[tuple[float, str]]]:
        """url -> sorted [(timestamp, community)] across all records."""
        occurrences: dict[str, list[tuple[float, str]]] = {}
        for record in self.records:
            for occurrence in record.urls:
                if category is not None and occurrence.category != category:
                    continue
                occurrences.setdefault(occurrence.url, []).append(
                    (record.created_at, record.community))
        for url in occurrences:
            occurrences[url].sort()
        return occurrences

    def url_categories(self) -> dict[str, NewsCategory]:
        categories: dict[str, NewsCategory] = {}
        for record in self.records:
            for occurrence in record.urls:
                categories.setdefault(occurrence.url, occurrence.category)
        return categories

    def by_author(self) -> dict[str, list[DatasetRecord]]:
        grouped: dict[str, list[DatasetRecord]] = {}
        for record in self.records:
            if record.author_id is None:
                continue
            grouped.setdefault(record.author_id, []).append(record)
        return grouped

    def unique_urls(self, category: NewsCategory | None = None) -> set[str]:
        urls: set[str] = set()
        for record in self.records:
            for occurrence in record.urls:
                if category is None or occurrence.category == category:
                    urls.add(occurrence.url)
        return urls

    def url_post_count(self, category: NewsCategory | None = None) -> int:
        """Number of posts containing at least one URL of ``category``."""
        if category is None:
            return len(self.records)
        return sum(1 for r in self.records if r.urls_of(category))

    # -- persistence ----------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(record.to_json())
                handle.write("\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "Dataset":
        return cls(iter_jsonl(path))


class MalformedRecordError(ValueError):
    """A JSONL line could not be parsed into a :class:`DatasetRecord`."""


class TruncatedRecordError(MalformedRecordError):
    """The final JSONL line is an incomplete write (no trailing newline).

    A crashed or still-running writer leaves a partial last line; unlike
    a malformed record mid-file, this is expected after an unclean
    shutdown and callers often want to skip it and resume appending.
    """


def _source_family(path: Path) -> str:
    """Collapse shard-numbered files onto one metric label.

    ``tweets-00017.jsonl``, ``tweets-00018.jsonl`` and ``tweets.jsonl``
    all report as ``tweets``, the same way the quarantine metrics label
    by source rather than by individual file, so per-shard filenames
    don't explode the label space.
    """
    stem = path.stem
    return re.sub(r"[-_.#]*\d[\d\-_.#]*$", "", stem) or stem


def _iter_jsonl_rows(path: Path, on_malformed: str,
                     ) -> Iterator[DatasetRecord]:
    family = _source_family(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                yield DatasetRecord.from_json(line)
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                truncated = not raw.endswith("\n")
                if on_malformed == "raise":
                    if truncated:
                        raise TruncatedRecordError(
                            f"{path}:{lineno}: truncated final record "
                            f"(file ends mid-line; incomplete write?): "
                            f"{type(exc).__name__}: {exc}") from exc
                    raise MalformedRecordError(
                        f"{path}:{lineno}: malformed record: "
                        f"{type(exc).__name__}: {exc}") from exc
                from ..obs import get_registry
                reason = "truncated" if truncated else "malformed"
                get_registry().counter(
                    "repro_ingest_malformed_total",
                    "JSONL lines skipped because they failed to parse.",
                    source=family, reason=reason).inc()
                logging.getLogger("repro.collection").warning(
                    "skipping %s record at %s:%d (%s: %s)",
                    reason, path, lineno, type(exc).__name__, exc)


def iter_jsonl(path: str | Path, *,
               on_malformed: str = "raise",
               batch_size: int | None = None,
               ) -> "Iterator[DatasetRecord] | Iterator[RecordBatch]":
    """Stream records from a JSONL file one line at a time.

    Never materializes the whole file; usable directly as an event-bus
    source for replaying a saved dataset (see :mod:`repro.live.bus`).

    ``on_malformed`` controls what happens when a line does not parse:

    * ``"raise"`` (default) — raise :class:`MalformedRecordError`
      naming the file and line number, or the sharper
      :class:`TruncatedRecordError` when the bad line is the *last*
      line and lacks its trailing newline (the signature of a torn
      final write).
    * ``"skip"`` — log a warning, count the line in
      ``repro_ingest_malformed_total{source,reason}`` (``source`` is
      the file's shard family: ``tweets-00017`` counts as ``tweets``),
      and continue with the next.

    With ``batch_size=N`` the same validated stream is packed into
    columnar :class:`~repro.collection.columnar.RecordBatch` chunks of
    up to ``N`` records each (the last may be shorter); malformed
    handling is identical because packing happens downstream of the
    per-line validation above.
    """
    if on_malformed not in ("raise", "skip"):
        raise ValueError(f"on_malformed must be 'raise' or 'skip', "
                         f"not {on_malformed!r}")
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, not {batch_size}")
    rows = _iter_jsonl_rows(Path(path), on_malformed)
    if batch_size is None:
        return rows
    from .columnar import batch_records  # circular at module load
    return batch_records(rows, batch_size)
