"""The Twitter Streaming-API collector (Section 2.2).

The paper collected the 1% public sample filtered to tweets carrying
URLs from the 99 news domains, with several multi-day outages.  The
collector walks the platform firehose in timestamp order, applies the
Bernoulli sample, skips outage windows, and keeps tweets whose text
contains a news URL.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..config import TWITTER_GAPS
from ..news.classify import extract_news_urls
from ..news.domains import NewsRegistry, default_registry
from ..platforms.twitter import TwitterPlatform
from ..timeutil import Interval, in_any_interval
from .columnar import RecordBatch, batch_records
from .store import Dataset, DatasetRecord, UrlOccurrence


@dataclass
class TwitterStreamCollector:
    """Samples the firehose into a news-URL dataset.

    ``sample_rate`` is the streaming sample fraction.  The default is 1.0
    because the synthetic world is already volume-scaled; set 0.01 to
    model the 1% sample explicitly on a full-scale world.
    """

    registry: NewsRegistry = field(default_factory=default_registry)
    gaps: Sequence[Interval] = TWITTER_GAPS
    sample_rate: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.sample_rate <= 1:
            raise ValueError("sample_rate must be in (0, 1]")

    def stream(self, platform: TwitterPlatform) -> Iterator[DatasetRecord]:
        """Yield news-URL records one at a time, in timestamp order.

        Each call samples with a fresh ``Random(seed)``, so repeated
        streams of the same firehose are identical — the deterministic
        replay that checkpoint resume relies on.
        """
        rng = random.Random(self.seed)
        for tweet in sorted(platform.firehose, key=lambda t: t.created_at):
            if in_any_interval(tweet.created_at, self.gaps):
                continue
            if (self.sample_rate < 1.0
                    and rng.random() >= self.sample_rate):
                continue
            news_urls = extract_news_urls(tweet.text, self.registry)
            if not news_urls:
                continue
            yield DatasetRecord(
                post_id=tweet.tweet_id,
                platform="twitter",
                community="Twitter",
                author_id=tweet.user_id,
                created_at=float(tweet.created_at),
                urls=tuple(
                    UrlOccurrence(url=u.url, domain=u.domain,
                                  category=u.category)
                    for u in news_urls
                ),
            )

    def stream_batches(self, platform: TwitterPlatform,
                       batch_size: int = 512) -> Iterator[RecordBatch]:
        """:meth:`stream` packed into timestamp-ordered column chunks."""
        return batch_records(self.stream(platform), batch_size)

    def collect(self, platform: TwitterPlatform) -> Dataset:
        """Stream the platform's tweets into a dataset."""
        return Dataset(self.stream(platform))
