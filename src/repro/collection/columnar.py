"""Columnar record batches: the array-shaped spine of the record flow.

The paper's measurements are bulk aggregations over millions of URL
occurrences, so records moving through the system one dict at a time
pay Python-interpreter prices for work that is naturally vectorized.
A :class:`RecordBatch` is a chunk of :class:`~repro.collection.store.
DatasetRecord` rows transposed into NumPy column arrays (Arrow-style:
one array per field, with a CSR offsets array joining each record to
its variable-length URL occurrences).  Collectors emit batches
(``stream_batches``), the event bus k-way-merges them by slicing
(:meth:`RecordBatch.slice` is a zero-copy view), the live aggregators
update from whole-batch group-bys, and binary checkpoints reuse the
same columnar layouts.

Exactness contract: a batch is a *representation*, not a
transformation — ``RecordBatch.from_records(rows).to_records()``
returns rows equal to the originals, and every consumer that offers a
batched path is pinned bit-identical to its per-row path by the
equivalence suites (``tests/test_live_columnar.py``).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..news.domains import NewsCategory
from .store import DatasetRecord, UrlOccurrence

#: Canonical category order backing the ``category`` code column.
CATEGORIES: tuple[NewsCategory, ...] = tuple(NewsCategory)
_CATEGORY_INDEX = {category: i for i, category in enumerate(CATEGORIES)}

#: Joins (platform, community) into one venue key for group-bys; the
#: unit separator never appears in platform or community names.
VENUE_SEP = "\x1f"

_MISSING = object()


def _str_array(values: list) -> np.ndarray:
    """A unicode array even when ``values`` is empty."""
    if not values:
        return np.empty(0, dtype="U1")
    return np.array(values)


class RecordBatch:
    """A timestamp-sorted chunk of dataset records, one array per column.

    Record-level columns (length N): ``created_at`` (f8), ``post_id``,
    ``platform``, ``community``, ``author_id`` (unicode; ``""`` plus a
    ``has_author`` bool column encodes ``None``).  Occurrence-level
    columns (length ``offsets[-1]``): ``url``, ``domain``, ``category``
    (i8 codes into :data:`CATEGORIES`).  ``offsets`` (i8, length N+1)
    is the CSR join: record ``i`` owns occurrences
    ``offsets[i]:offsets[i+1]``.

    Derived group-by scaffolding (occurrence→record index, venue and
    community factorizations) is computed lazily and cached, so the
    aggregators sharing one batch never factorize the same column
    twice.
    """

    __slots__ = ("created_at", "post_id", "platform", "community",
                 "author_id", "has_author", "offsets", "url", "domain",
                 "category", "_cache")

    def __init__(self, *, created_at, post_id, platform, community,
                 author_id, has_author, offsets, url, domain,
                 category) -> None:
        self.created_at = created_at
        self.post_id = post_id
        self.platform = platform
        self.community = community
        self.author_id = author_id
        self.has_author = has_author
        self.offsets = offsets
        self.url = url
        self.domain = domain
        self.category = category
        self._cache: dict = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[DatasetRecord],
                     ) -> "RecordBatch":
        """Transpose a row chunk into columns (the pack step).

        Packing also dictionary-encodes the group-by columns (venues,
        URLs) and caches the list views consumers iterate — Arrow-style
        encoded columns are part of the batch representation, so every
        downstream group-by works on small int codes.
        """
        records = list(records)
        counts = [len(r.urls) for r in records]
        offsets = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        occurrences = [u for r in records for u in r.urls]
        url_list = [u.url for u in occurrences]
        domain_list = [u.domain for u in occurrences]
        category_list = [_CATEGORY_INDEX[u.category] for u in occurrences]
        venue_of: dict[str, int] = {}
        venue_codes = [venue_of.setdefault(
            r.platform + VENUE_SEP + r.community, len(venue_of))
            for r in records]
        url_of: dict[str, int] = {}
        url_codes = [url_of.setdefault(url, len(url_of))
                     for url in url_list]
        batch = cls(
            created_at=np.array([r.created_at for r in records],
                                dtype=np.float64),
            post_id=_str_array([r.post_id for r in records]),
            platform=_str_array([r.platform for r in records]),
            community=_str_array([r.community for r in records]),
            author_id=_str_array([r.author_id or "" for r in records]),
            has_author=np.array([r.author_id is not None for r in records],
                                dtype=bool),
            offsets=offsets,
            url=_str_array(url_list),
            domain=_str_array(domain_list),
            category=np.array(category_list, dtype=np.int64),
        )
        venue_inverse = np.array(venue_codes, dtype=np.int64)
        comm_of: dict[str, int] = {}
        venue_comm = [comm_of.setdefault(v.split(VENUE_SEP, 1)[1],
                                         len(comm_of))
                      for v in venue_of]
        remap = np.array(venue_comm or [0], dtype=np.int64)
        occ_rec = np.repeat(np.arange(len(records), dtype=np.int64),
                            counts)
        batch._cache.update(
            occ_rec=occ_rec,
            occ_times=batch.created_at[occ_rec],
            url_list=url_list,
            domain_list=domain_list,
            category_list=category_list,
            venues=(list(venue_of), venue_inverse),
            communities=(list(comm_of), remap[venue_inverse]),
            url_codes=(list(url_of), np.array(url_codes,
                                              dtype=np.int64)),
        )
        return batch

    # -- shape --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.created_at)

    @property
    def n_urls(self) -> int:
        return len(self.url)

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """Records ``start:stop`` as a view batch (arrays zero-copy).

        Encoded columns and routing caches carry over: codes slice as
        views against the parent's uniques tables (a superset is fine —
        absent codes simply never occur, and every consumer orders its
        work by stream position, not code order).
        """
        lo = int(self.offsets[start])
        hi = int(self.offsets[stop])
        view = RecordBatch(
            created_at=self.created_at[start:stop],
            post_id=self.post_id[start:stop],
            platform=self.platform[start:stop],
            community=self.community[start:stop],
            author_id=self.author_id[start:stop],
            has_author=self.has_author[start:stop],
            offsets=self.offsets[start:stop + 1] - lo,
            url=self.url[lo:hi],
            domain=self.domain[lo:hi],
            category=self.category[lo:hi],
        )
        child = view._cache
        for key, value in self._cache.items():
            if key in ("url_list", "domain_list", "category_list"):
                child[key] = value[lo:hi]
            elif key in ("venues", "communities"):
                child[key] = (value[0], value[1][start:stop])
            elif key in ("url_codes", "occ_comm"):
                child[key] = (value[0], value[1][lo:hi])
            elif key == "occ_times":
                child[key] = value[lo:hi]
            elif key == "occ_rec":
                child[key] = value[lo:hi] - start
            elif isinstance(key, tuple) and key[0] == "venue_codes":
                child[key] = (value[0], value[1][start:stop])
            elif isinstance(key, tuple) and key[0] == "occ_codes":
                child[key] = (value[0], value[1][lo:hi])
        return view

    # -- row view (the batch-of-1 compatibility shim) -----------------------

    def iter_records(self) -> Iterator[DatasetRecord]:
        """Reconstruct the rows — the per-row compatibility path."""
        created = self.created_at.tolist()
        post_ids = self.post_id.tolist()
        platforms = self.platform.tolist()
        communities = self.community.tolist()
        authors = self.author_id.tolist()
        has_author = self.has_author.tolist()
        offsets = self.offsets.tolist()
        urls = self.url.tolist()
        domains = self.domain.tolist()
        categories = self.category.tolist()
        for i in range(len(created)):
            yield DatasetRecord(
                post_id=post_ids[i],
                platform=platforms[i],
                community=communities[i],
                author_id=authors[i] if has_author[i] else None,
                created_at=created[i],
                urls=tuple(
                    UrlOccurrence(url=urls[j], domain=domains[j],
                                  category=CATEGORIES[categories[j]])
                    for j in range(offsets[i], offsets[i + 1])),
            )

    def __iter__(self) -> Iterator[DatasetRecord]:
        return self.iter_records()

    def to_records(self) -> list[DatasetRecord]:
        return list(self.iter_records())

    # -- cached group-by scaffolding ----------------------------------------

    def occurrence_record_index(self) -> np.ndarray:
        """Occurrence → owning-record index (inverse of ``offsets``)."""
        index = self._cache.get("occ_rec")
        if index is None:
            index = np.repeat(np.arange(len(self), dtype=np.int64),
                              np.diff(self.offsets))
            self._cache["occ_rec"] = index
        return index

    def venue_table(self) -> tuple[list[str], np.ndarray]:
        """Factorized (platform, community) venues.

        Returns ``(venues, inverse)``: ``venues[inverse[i]]`` is record
        ``i``'s ``platform + VENUE_SEP + community`` key, in
        first-occurrence order.  Consumers must not depend on table
        order, only on stream order.
        """
        table = self._cache.get("venues")
        if table is None:
            code_of: dict[str, int] = {}
            codes = [code_of.setdefault(p + VENUE_SEP + c, len(code_of))
                     for p, c in zip(self.platform.tolist(),
                                     self.community.tolist())]
            table = (list(code_of), np.array(codes, dtype=np.int64))
            self._cache["venues"] = table
        return table

    def community_table(self) -> tuple[list[str], np.ndarray]:
        """Factorized communities (first-occurrence order).

        Derived from :meth:`venue_table`: communities are refactorized
        over the handful of venues, then broadcast with one int gather.
        """
        table = self._cache.get("communities")
        if table is None:
            venues, inverse = self.venue_table()
            code_of: dict[str, int] = {}
            venue_comm = [code_of.setdefault(v.split(VENUE_SEP, 1)[1],
                                             len(code_of))
                          for v in venues]
            remap = np.array(venue_comm or [0], dtype=np.int64)
            table = (list(code_of), remap[inverse])
            self._cache["communities"] = table
        return table

    def url_codes(self) -> tuple[list[str], np.ndarray]:
        """Factorized occurrence URLs (first-occurrence order).

        Returns ``(uniques, codes)`` with one int code per occurrence;
        within-chunk URL repetition (cascades) makes per-unique work
        much cheaper than per-occurrence work.
        """
        table = self._cache.get("url_codes")
        if table is None:
            code_of: dict[str, int] = {}
            codes = [code_of.setdefault(url, len(code_of))
                     for url in self.url_list()]
            table = (list(code_of), np.array(codes, dtype=np.int64))
            self._cache["url_codes"] = table
        return table

    def _cached_list(self, key: str, array_of) -> list:
        values = self._cache.get(key)
        if values is None:
            values = self._cache[key] = array_of().tolist()
        return values

    def url_list(self) -> list[str]:
        """``url.tolist()``, shared by every consumer of this batch."""
        return self._cached_list("url_list", lambda: self.url)

    def domain_list(self) -> list[str]:
        """``domain.tolist()``, shared by every consumer of this batch."""
        return self._cached_list("domain_list", lambda: self.domain)

    def category_list(self) -> list[int]:
        """``category.tolist()`` (codes into :data:`CATEGORIES`)."""
        return self._cached_list("category_list", lambda: self.category)

    def occurrence_times(self) -> np.ndarray:
        """Per-occurrence timestamps (owning record's ``created_at``)."""
        times = self._cache.get("occ_times")
        if times is None:
            times = self._cache["occ_times"] = (
                self.created_at[self.occurrence_record_index()])
        return times

    def occurrence_community_codes(self) -> tuple[list[str], np.ndarray]:
        """Per-occurrence community codes: ``(communities, codes)``."""
        table = self._cache.get("occ_comm")
        if table is None:
            communities, inverse = self.community_table()
            codes = inverse[self.occurrence_record_index()]
            table = self._cache["occ_comm"] = (communities, codes)
        return table


def batch_records(records: Iterable[DatasetRecord], batch_size: int = 512,
                  ) -> Iterator[RecordBatch]:
    """Pack a record iterator into column chunks of ``batch_size`` rows.

    Never yields an empty batch; the final chunk may be short.  Order
    is preserved, so a timestamp-ordered row stream yields
    timestamp-ordered batches the event bus can splice-merge.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, not {batch_size}")
    buffer: list[DatasetRecord] = []
    for record in records:
        buffer.append(record)
        if len(buffer) >= batch_size:
            yield RecordBatch.from_records(buffer)
            buffer = []
    if buffer:
        yield RecordBatch.from_records(buffer)


def venue_slice_codes(batch: RecordBatch,
                      slice_of: Callable[[DatasetRecord], "str | None"],
                      memo: dict,
                      ) -> tuple[list[str], np.ndarray]:
    """Per-record slice routing, evaluated once per distinct venue.

    Both routing functions in the system —
    :func:`repro.analysis.characterization.sequence_slice_of` and
    :meth:`repro.platforms.registry.Ecosystem.slice_of` — depend only
    on ``(platform, community)``, so one probe record per venue
    reproduces the per-record answers exactly.  ``memo`` (venue key →
    slice name or ``None``) persists across batches on the caller.

    Returns ``(names, codes)``: record ``i`` belongs to slice
    ``names[codes[i]]``, or to no slice when ``codes[i] == -1``.

    The result is cached on the batch per ``slice_of`` identity, so
    aggregators sharing one routing function factorize a batch once.
    """
    cache_key = ("venue_codes", id(slice_of))
    cached = batch._cache.get(cache_key)
    if cached is not None:
        return cached
    venues, inverse = batch.venue_table()
    if not venues:
        result = ([], np.empty(0, dtype=np.int64))
        batch._cache[cache_key] = result
        return result
    for venue in venues:
        if venue not in memo:
            platform, community = venue.split(VENUE_SEP, 1)
            memo[venue] = slice_of(DatasetRecord(
                post_id="", platform=platform, community=community,
                author_id=None, created_at=0.0, urls=()))
    name_list = ([memo[venues[0]]] if len(venues) == 1
                 else itemgetter(*venues)(memo))
    code_of: dict[str, int] = {}
    codes = np.array(
        [-1 if name is None else code_of.setdefault(name, len(code_of))
         for name in name_list], dtype=np.int64)
    result = (list(code_of), codes[inverse])
    batch._cache[cache_key] = result
    return result


def occurrence_slice_codes(batch: RecordBatch,
                           slice_of: Callable[[DatasetRecord],
                                              "str | None"],
                           memo: dict,
                           ) -> tuple[list[str], np.ndarray]:
    """:func:`venue_slice_codes` broadcast to the occurrence axis."""
    cache_key = ("occ_codes", id(slice_of))
    cached = batch._cache.get(cache_key)
    if cached is not None:
        return cached
    names, record_codes = venue_slice_codes(batch, slice_of, memo)
    result = (names, record_codes[batch.occurrence_record_index()])
    batch._cache[cache_key] = result
    return result
