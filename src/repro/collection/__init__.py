"""Data collection: crawlers, the 1% stream, gaps, and the dataset store.

Reproduces Section 2.2's infrastructure: a Twitter Streaming-API sampler
filtered to the 99 news domains (with the paper's outage windows), a
Pushshift-style full Reddit dump reader, a 4chan crawler racing thread
ephemerality (with its own outage windows), and a tweet re-crawler that
recovers engagement counts for still-available tweets.
"""

from .anonymize import AnonymizationKey, anonymize_dataset
from .columnar import RecordBatch, batch_records
from .store import Dataset, DatasetRecord, UrlOccurrence, iter_jsonl
from .streaming import TwitterStreamCollector
from .crawlers import FourchanCrawler, GenericCollector, RedditDumpReader
from .recrawl import RecrawlStats, TweetRecrawler

__all__ = [
    "AnonymizationKey",
    "anonymize_dataset",
    "Dataset",
    "DatasetRecord",
    "RecordBatch",
    "UrlOccurrence",
    "batch_records",
    "iter_jsonl",
    "TwitterStreamCollector",
    "FourchanCrawler",
    "GenericCollector",
    "RedditDumpReader",
    "RecrawlStats",
    "TweetRecrawler",
]
