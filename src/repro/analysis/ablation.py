"""Ablations over the Section-5 design choices.

The paper asserts (without showing) that results were "similar" for
alternative excitation windows of 6/12/24/48 hours; it picks 1-minute
bins as a cost/accuracy compromise and drops the 10% shortest
gap-overlapping URLs.  This module makes each choice a sweepable axis
and reports how the headline quantities move:

* :func:`sweep_bin_size`       — Delta t in {0.5, 1, 5} minutes
* :func:`sweep_max_lag`        — Delta t_max in {6, 12, 24, 48} hours
* :func:`sweep_gap_trim`       — trim fraction in {0, 10, 20}%
* :func:`estimator_agreement`  — Gibbs vs EM vs continuous-time EM
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..config import HAWKES_PROCESSES, HawkesConfig
from ..core.influence import (
    InfluenceResult,
    UrlCascade,
    cascade_to_events,
    fit_corpus,
    trim_gap_urls,
)
from ..core.hawkes.continuous import (
    discrete_events_to_continuous,
    fit_continuous_em,
)
from ..news.domains import NewsCategory
from ..timeutil import Interval


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's headline outputs."""

    label: str
    n_urls: int
    mean_weight_alt: np.ndarray     # (K, K)
    mean_weight_main: np.ndarray    # (K, K)

    def twitter_self_excitation(self) -> tuple[float, float]:
        t = HAWKES_PROCESSES.index("Twitter")
        return (float(self.mean_weight_alt[t, t]),
                float(self.mean_weight_main[t, t]))


def _fit_point(label: str, cascades: Sequence[UrlCascade],
               config: HawkesConfig,
               rng: np.random.Generator,
               n_jobs: int | None = 1) -> SweepPoint:
    result = fit_corpus(cascades, config, rng=rng, n_jobs=n_jobs)
    alt = result.weight_stack(NewsCategory.ALTERNATIVE)
    main = result.weight_stack(NewsCategory.MAINSTREAM)
    return SweepPoint(
        label=label,
        n_urls=len(result.fits),
        mean_weight_alt=(alt.mean(axis=0) if len(alt)
                         else np.zeros((8, 8))),
        mean_weight_main=(main.mean(axis=0) if len(main)
                          else np.zeros((8, 8))),
    )


def sweep_bin_size(cascades: Sequence[UrlCascade],
                   base: HawkesConfig,
                   bin_seconds: Sequence[int] = (30, 60, 300),
                   seed: int = 0,
                   n_jobs: int | None = 1) -> list[SweepPoint]:
    """Refit the corpus at several Delta t values.

    ``max_lag_bins`` is rescaled so the excitation window stays 12 h.
    """
    points = []
    for delta_t in bin_seconds:
        max_lag = int(base.max_lag_bins * base.delta_t / delta_t)
        config = replace(base, delta_t=delta_t, max_lag_bins=max_lag)
        rng = np.random.default_rng(seed)
        points.append(_fit_point(f"dt={delta_t}s", cascades, config, rng,
                                 n_jobs))
    return points


def sweep_max_lag(cascades: Sequence[UrlCascade],
                  base: HawkesConfig,
                  lag_hours: Sequence[int] = (6, 12, 24, 48),
                  seed: int = 0,
                  n_jobs: int | None = 1) -> list[SweepPoint]:
    """Refit with different excitation windows (paper: 'similar')."""
    points = []
    for hours in lag_hours:
        config = replace(base,
                         max_lag_bins=int(hours * 3600 / base.delta_t))
        rng = np.random.default_rng(seed)
        points.append(_fit_point(f"lag={hours}h", cascades, config, rng,
                                 n_jobs))
    return points


def sweep_gap_trim(cascades: Sequence[UrlCascade],
                   gaps: Sequence[Interval],
                   base: HawkesConfig,
                   fractions: Sequence[float] = (0.0, 0.10, 0.20),
                   seed: int = 0,
                   n_jobs: int | None = 1) -> list[SweepPoint]:
    """Refit with different gap-overlap trim fractions."""
    points = []
    for fraction in fractions:
        kept = trim_gap_urls(list(cascades), gaps, fraction)
        rng = np.random.default_rng(seed)
        points.append(_fit_point(f"trim={int(fraction * 100)}%",
                                 kept, base, rng, n_jobs))
    return points


@dataclass(frozen=True)
class EstimatorComparison:
    """Per-URL weight matrices under three estimators."""

    gibbs: np.ndarray        # (n, K, K)
    em: np.ndarray           # (n, K, K)
    continuous: np.ndarray   # (n, K, K)

    def correlation(self, a: str, b: str) -> float:
        """Pearson correlation between two estimators' weight entries."""
        x = getattr(self, a).ravel()
        y = getattr(self, b).ravel()
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    def mean_matrix_correlation(self, a: str, b: str) -> float:
        """Correlation of the corpus-mean weight matrices.

        Per-URL cells are noisy on sparse cascades; the quantity the
        paper interprets (Figure 10) is the mean matrix, where the
        estimators should agree much more closely.
        """
        x = getattr(self, a).mean(axis=0).ravel()
        y = getattr(self, b).mean(axis=0).ravel()
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    def mean_absolute_difference(self, a: str, b: str) -> float:
        return float(np.abs(getattr(self, a) - getattr(self, b)).mean())


def estimator_agreement(cascades: Sequence[UrlCascade],
                        config: HawkesConfig,
                        seed: int = 0,
                        n_jobs: int | None = 1) -> EstimatorComparison:
    """Fit the same URLs with Gibbs, discrete EM, and continuous EM."""
    rng = np.random.default_rng(seed)
    gibbs = fit_corpus(cascades, config, method="gibbs", rng=rng,
                       n_jobs=n_jobs)
    em = fit_corpus(cascades, config, method="em", n_jobs=n_jobs)
    continuous_weights = []
    conv_rng = np.random.default_rng(seed + 1)
    for cascade in cascades:
        events = cascade_to_events(cascade, delta_t=config.delta_t)
        continuous_events = discrete_events_to_continuous(
            events, delta_t=config.delta_t, rng=conv_rng)
        fit = fit_continuous_em(
            continuous_events,
            decay=1.0 / (config.delta_t * 30),  # ~30-bin kernel scale
            max_iterations=40)
        continuous_weights.append(fit.params.weights)
    return EstimatorComparison(
        gibbs=np.stack([f.weights for f in gibbs.fits]),
        em=np.stack([f.weights for f in em.fits]),
        continuous=np.stack(continuous_weights),
    )


def weight_stability(points: Sequence[SweepPoint]) -> float:
    """Max relative change of W(T->T) across a sweep (0 = identical)."""
    values = [p.twitter_self_excitation()[0] for p in points]
    if not values or max(values) == 0:
        return 0.0
    return float((max(values) - min(values)) / max(values))
