"""Bot detection and the bot-removal counterfactual (Section 3).

The paper observes that 13% of Twitter users share exclusively
alternative news and are "likely bots" [31], considers factoring bot
activity out with a BotOrNot-style classifier [7], and declines.  This
module operationalizes that discussion: a feature-based bot scorer in
the spirit of [7] (activity volume, posting regularity, retweet ratio,
category exclusivity) plus helpers to re-run any analysis on a
bot-filtered dataset — the ablation the paper left on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collection.store import Dataset
from ..news.domains import NewsCategory


@dataclass(frozen=True)
class UserFeatures:
    """Per-account features extracted from the crawled dataset."""

    author_id: str
    n_posts: int
    posts_per_day: float
    alternative_fraction: float
    retweet_fraction: float
    #: Coefficient of variation of inter-post gaps; machines post on
    #: schedules, so low variability is bot-like.
    gap_cv: float
    unique_url_fraction: float

    def as_vector(self) -> np.ndarray:
        return np.array([
            self.posts_per_day,
            self.alternative_fraction,
            self.retweet_fraction,
            self.gap_cv,
            self.unique_url_fraction,
        ])


def extract_user_features(dataset: Dataset,
                          retweet_marker: str = "RT @",
                          ) -> list[UserFeatures]:
    """Compute :class:`UserFeatures` for every author in the dataset.

    ``retweet_marker`` identifies retweets from record ids — the crawled
    record does not carry tweet text, so callers with platform access
    should prefer :func:`extract_user_features_with_platform`.
    """
    per_user: dict[str, list] = {}
    for record in dataset:
        if record.author_id is None:
            continue
        per_user.setdefault(record.author_id, []).append(record)
    features = []
    for author_id, records in per_user.items():
        records.sort(key=lambda r: r.created_at)
        times = np.array([r.created_at for r in records])
        span_days = max((times[-1] - times[0]) / 86400.0, 1.0 / 24)
        n_alt = sum(len(r.urls_of(NewsCategory.ALTERNATIVE))
                    for r in records)
        n_main = sum(len(r.urls_of(NewsCategory.MAINSTREAM))
                     for r in records)
        urls = [u.url for r in records for u in r.urls]
        gaps = np.diff(times)
        positive = gaps[gaps > 0]
        if len(positive) >= 2 and positive.mean() > 0:
            gap_cv = float(positive.std() / positive.mean())
        else:
            gap_cv = 1.0
        features.append(UserFeatures(
            author_id=author_id,
            n_posts=len(records),
            posts_per_day=len(records) / span_days,
            alternative_fraction=(n_alt / (n_alt + n_main)
                                  if n_alt + n_main else 0.0),
            retweet_fraction=0.0,  # unknown without platform access
            gap_cv=gap_cv,
            unique_url_fraction=(len(set(urls)) / len(urls)
                                 if urls else 1.0),
        ))
    return features


def bot_score(features: UserFeatures) -> float:
    """Heuristic bot score in [0, 1].

    Monotone in: high posting rate, category exclusivity toward
    alternative news, mechanical (low-variability) posting gaps, and
    repetitive URL sharing.  Thresholding at 0.5 reproduces the spirit
    of the BotOrNot cutoff.
    """
    rate_component = min(features.posts_per_day / 20.0, 1.0)
    exclusivity = features.alternative_fraction
    regularity = max(0.0, 1.0 - features.gap_cv)
    repetition = 1.0 - features.unique_url_fraction
    volume = min(features.n_posts / 50.0, 1.0)
    score = (0.20 * rate_component
             + 0.45 * exclusivity * volume
             + 0.15 * regularity * volume
             + 0.20 * repetition)
    return float(min(max(score, 0.0), 1.0))


@dataclass(frozen=True)
class BotDetectionResult:
    """Detected bot accounts plus evaluation against ground truth."""

    scores: dict[str, float]
    detected: frozenset[str]
    threshold: float

    def filter_dataset(self, dataset: Dataset) -> Dataset:
        """Return the dataset without posts by detected bots."""
        return dataset.filter(
            lambda record: record.author_id not in self.detected)


def detect_bots(dataset: Dataset, threshold: float = 0.5,
                min_posts: int = 3) -> BotDetectionResult:
    """Score every author and flag those above ``threshold``.

    Accounts with fewer than ``min_posts`` posts are never flagged —
    there is not enough signal, and the paper's concern is high-volume
    amplification.
    """
    scores: dict[str, float] = {}
    detected = set()
    for features in extract_user_features(dataset):
        score = bot_score(features)
        scores[features.author_id] = score
        if features.n_posts >= min_posts and score >= threshold:
            detected.add(features.author_id)
    return BotDetectionResult(scores=scores,
                              detected=frozenset(detected),
                              threshold=threshold)


@dataclass(frozen=True)
class DetectionQuality:
    """Precision/recall against the world's ground-truth bot labels."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


def evaluate_detection(result: BotDetectionResult,
                       true_bots: set[str],
                       all_authors: set[str]) -> DetectionQuality:
    """Compare detected accounts with ground-truth labels."""
    detected = set(result.detected) & all_authors
    actual = true_bots & all_authors
    return DetectionQuality(
        true_positives=len(detected & actual),
        false_positives=len(detected - actual),
        false_negatives=len(actual - detected),
    )
