"""Appearance-order sequence analysis (Section 4.2, Tables 9-10).

URLs are tracked across the three coarse platforms — "4" (/pol/), "R"
(the six selected subreddits), and "T" (Twitter).  For each URL we order
the platforms by first appearance and tally single-platform URLs,
first-hop pairs (Table 9), and full triplets (Table 10).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..collection.store import Dataset
from ..config import PLATFORM_CODES, SEQUENCE_PLATFORMS
from ..news.domains import NewsCategory


def first_appearances(named_slices: dict[str, Dataset],
                      category: NewsCategory,
                      ) -> dict[str, dict[str, float]]:
    """url -> {platform: first timestamp} over the provided slices."""
    firsts: dict[str, dict[str, float]] = {}
    for platform, dataset in named_slices.items():
        for url, times in dataset.url_timestamps(category).items():
            firsts.setdefault(url, {})[platform] = times[0][0]
    return firsts


def sequence_of(platform_firsts: dict[str, float]) -> tuple[str, ...]:
    """Platforms ordered by first appearance (ties broken by name)."""
    return tuple(sorted(platform_firsts, key=lambda p: (platform_firsts[p], p)))


@dataclass(frozen=True)
class SequenceShare:
    sequence: str          # e.g. "R→T" or "T only"
    count: int
    percentage: float


def _share_rows(counter: Counter) -> list[SequenceShare]:
    total = sum(counter.values())
    rows = []
    for sequence, count in sorted(counter.items()):
        rows.append(SequenceShare(
            sequence=sequence,
            count=count,
            percentage=100.0 * count / total if total else 0.0,
        ))
    return rows


def first_hop_rows(firsts: dict[str, dict[str, float]],
                   ) -> list[SequenceShare]:
    """Table 9 rows from a ``url -> {platform: first timestamp}`` map.

    Shared by :func:`first_hop_distribution` and the incremental
    first-appearance aggregator in :mod:`repro.live`, so batch and live
    tables agree exactly.
    """
    counter: Counter = Counter()
    for platform_firsts in firsts.values():
        sequence = sequence_of(platform_firsts)
        codes = [PLATFORM_CODES.get(p, p) for p in sequence]
        if len(codes) == 1:
            counter[f"{codes[0]} only"] += 1
        else:
            counter[f"{codes[0]}→{codes[1]}"] += 1
    return _share_rows(counter)


def triplet_rows(firsts: dict[str, dict[str, float]],
                 n_platforms: int = len(SEQUENCE_PLATFORMS),
                 ) -> list[SequenceShare]:
    """Table 10 rows from a ``url -> {platform: first timestamp}`` map."""
    counter: Counter = Counter()
    for platform_firsts in firsts.values():
        if len(platform_firsts) != n_platforms:
            continue
        sequence = sequence_of(platform_firsts)
        codes = [PLATFORM_CODES.get(p, p) for p in sequence]
        counter["→".join(codes)] += 1
    return _share_rows(counter)


def first_hop_distribution(named_slices: dict[str, Dataset],
                           category: NewsCategory) -> list[SequenceShare]:
    """Table 9: "X only" singles and first-hop pairs "X→Y".

    Percentages are over all URLs of the category seen anywhere, like
    the paper's (which sums singles and first-hops to 100%).
    """
    return first_hop_rows(first_appearances(named_slices, category))


def triplet_distribution(named_slices: dict[str, Dataset],
                         category: NewsCategory) -> list[SequenceShare]:
    """Table 10: full orderings for URLs present on every platform.

    Adapts to K platforms: a URL contributes only when it appeared on
    all ``len(named_slices)`` slices (the paper's three, or more under
    a K-platform scenario).
    """
    return triplet_rows(first_appearances(named_slices, category),
                        n_platforms=len(named_slices))


def head_of_sequence_share(rows: list[SequenceShare],
                           code: str) -> float:
    """Share of multi-platform sequences starting at ``code``.

    The paper notes the six subreddits head 51% (alt) / 59% (main) of
    triplet sequences.
    """
    multi = [r for r in rows if "→" in r.sequence]
    total = sum(r.count for r in multi)
    leading = sum(r.count for r in multi
                  if r.sequence.startswith(f"{code}→"))
    return 100.0 * leading / total if total else 0.0
