"""Analyses reproducing the paper's tables and figures.

``characterization`` covers Section 3 (Tables 1-7, Figures 1-3),
``temporal`` covers Section 4.1-4.2 (Figures 4-7, Table 8),
``sequences`` covers the appearance-order statistics (Tables 9-10),
``graphs`` builds the Figure 8 ecosystem digraphs, and ``stats`` holds
the shared ECDF / Kolmogorov-Smirnov machinery.
"""

from .stats import Ecdf, ks_two_sample
from . import characterization, graphs, sequences, temporal

__all__ = [
    "Ecdf",
    "ks_two_sample",
    "characterization",
    "graphs",
    "sequences",
    "temporal",
]
