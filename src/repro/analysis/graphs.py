"""Figure 8: the news-ecosystem source graphs.

For each news category we build a weighted digraph whose nodes are the
news domains plus the three platforms.  For every URL, an edge connects
its domain to the platform where it first appeared, and — first hop
only — that platform to the second platform that picked it up.  Edge
weights count unique URLs.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..collection.store import Dataset
from ..news.domains import NewsCategory
from .sequences import first_appearances, sequence_of


def build_ecosystem_graph(named_slices: dict[str, Dataset],
                          category: NewsCategory,
                          url_domains: dict[str, str]) -> nx.DiGraph:
    """Build the Figure 8 digraph for one category.

    ``url_domains`` maps each URL to its news domain (obtainable from
    any dataset's records).
    """
    graph = nx.DiGraph()
    for platform in named_slices:
        graph.add_node(platform, kind="platform")
    for url, platform_firsts in first_appearances(
            named_slices, category).items():
        domain = url_domains.get(url)
        if domain is None:
            continue
        sequence = sequence_of(platform_firsts)
        if domain not in graph:
            graph.add_node(domain, kind="domain")
        _bump_edge(graph, domain, sequence[0])
        if len(sequence) > 1:
            _bump_edge(graph, sequence[0], sequence[1])
    return graph


def _bump_edge(graph: nx.DiGraph, src: str, dst: str) -> None:
    if graph.has_edge(src, dst):
        graph[src][dst]["weight"] += 1
    else:
        graph.add_edge(src, dst, weight=1)


@dataclass(frozen=True)
class DomainFirstPlatform:
    """Where one domain's URLs tend to appear first."""

    domain: str
    shares: dict[str, float]   # platform -> share of the domain's URLs
    total: int

    @property
    def dominant(self) -> str:
        return max(self.shares, key=lambda p: self.shares[p])


def domain_first_platform_shares(graph: nx.DiGraph,
                                 platforms: tuple[str, ...],
                                 ) -> list[DomainFirstPlatform]:
    """Per-domain distribution over first-appearance platforms.

    This is the quantity the paper reads off Figure 8 ("breitbart.com
    URLs appear first on the six selected subreddits more often...").
    """
    rows = []
    platform_set = set(platforms)
    for node, data in graph.nodes(data=True):
        if data.get("kind") != "domain":
            continue
        weights = {p: graph[node][p]["weight"]
                   for p in graph.successors(node) if p in platform_set}
        total = sum(weights.values())
        if not total:
            continue
        rows.append(DomainFirstPlatform(
            domain=node,
            shares={p: weights.get(p, 0) / total for p in platforms},
            total=total,
        ))
    rows.sort(key=lambda r: r.total, reverse=True)
    return rows


def platform_hop_weights(graph: nx.DiGraph,
                         platforms: tuple[str, ...],
                         ) -> dict[tuple[str, str], int]:
    """Unique-URL counts on platform-to-platform first-hop edges."""
    weights: dict[tuple[str, str], int] = {}
    for src in platforms:
        for dst in platforms:
            if src != dst and graph.has_edge(src, dst):
                weights[(src, dst)] = graph[src][dst]["weight"]
    return weights


def export_graphml(graph: nx.DiGraph, path) -> None:
    """Write the ecosystem graph as GraphML for external tooling."""
    nx.write_graphml(graph, str(path))


def platform_centrality(graph: nx.DiGraph,
                        platforms: tuple[str, ...],
                        ) -> dict[str, dict[str, float]]:
    """Weighted centrality summary of the platform nodes.

    ``in_strength`` counts URLs arriving from domains plus first hops
    received; ``out_strength`` counts first hops passed on; ``pagerank``
    is computed over the full weighted digraph.
    """
    pagerank = nx.pagerank(graph, weight="weight")
    summary: dict[str, dict[str, float]] = {}
    for platform in platforms:
        if platform not in graph:
            continue
        in_strength = sum(d["weight"] for _, _, d
                          in graph.in_edges(platform, data=True))
        out_strength = sum(d["weight"] for _, _, d
                           in graph.out_edges(platform, data=True))
        summary[platform] = {
            "in_strength": float(in_strength),
            "out_strength": float(out_strength),
            "pagerank": float(pagerank.get(platform, 0.0)),
        }
    return summary
