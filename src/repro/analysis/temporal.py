"""Temporal dynamics (Section 4): Figures 4-7 and Table 8.

All lag quantities follow the paper's conventions: within-platform
repost lags are measured from a URL's *first* occurrence to each later
occurrence; inter-arrival times are consecutive differences; and
cross-platform deltas compare first occurrences on pairs of platforms,
split by which platform saw the URL first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collection.store import Dataset
from ..news.domains import NewsCategory
from ..timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR
from .stats import Ecdf

# ---------------------------------------------------------------------------
# Figure 4 — daily occurrence time series
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DailySeries:
    """Daily URL-occurrence series for one community slice."""

    name: str
    origin: int                    # epoch of day 0
    alternative: np.ndarray        # raw daily counts
    mainstream: np.ndarray

    @property
    def n_days(self) -> int:
        return len(self.alternative)

    def normalized(self, category: NewsCategory) -> np.ndarray:
        """Daily occurrences over the slice's average daily total URLs.

        The paper normalizes each community's daily news-URL count by
        that community's average daily number of shared URLs, making
        communities of very different sizes comparable.
        """
        counts = (self.alternative
                  if category == NewsCategory.ALTERNATIVE
                  else self.mainstream)
        average_daily_urls = (self.alternative + self.mainstream).mean()
        if average_daily_urls <= 0:
            return np.zeros_like(counts, dtype=np.float64)
        return counts / average_daily_urls

    def alternative_fraction(self) -> np.ndarray:
        """Figure 4(c): daily alt / (alt + main), NaN on empty days."""
        total = self.alternative + self.mainstream
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = self.alternative / total
        return np.where(total > 0, fraction, np.nan)


def daily_occurrence(dataset: Dataset, name: str, start: int,
                     end: int) -> DailySeries:
    """Build the Figure 4 daily series for one community slice."""
    n_days = max(1, int((end - start) // SECONDS_PER_DAY))
    alt = np.zeros(n_days, dtype=np.int64)
    main = np.zeros(n_days, dtype=np.int64)
    for record in dataset:
        day = int((record.created_at - start) // SECONDS_PER_DAY)
        if not 0 <= day < n_days:
            continue
        alt[day] += len(record.urls_of(NewsCategory.ALTERNATIVE))
        main[day] += len(record.urls_of(NewsCategory.MAINSTREAM))
    return DailySeries(name=name, origin=start, alternative=alt,
                       mainstream=main)


# ---------------------------------------------------------------------------
# Figure 5 — lag from first occurrence to each later occurrence
# ---------------------------------------------------------------------------

def repost_lag_cdf(dataset: Dataset, category: NewsCategory,
                   ) -> Ecdf | None:
    """Figure 5: hours from a URL's first post to each repost."""
    lags_hours: list[float] = []
    for times in dataset.url_timestamps(category).values():
        if len(times) < 2:
            continue
        first = times[0][0]
        lags_hours.extend((t - first) / SECONDS_PER_HOUR
                          for t, _ in times[1:])
    if not lags_hours:
        return None
    return Ecdf(lags_hours)


def repost_lag_day_inflection(ecdf: Ecdf) -> float:
    """CDF mass within 24 hours — the paper's day-boundary inflection."""
    return float(ecdf(24.0))


# ---------------------------------------------------------------------------
# Figure 6 — mean inter-arrival time per URL
# ---------------------------------------------------------------------------

def interarrival_cdf(dataset: Dataset, category: NewsCategory,
                     restrict_urls: set[str] | None = None) -> Ecdf | None:
    """Figure 6: per-URL mean of consecutive post gaps (seconds).

    ``restrict_urls`` implements the "common URLs" variants (a)/(b):
    pass the set of URLs that occur on all three platforms.
    """
    means: list[float] = []
    for url, times in dataset.url_timestamps(category).items():
        if restrict_urls is not None and url not in restrict_urls:
            continue
        if len(times) < 2:
            continue
        stamps = np.array([t for t, _ in times])
        means.append(float(np.diff(stamps).mean()))
    if not means:
        return None
    return Ecdf(means)


def common_urls(datasets: dict[str, Dataset],
                category: NewsCategory | None = None) -> set[str]:
    """URLs occurring in every provided dataset slice."""
    sets = [d.unique_urls(category) for d in datasets.values()]
    if not sets:
        return set()
    common = sets[0]
    for s in sets[1:]:
        common = common & s
    return common


# ---------------------------------------------------------------------------
# Figure 7 + Table 8 — cross-platform first-occurrence deltas
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CrossPlatformLags:
    """Delays between first appearances on two platforms, one category."""

    platform_a: str
    platform_b: str
    category: NewsCategory
    #: Seconds from A's first post to B's, for URLs seen on A first.
    a_first: Ecdf | None
    #: Seconds from B's first post to A's, for URLs seen on B first.
    b_first: Ecdf | None
    n_a_first: int
    n_b_first: int

    def cross_point_seconds(self) -> float | None:
        """Figure 7's "cross point" between the two direction CDFs."""
        if self.a_first is None or self.b_first is None:
            return None
        return self.a_first.crossing(self.b_first)

    def turning_share_24h(self) -> tuple[float, float]:
        """CDF mass within 24 h for each direction (the turning point)."""
        a = float(self.a_first(SECONDS_PER_DAY)) if self.a_first else 0.0
        b = float(self.b_first(SECONDS_PER_DAY)) if self.b_first else 0.0
        return a, b


def cross_platform_lags(dataset_a: Dataset, dataset_b: Dataset,
                        name_a: str, name_b: str,
                        category: NewsCategory) -> CrossPlatformLags:
    """Figure 7 / Table 8 for one platform pair and news category."""
    firsts_a = {url: times[0][0] for url, times
                in dataset_a.url_timestamps(category).items()}
    firsts_b = {url: times[0][0] for url, times
                in dataset_b.url_timestamps(category).items()}
    a_first: list[float] = []
    b_first: list[float] = []
    for url in firsts_a.keys() & firsts_b.keys():
        delta = firsts_b[url] - firsts_a[url]
        if delta > 0:
            a_first.append(delta)
        elif delta < 0:
            b_first.append(-delta)
        # simultaneous first appearance contributes to neither side
    return CrossPlatformLags(
        platform_a=name_a,
        platform_b=name_b,
        category=category,
        a_first=Ecdf(a_first) if a_first else None,
        b_first=Ecdf(b_first) if b_first else None,
        n_a_first=len(a_first),
        n_b_first=len(b_first),
    )


@dataclass(frozen=True)
class FasterCountsRow:
    """One Table 8 row: which platform saw URLs first, and how often."""

    comparison: str
    category: NewsCategory
    faster_on_1: int
    faster_on_2: int


def faster_platform_counts(pairs: dict[str, tuple[Dataset, Dataset]],
                           ) -> list[FasterCountsRow]:
    """Table 8 across the provided platform pairs.

    ``pairs`` maps a comparison label like ``"Reddit vs Twitter"`` to the
    ``(platform_1, platform_2)`` dataset slices.
    """
    rows = []
    for label, (ds1, ds2) in pairs.items():
        for category in (NewsCategory.MAINSTREAM, NewsCategory.ALTERNATIVE):
            lags = cross_platform_lags(ds1, ds2, "1", "2", category)
            rows.append(FasterCountsRow(
                comparison=label,
                category=category,
                faster_on_1=lags.n_a_first,
                faster_on_2=lags.n_b_first,
            ))
    return rows
