"""Statistical utilities: empirical CDFs and two-sample KS tests.

Every CDF figure in the paper is an ECDF of some per-URL or per-user
quantity; every significance claim is a two-sample Kolmogorov-Smirnov
test.  :class:`Ecdf` is the common currency handed to the reporting
layer (it can evaluate, invert, and resample itself onto a grid).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class KsResult:
    """Two-sample KS outcome."""

    statistic: float
    pvalue: float

    def significant(self, alpha: float = 0.01) -> bool:
        return self.pvalue < alpha


def ks_two_sample(a, b) -> KsResult:
    """Two-sample Kolmogorov-Smirnov test (thin scipy wrapper)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if not len(a) or not len(b):
        raise ValueError("both samples must be non-empty")
    result = _scipy_stats.ks_2samp(a, b)
    return KsResult(statistic=float(result.statistic),
                    pvalue=float(result.pvalue))


class Ecdf:
    """Empirical CDF of a one-dimensional sample."""

    def __init__(self, sample) -> None:
        data = np.asarray(sample, dtype=np.float64)
        if data.ndim != 1:
            raise ValueError("sample must be one-dimensional")
        if not len(data):
            raise ValueError("sample must be non-empty")
        self.values = np.sort(data)
        self.n = len(self.values)

    def __call__(self, x) -> np.ndarray | float:
        """P(X <= x), evaluated element-wise."""
        x_arr = np.asarray(x, dtype=np.float64)
        result = np.searchsorted(self.values, x_arr, side="right") / self.n
        if np.isscalar(x) or x_arr.ndim == 0:
            return float(result)
        return result

    def quantile(self, q) -> np.ndarray | float:
        """Inverse CDF; ``q`` in [0, 1]."""
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantiles must be within [0, 1]")
        idx = np.clip(np.ceil(q_arr * self.n).astype(int) - 1, 0, self.n - 1)
        result = self.values[idx]
        if np.isscalar(q) or q_arr.ndim == 0:
            return float(result)
        return result

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) step coordinates for plotting/serialization."""
        unique, counts = np.unique(self.values, return_counts=True)
        return unique, np.cumsum(counts) / self.n

    def on_log_grid(self, n_points: int = 64,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Resample onto a log-spaced grid (matches the paper's axes)."""
        positive = self.values[self.values > 0]
        if not len(positive):
            raise ValueError("log grid needs positive values")
        lo, hi = positive.min(), positive.max()
        if lo == hi:
            grid = np.array([lo])
        else:
            grid = np.geomspace(lo, hi, n_points)
        return grid, np.asarray(self(grid))

    def crossing(self, other: "Ecdf",
                 n_points: int = 512) -> float | None:
        """Approximate x where this ECDF crosses ``other`` (both positive).

        Used for the Figure 7 "cross point" between A->B and B->A delay
        distributions.  Returns ``None`` when one curve dominates.
        """
        lo = max(self.values.min(), other.values.min())
        hi = min(self.values.max(), other.values.max())
        if not (lo > 0 and hi > lo):
            return None
        grid = np.geomspace(lo, hi, n_points)
        diff = np.asarray(self(grid)) - np.asarray(other(grid))
        signs = np.sign(diff)
        nonzero = signs != 0
        if not nonzero.any():
            return None
        flips = np.where(np.diff(signs[nonzero]) != 0)[0]
        if not len(flips):
            return None
        idx_nonzero = np.where(nonzero)[0]
        return float(grid[idx_nonzero[flips[0] + 1]])


def summarize(sample) -> dict[str, float]:
    """Mean/std/median/min/max summary used by several reports."""
    data = np.asarray(sample, dtype=np.float64)
    if not len(data):
        return {"n": 0, "mean": 0.0, "std": 0.0, "median": 0.0,
                "min": 0.0, "max": 0.0}
    return {
        "n": int(len(data)),
        "mean": float(np.mean(data)),
        "std": float(np.std(data)),
        "median": float(np.median(data)),
        "min": float(np.min(data)),
        "max": float(np.max(data)),
    }
