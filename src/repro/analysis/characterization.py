"""General characterization of the datasets (Section 3).

Implements Tables 1-7 and Figures 1-3.  Every function consumes
:class:`~repro.collection.store.Dataset` objects (and, where needed,
platform totals) and returns plain dataclasses the reporting layer can
render or benchmarks can assert on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from ..collection.store import Dataset, DatasetRecord
from ..config import (
    PLATFORM_POL,
    PLATFORM_REDDIT,
    PLATFORM_TWITTER,
    SELECTED_SUBREDDITS,
)
from ..news.domains import NewsCategory
from .stats import Ecdf

# ---------------------------------------------------------------------------
# Dataset slicing helpers
# ---------------------------------------------------------------------------

def sequence_slice_of(record: DatasetRecord,
                      subreddits=SELECTED_SUBREDDITS) -> str | None:
    """Coarse-platform slice a record belongs to, or ``None`` if outside.

    This is the canonical routing behind
    :meth:`~repro.pipeline.CollectedData.sequence_slices`: Twitter,
    the six selected subreddits, and /pol/.  Batch slicing and the live
    aggregators share it so their community splits cannot drift apart.
    """
    if record.platform == "twitter":
        return PLATFORM_TWITTER
    if record.platform == "reddit":
        return PLATFORM_REDDIT if record.community in subreddits else None
    if record.platform == "4chan":
        return PLATFORM_POL if record.community == "/pol/" else None
    return None

def slice_six_subreddits(reddit: Dataset,
                         subreddits=SELECTED_SUBREDDITS) -> Dataset:
    selected = set(subreddits)
    return reddit.filter(lambda r: r.community in selected)

def slice_other_subreddits(reddit: Dataset,
                           subreddits=SELECTED_SUBREDDITS) -> Dataset:
    selected = set(subreddits)
    return reddit.filter(lambda r: r.community not in selected)

def slice_board(fourchan: Dataset, board: str = "/pol/") -> Dataset:
    return fourchan.filter(lambda r: r.community == board)

def slice_other_boards(fourchan: Dataset, board: str = "/pol/") -> Dataset:
    return fourchan.filter(lambda r: r.community != board)


# ---------------------------------------------------------------------------
# Table 1 — total posts and share containing news URLs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PostShareRow:
    platform: str
    total_posts: int
    pct_alternative: float
    pct_mainstream: float


def total_post_shares(total_posts: dict[str, int],
                      datasets: dict[str, Dataset]) -> list[PostShareRow]:
    """Table 1.  ``total_posts``/``datasets`` keyed by platform name."""
    rows = []
    for platform, total in total_posts.items():
        dataset = datasets[platform]
        alt = dataset.url_post_count(NewsCategory.ALTERNATIVE)
        main = dataset.url_post_count(NewsCategory.MAINSTREAM)
        rows.append(PostShareRow(
            platform=platform,
            total_posts=total,
            pct_alternative=100.0 * alt / total if total else 0.0,
            pct_mainstream=100.0 * main / total if total else 0.0,
        ))
    return rows


# ---------------------------------------------------------------------------
# Table 2 — dataset overview per community split
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OverviewRow:
    name: str
    posts_with_urls: int
    unique_alternative: int
    unique_mainstream: int


def dataset_overview(named_slices: dict[str, Dataset]) -> list[OverviewRow]:
    """Table 2: one row per community split."""
    rows = []
    for name, dataset in named_slices.items():
        rows.append(OverviewRow(
            name=name,
            posts_with_urls=len(dataset),
            unique_alternative=len(
                dataset.unique_urls(NewsCategory.ALTERNATIVE)),
            unique_mainstream=len(
                dataset.unique_urls(NewsCategory.MAINSTREAM)),
        ))
    return rows


# ---------------------------------------------------------------------------
# Table 3 — Twitter re-crawl statistics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TwitterStatsRow:
    category: NewsCategory
    tweets: int
    retrieved: int
    retrieved_pct: float
    mean_retweets: float
    std_retweets: float
    mean_likes: float
    std_likes: float


def twitter_recrawl_stats(recrawl) -> list[TwitterStatsRow]:
    """Table 3, from a :class:`~repro.collection.recrawl.RecrawlStats`."""
    rows = []
    for category in (NewsCategory.ALTERNATIVE, NewsCategory.MAINSTREAM):
        bucket = recrawl.of(category)
        rows.append(TwitterStatsRow(
            category=category,
            tweets=bucket.tweets,
            retrieved=bucket.retrieved,
            retrieved_pct=100.0 * bucket.retrieved_fraction,
            mean_retweets=bucket.mean_retweets,
            std_retweets=bucket.std_retweets,
            mean_likes=bucket.mean_likes,
            std_likes=bucket.std_likes,
        ))
    return rows


# ---------------------------------------------------------------------------
# Tables 4-7 — top subreddits / domains
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RankedShare:
    name: str
    count: int
    percentage: float


def ranked_shares(counter: Counter, top_n: int) -> list[RankedShare]:
    """Top-N entries of an occurrence counter with percentage shares.

    Shared by the batch table functions below and the incremental
    aggregators in :mod:`repro.live` — both produce their rows from a
    plain occurrence :class:`~collections.Counter` through this one
    function, so batch and live outputs agree exactly.
    """
    total = sum(counter.values())
    rows = []
    for name, count in counter.most_common(top_n):
        rows.append(RankedShare(
            name=name,
            count=count,
            percentage=100.0 * count / total if total else 0.0,
        ))
    return rows


def count_domain_occurrences(records: Iterable[DatasetRecord],
                             category: NewsCategory) -> Counter:
    """Occurrence counter ``domain -> count`` for one category."""
    counter: Counter = Counter()
    for record in records:
        for occurrence in record.urls_of(category):
            counter[occurrence.domain] += 1
    return counter


def count_url_occurrences(records: Iterable[DatasetRecord],
                          category: NewsCategory) -> Counter:
    """Occurrence counter ``url -> count`` for one category."""
    counter: Counter = Counter()
    for record in records:
        for occurrence in record.urls_of(category):
            counter[occurrence.url] += 1
    return counter


def top_subreddits(reddit: Dataset, category: NewsCategory,
                   top_n: int = 20,
                   exclude: frozenset[str] = frozenset({"AutoNewspaper"}),
                   ) -> list[RankedShare]:
    """Table 4: subreddits ranked by URL occurrences of one category.

    Occurrences are counted per URL mention (a post with two alternative
    URLs counts twice), and automated subreddits are omitted like the
    paper omits /r/AutoNewspaper.
    """
    counter: Counter = Counter()
    for record in reddit:
        if record.community in exclude:
            continue
        occurrences = record.urls_of(category)
        if occurrences:
            counter[record.community] += len(occurrences)
    return ranked_shares(counter, top_n)


def top_domains(dataset: Dataset, category: NewsCategory,
                top_n: int = 20) -> list[RankedShare]:
    """Tables 5-7: domains ranked by URL occurrences within a slice."""
    return ranked_shares(count_domain_occurrences(dataset, category), top_n)


def top_domain_coverage(dataset: Dataset, category: NewsCategory,
                        top_n: int = 20) -> float:
    """Share of all occurrences captured by the top-N domains (Section 3)."""
    ranked = top_domains(dataset, category, top_n)
    total = sum(1 for record in dataset
                for _ in record.urls_of(category))
    covered = sum(row.count for row in ranked)
    return 100.0 * covered / total if total else 0.0


# ---------------------------------------------------------------------------
# Figure 1 — CDF of URL appearance counts within a platform
# ---------------------------------------------------------------------------

def url_appearance_cdf(dataset: Dataset,
                       category: NewsCategory) -> Ecdf | None:
    """Figure 1: ECDF of how many times each URL appears in the slice."""
    return appearance_cdf_from_counter(
        count_url_occurrences(dataset, category))


def appearance_cdf_from_counter(counter: Counter) -> Ecdf | None:
    """Figure 1 ECDF from a ``url -> count`` occurrence counter."""
    if not counter:
        return None
    return Ecdf(list(counter.values()))


# ---------------------------------------------------------------------------
# Figure 2 — per-domain platform fractions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DomainPlatformShare:
    domain: str
    #: platform name -> fraction of the domain's occurrences on it.
    fractions: dict[str, float]
    total: int


def domain_platform_fractions(named_slices: dict[str, Dataset],
                              category: NewsCategory,
                              top_n: int = 20) -> list[DomainPlatformShare]:
    """Figure 2: for the overall top-N domains, each platform's share."""
    per_platform = {
        name: count_domain_occurrences(dataset, category)
        for name, dataset in named_slices.items()
    }
    return domain_fractions_from_counters(per_platform, top_n)


def domain_fractions_from_counters(per_platform: dict[str, Counter],
                                   top_n: int = 20,
                                   ) -> list[DomainPlatformShare]:
    """Figure 2 rows from per-slice ``domain -> count`` counters."""
    overall: Counter = Counter()
    for counter in per_platform.values():
        overall.update(counter)
    rows = []
    for domain, total in overall.most_common(top_n):
        fractions = {
            name: per_platform[name].get(domain, 0) / total
            for name in per_platform
        }
        rows.append(DomainPlatformShare(domain=domain, fractions=fractions,
                                        total=total))
    return rows


# ---------------------------------------------------------------------------
# Figure 3 — per-user alternative news fraction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UserFractions:
    """Per-user alternative fractions for one platform."""

    all_users: Ecdf | None
    mixed_users: Ecdf | None
    n_users: int
    pct_mainstream_only: float
    pct_alternative_only: float


def user_alternative_fraction(dataset: Dataset) -> UserFractions:
    """Figure 3: fraction of each user's news URLs that are alternative.

    4chan is excluded by construction (its records carry no author).
    """
    per_user: dict[str, list[int]] = {}
    for record in dataset:
        if record.author_id is None:
            continue
        counts = per_user.setdefault(record.author_id, [0, 0])
        counts[0] += len(record.urls_of(NewsCategory.ALTERNATIVE))
        counts[1] += len(record.urls_of(NewsCategory.MAINSTREAM))
    fractions = []
    mixed = []
    n_main_only = 0
    n_alt_only = 0
    for alt, main in per_user.values():
        total = alt + main
        if not total:
            continue
        fraction = alt / total
        fractions.append(fraction)
        if alt and main:
            mixed.append(fraction)
        elif alt:
            n_alt_only += 1
        else:
            n_main_only += 1
    n_users = len(fractions)
    return UserFractions(
        all_users=Ecdf(fractions) if fractions else None,
        mixed_users=Ecdf(mixed) if mixed else None,
        n_users=n_users,
        pct_mainstream_only=100.0 * n_main_only / n_users if n_users else 0.0,
        pct_alternative_only=100.0 * n_alt_only / n_users if n_users else 0.0,
    )
