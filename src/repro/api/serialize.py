"""JSON serializers shared by the CLI (``repro list --json``), the
HTTP query service, and the live engine's artifact publishing.

Everything here emits *canonical* JSON — sorted keys, compact
separators, NaN/inf scrubbed to ``null`` — so the same payload always
serializes to the same bytes.  That is what makes ETag / 304 handling
and the byte-identity guarantees of the service trivially correct.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

import numpy as np

from ..core.influence import InfluenceResult, aggregate_weights
from ..news.domains import NewsCategory
from ..paper import EXPERIMENTS, Experiment

CONTENT_TYPE_JSON = "application/json; charset=utf-8"


def clean(obj: Any) -> Any:
    """Recursively coerce ``obj`` into JSON-encodable plain data."""
    if isinstance(obj, dict):
        return {str(key): clean(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [clean(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return clean(obj.tolist())
    if isinstance(obj, (np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return value if math.isfinite(value) else None
    if isinstance(obj, NewsCategory):
        return obj.value
    return obj


def canonical_bytes(payload: Any) -> bytes:
    """Encode a payload to canonical (byte-stable) JSON."""
    return json.dumps(clean(payload), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def payload_key(payload: Any) -> str:
    """Content key of a JSON payload: SHA-256 of its canonical bytes."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


# ---------------------------------------------------------------------------
# Experiment index (CLI `list --json` and GET /experiments)
# ---------------------------------------------------------------------------

def experiment_payload(experiment: Experiment) -> dict:
    return {
        "id": experiment.exp_id,
        "title": experiment.title,
        "paper_values": list(experiment.paper_values),
        "shape_checks": list(experiment.shape_checks),
        "artifact": experiment.artifact,
        "bench": experiment.bench,
        "modules": list(experiment.modules),
    }


def experiments_payload(experiments=EXPERIMENTS) -> dict:
    return {
        "count": len(experiments),
        "experiments": [experiment_payload(e) for e in experiments],
    }


# ---------------------------------------------------------------------------
# Scenario index (CLI `scenarios list --json` and GET /scenarios)
# ---------------------------------------------------------------------------

def scenario_payload(scenario) -> dict:
    """One scenario preset as JSON-ready plain data."""
    eco = scenario.ecosystem
    return {
        "name": scenario.name,
        "id": scenario.scenario_id,
        "version": scenario.version,
        "title": scenario.title,
        "description": scenario.description,
        "k": scenario.k,
        "processes": list(eco.processes),
        "platforms": [spec.key for spec in eco.platforms],
        "slices": list(eco.slices),
        "method": scenario.method,
        "seed": scenario.world.seed,
    }


def scenarios_payload(scenarios=None) -> dict:
    """The scenario index (every registered preset, sorted by name)."""
    if scenarios is None:
        from ..scenarios import all_scenarios
        scenarios = all_scenarios()
    return {
        "count": len(scenarios),
        "scenarios": [scenario_payload(s) for s in scenarios],
    }


# ---------------------------------------------------------------------------
# Influence payloads (GET /influence and live publishing)
# ---------------------------------------------------------------------------

def influence_payload(result: InfluenceResult) -> dict:
    """Everything Figures 10-11 report, as one JSON-ready payload.

    Used identically for batch fits (the Study `fits` stage) and the
    live engine's windowed refits, so the service serves both through
    one code path.
    """
    from ..core.influence import influence_percentages

    categories: dict[str, dict] = {}
    for category in NewsCategory:
        fits = result.of_category(category)
        stack = result.weight_stack(category)
        categories[category.value] = {
            "n_urls": len(fits),
            "mean_weights": (stack.mean(axis=0).tolist()
                             if len(fits) else None),
            "influence_pct": influence_percentages(
                result, category).tolist(),
        }
    percent_change = None
    significant_cells = None
    try:
        aggregate = aggregate_weights(result)
    except ValueError:
        pass  # one category empty: means stay per-category, no contrast
    else:
        percent_change = aggregate.percent_change.tolist()
        significant_cells = int((aggregate.significance_stars() != "").sum())
    return clean({
        "processes": list(result.processes),
        "n_urls": {category.value: len(result.of_category(category))
                   for category in NewsCategory},
        "categories": categories,
        "percent_change": percent_change,
        "ks_significant_cells": significant_cells,
    })


def filter_influence(payload: dict, category: str | None = None,
                     source: str | None = None,
                     destination: str | None = None) -> dict:
    """Reduce a full influence payload to the matching matrix cells.

    With no filters the payload is returned untouched; any filter
    switches to a flat ``cells`` list (one entry per retained
    ``source -> destination`` pair per category).  Raises ``KeyError``
    for unknown category or process names.
    """
    if category is None and source is None and destination is None:
        return payload
    processes = payload["processes"]
    categories = ([category] if category is not None
                  else sorted(payload["categories"]))
    for name in categories:
        if name not in payload["categories"]:
            raise KeyError(f"unknown category {name!r}")
    for process in (source, destination):
        if process is not None and process not in processes:
            raise KeyError(f"unknown process {process!r}")
    cells = []
    for name in categories:
        block = payload["categories"][name]
        means = block["mean_weights"]
        pct = block["influence_pct"]
        for i, src in enumerate(processes):
            if source is not None and src != source:
                continue
            for j, dst in enumerate(processes):
                if destination is not None and dst != destination:
                    continue
                cells.append({
                    "category": name,
                    "source": src,
                    "destination": dst,
                    "mean_weight": (means[i][j]
                                    if means is not None else None),
                    "influence_pct": pct[i][j] if pct is not None else None,
                })
    return {
        "processes": processes,
        "filters": {"category": category, "source": source,
                    "destination": destination},
        "cells": cells,
    }
