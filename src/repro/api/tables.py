"""Structured builders for the paper's Tables 1-11.

Each builder turns the analysis-layer row objects into a
:class:`TableArtifact` — a serializable (columns, rows) payload plus
the aligned monospace rendering the benchmarks and CLI print.  Tables
1-10 derive from collected data alone; Table 11 additionally needs the
fitted Hawkes corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import characterization as chz
from ..analysis import sequences, temporal
from ..config import HAWKES_PROCESSES
from ..news.domains import NewsCategory
from ..paper import by_id
from ..reporting.tables import render_table

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM

#: Tables that require the fitted influence corpus, not just data.
TABLES_NEEDING_FITS = frozenset({11})
TABLE_IDS = tuple(range(1, 12))


@dataclass(frozen=True)
class TableArtifact:
    """One rendered paper table: structured rows plus monospace text."""

    table_id: int
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]

    def render(self) -> str:
        return render_table(self.columns, self.rows,
                            title=f"Table {self.table_id} — {self.title}")

    def to_payload(self) -> dict:
        """JSON-ready dict, shared by the CLI and the HTTP service."""
        return {
            "table": self.table_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "text": self.render(),
        }


def _artifact(table_id: int, columns, rows) -> TableArtifact:
    return TableArtifact(
        table_id=table_id,
        title=by_id(f"Table {table_id}").title,
        columns=tuple(columns),
        rows=tuple(tuple(row) for row in rows),
    )


def _named_slices(data) -> dict:
    named = {
        "Twitter": data.twitter,
        "Reddit (six selected subreddits)": data.reddit_six,
        "Reddit (other subreddits)": data.reddit_other,
        "4chan (/pol/)": data.pol,
        "4chan (other boards)": data.fourchan_other,
    }
    named.update(data.extra_slices())
    return named


def _table_1(data):
    world = data.world
    totals = {"Twitter": world.twitter.total_posts,
              "Reddit": world.reddit.total_posts,
              "4chan": world.fourchan.total_posts}
    datasets = {"Twitter": data.twitter, "Reddit": data.reddit,
                "4chan": data.fourchan}
    for spec in world.config.extra_platforms:
        if spec.key in data.extras:
            totals[spec.display] = world.extras[spec.key].total_posts
            datasets[spec.display] = data.extras[spec.key]
    rows = chz.total_post_shares(totals, datasets)
    return _artifact(1, ["Platform", "Total posts", "% alt", "% main"],
                     [[r.platform, r.total_posts, r.pct_alternative,
                       r.pct_mainstream] for r in rows])


def _table_2(data):
    rows = chz.dataset_overview(_named_slices(data))
    return _artifact(
        2, ["Community", "Posts w/ URLs", "Alt URLs", "Main URLs"],
        [[r.name, r.posts_with_urls, r.unique_alternative,
          r.unique_mainstream] for r in rows])


def _table_3(data):
    rows = chz.twitter_recrawl_stats(data.recrawl)
    return _artifact(
        3, ["Category", "Tweets", "Retrieved", "Retrieved %",
            "Mean RTs", "Std RTs", "Mean likes", "Std likes"],
        [[r.category.value, r.tweets, r.retrieved, r.retrieved_pct,
          r.mean_retweets, r.std_retweets, r.mean_likes, r.std_likes]
         for r in rows])


def _two_sided_ranking(table_id: int, label: str, alt_rows, main_rows):
    """Tables 4-7 layout: alternative and mainstream columns side by side."""
    rows = []
    for i in range(max(len(alt_rows), len(main_rows))):
        alt = alt_rows[i] if i < len(alt_rows) else None
        main = main_rows[i] if i < len(main_rows) else None
        rows.append([
            i + 1,
            alt.name if alt else "",
            alt.percentage if alt else "",
            main.name if main else "",
            main.percentage if main else "",
        ])
    return _artifact(
        table_id,
        ["Rank", f"Alt {label}", "Alt %", f"Main {label}", "Main %"],
        rows)


def _table_4(data):
    return _two_sided_ranking(
        4, "subreddit",
        chz.top_subreddits(data.reddit, ALT, 20),
        chz.top_subreddits(data.reddit, MAIN, 20))


def _domain_table(table_id: int, dataset):
    return _two_sided_ranking(
        table_id, "domain",
        chz.top_domains(dataset, ALT, 20),
        chz.top_domains(dataset, MAIN, 20))


def _table_8(data):
    pairs = {
        "Reddit6 vs Twitter": (data.reddit_six, data.twitter),
        "/pol/ vs Twitter": (data.pol, data.twitter),
        "/pol/ vs Reddit6": (data.pol, data.reddit_six),
    }
    for process, dataset in data.extra_slices().items():
        pairs[f"{process} vs Twitter"] = (dataset, data.twitter)
    rows = temporal.faster_platform_counts(pairs)
    return _artifact(
        8, ["Comparison", "News type", "#1 faster", "#2 faster"],
        [[r.comparison, r.category.value, r.faster_on_1, r.faster_on_2]
         for r in rows])


def _sequence_table(table_id: int, data, distribution):
    slices = data.sequence_slices()
    per_category = {category: {r.sequence: r
                               for r in distribution(slices, category)}
                    for category in (ALT, MAIN)}
    sequences_seen = sorted(set(per_category[ALT]) | set(per_category[MAIN]))
    rows = []
    for sequence in sequences_seen:
        alt = per_category[ALT].get(sequence)
        main = per_category[MAIN].get(sequence)
        rows.append([
            sequence,
            alt.count if alt else 0,
            alt.percentage if alt else 0.0,
            main.count if main else 0,
            main.percentage if main else 0.0,
        ])
    return _artifact(
        table_id, ["Sequence", "Alt URLs", "Alt %", "Main URLs", "Main %"],
        rows)


def _table_11(data, influence):
    from ..core.influence import corpus_background_rates

    summary = corpus_background_rates(influence)
    rows = []
    for i, process in enumerate(summary.processes):
        rows.append([
            process,
            int(summary.urls[ALT][i]), int(summary.events[ALT][i]),
            float(summary.mean_background[ALT][i]),
            int(summary.urls[MAIN][i]), int(summary.events[MAIN][i]),
            float(summary.mean_background[MAIN][i]),
        ])
    return _artifact(
        11, ["Process", "Alt URLs", "Alt events", "Alt mean bg",
             "Main URLs", "Main events", "Main mean bg"],
        rows)


def build_table(table_id: int, data, influence=None) -> TableArtifact:
    """Build Table ``table_id`` (1-11) from collected data (+ fits for 11)."""
    if table_id not in TABLE_IDS:
        raise KeyError(f"unknown table id {table_id!r} (expected 1-11)")
    if table_id == 1:
        return _table_1(data)
    if table_id == 2:
        return _table_2(data)
    if table_id == 3:
        return _table_3(data)
    if table_id == 4:
        return _table_4(data)
    if table_id == 5:
        return _domain_table(5, data.reddit_six)
    if table_id == 6:
        return _domain_table(6, data.twitter)
    if table_id == 7:
        return _domain_table(7, data.pol)
    if table_id == 8:
        return _table_8(data)
    if table_id == 9:
        return _sequence_table(9, data, sequences.first_hop_distribution)
    if table_id == 10:
        return _sequence_table(10, data, sequences.triplet_distribution)
    if influence is None:
        raise ValueError("Table 11 needs the fitted influence corpus")
    return _table_11(data, influence)
