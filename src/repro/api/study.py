"""The :class:`Study` session: one configuration, every pipeline product.

A ``Study`` owns all the knobs a reproduction run needs (world
configuration, Hawkes configuration, fit method and seed, worker
count) and exposes each pipeline product — world, collected datasets,
cascades, corpus, per-URL fits, aggregates, tables, the markdown
report — as a lazily computed stage artifact.  Stages form an explicit
dependency graph; each stage's key is the content hash of its
parameters plus its upstream keys, so identically configured studies
agree on every key and share artifacts through an
:class:`~repro.api.store.ArtifactStore` (in-memory by default, on-disk
and cross-process with ``cache_dir=``).

The numerical results are bit-identical to the legacy
:mod:`repro.pipeline` free functions: stages call the exact same
underlying code (``build_world``/``collect``/``fit_corpus``/...), the
session only adds keying, memoization, and persistence on top.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from ..config import HawkesConfig, TWITTER_GAPS
from ..platforms.registry import PAPER_ECOSYSTEM, Ecosystem
from ..obs import DEFAULT_TIME_BUCKETS, get_registry, span
from ..core.influence import (
    CorpusSummary,
    Engine,
    FitMethod,
    InfluenceResult,
    UrlCascade,
    WeightAggregate,
    aggregate_weights,
    corpus_background_rates,
    fit_corpus,
    influence_percentages,
    select_urls,
    trim_gap_urls,
)
from ..news.domains import NewsCategory
from ..parallel.seeding import SeedLike, as_seed_sequence
from ..synthesis.world import World, WorldConfig, build_world
from ..timeutil import Interval
from .store import MISSING, SCHEMA_VERSION, ArtifactStore, digest
from .tables import TABLE_IDS, TABLES_NEEDING_FITS, TableArtifact, build_table


@dataclass(frozen=True)
class _Stage:
    """One node of the stage graph."""

    deps: tuple[str, ...]
    params: Callable[["Study"], dict]
    compute: Callable[["Study"], object]


def _no_params(study: "Study") -> dict:
    return {}


class Study:
    """A configured reproduction session with cached stage artifacts.

    Quickstart::

        from repro import Study

        study = Study(seed=7)
        print(study.table(4).render())      # computes world -> data -> table
        study.table(4)                      # instant: memoized artifact
        result = study.influence()          # per-URL Hawkes fits

    Parameters mirror the legacy pipeline entry points: ``world`` (or
    the ``seed`` shorthand) configures the synthetic world, ``hawkes``
    / ``method`` / ``fit_seed`` / ``max_urls`` the Section-5 corpus
    fit, and ``n_jobs`` the worker fan-out (a pure execution knob —
    results and therefore artifact keys are identical for any value).
    ``engine`` picks the EM execution strategy (``"per-url"`` golden
    reference or ``"batched"`` packed array program); like ``n_jobs``
    it is an execution knob equivalent to floating-point tolerance, so
    it is likewise excluded from artifact keys.  ``cache_dir`` persists
    artifacts on disk, shared across processes; ``store`` injects a
    prebuilt :class:`ArtifactStore` instead.
    """

    def __init__(self, world: WorldConfig | None = None, *,
                 scenario=None,
                 seed: int | None = None,
                 hawkes: HawkesConfig | None = None,
                 method: FitMethod | None = None,
                 fit_seed: SeedLike = 0,
                 max_urls: int | None = None,
                 gaps: Sequence[Interval] = TWITTER_GAPS,
                 trim_fraction: float = 0.10,
                 n_jobs: int | None = 1,
                 stream_seed: int = 0,
                 keep_samples: bool = False,
                 engine: Engine = "per-url",
                 cache_dir=None,
                 store: ArtifactStore | None = None) -> None:
        # ``scenario`` (a name like "gab", an id like "gab@v1", or a
        # Scenario object) supplies the defaults for world / hawkes /
        # method and fixes the ecosystem; explicit arguments override
        # the scenario's bundle piecewise.
        if scenario is not None:
            from ..scenarios import get_scenario
            scenario = get_scenario(scenario)
        self.scenario = scenario
        self.ecosystem: Ecosystem = (scenario.ecosystem if scenario is not None
                                     else PAPER_ECOSYSTEM)
        if world is None:
            if scenario is not None:
                world = (dataclasses.replace(scenario.world, seed=seed)
                         if seed is not None else scenario.world)
            else:
                world = (WorldConfig(seed=seed) if seed is not None
                         else WorldConfig())
        elif seed is not None and world.seed != seed:
            raise ValueError(
                f"seed={seed} conflicts with world.seed={world.seed}; "
                "pass one or the other")
        self.world_config = world
        if hawkes is None:
            hawkes = (scenario.hawkes if scenario is not None
                      else HawkesConfig())
        self.hawkes_config = hawkes
        if method is None:
            method = scenario.method if scenario is not None else "gibbs"
        if method not in ("gibbs", "em"):
            raise ValueError(f"unknown fit method {method!r}")
        if engine not in ("per-url", "batched"):
            raise ValueError(f"unknown fit engine {engine!r}")
        if engine == "batched" and method != "em":
            raise ValueError("engine='batched' requires method='em'")
        self.method: FitMethod = method
        self.engine: Engine = engine
        self.max_urls = max_urls
        self.gaps = tuple(gaps)
        self.trim_fraction = trim_fraction
        self.n_jobs = n_jobs
        self.stream_seed = stream_seed
        self.keep_samples = keep_samples
        # Canonicalize the fit seed once: the root SeedSequence state is
        # both the key ingredient and the recipe to rebuild an identical
        # root for every (re)compute.  ``None`` canonicalizes to fresh
        # OS entropy, so an unseeded study never gets a false cache hit.
        root = as_seed_sequence(fit_seed)
        self._fit_seed_state = (root.entropy, tuple(root.spawn_key),
                                root.n_children_spawned)
        self.store = store if store is not None else ArtifactStore(cache_dir)
        self._memo: dict[str, object] = {}
        self._keys: dict[str, str] = {}
        self._lock = threading.RLock()
        #: Per-stage compute locks: expensive stages are computed outside
        #: the session lock, so key hashing (ETag checks) never blocks
        #: behind a cold fit.  Lock order follows the stage DAG (a
        #: stage's compute only takes its dependencies' locks), so no
        #: cycles are possible.
        self._stage_locks: dict[str, threading.Lock] = {}
        self.stats = {"computed": 0, "store_hits": 0, "memo_hits": 0}

    @classmethod
    def from_data(cls, data, **kwargs) -> "Study":
        """Wrap an existing :class:`~repro.pipeline.CollectedData`.

        The world and data stages are pre-seeded from ``data`` (keyed
        by ``data.world.config``, which the caller vouches actually
        produced it); downstream stages compute lazily as usual.  This
        is how the legacy ``fit_influence(data, ...)`` shim reuses the
        session machinery without re-collecting.
        """
        study = cls(world=data.world.config, **kwargs)
        with study._lock:
            study._memo["world"] = data.world
            study._memo["data"] = data
        return study

    # -- stage graph --------------------------------------------------------

    def _fit_seed_root(self) -> np.random.SeedSequence:
        entropy, spawn_key, n_children = self._fit_seed_state
        return np.random.SeedSequence(entropy, spawn_key=spawn_key,
                                      n_children_spawned=n_children)

    def _compute_data(self):
        from ..pipeline import collect
        return collect(self._value("world"), stream_seed=self.stream_seed)

    def _compute_cascades(self):
        from ..pipeline import influence_cascades
        return influence_cascades(self._value("data"),
                                  ecosystem=self.ecosystem)

    def _compute_corpus(self):
        eco = self.ecosystem
        corpus = trim_gap_urls(
            select_urls(self._value("cascades"), processes=eco.processes,
                        require_all=eco.require_all,
                        require_any=eco.require_any),
            self.gaps, self.trim_fraction)
        return corpus if self.max_urls is None else corpus[:self.max_urls]

    def _compute_fits(self):
        return fit_corpus(self._value("corpus"), self.hawkes_config,
                          method=self.method,
                          processes=self.ecosystem.processes,
                          rng=self._fit_seed_root(),
                          n_jobs=self.n_jobs,
                          keep_samples=self.keep_samples,
                          engine=self.engine)

    def _world_params(self) -> dict:
        # The scenario id participates in the root key (and therefore in
        # every downstream key) so presets cache independently; bare
        # sessions keep their legacy keys.
        params = {"config": self.world_config}
        if self.scenario is not None:
            params["scenario"] = self.scenario.scenario_id
        return params

    def _stages(self) -> dict[str, _Stage]:
        stages = {
            "world": _Stage((), Study._world_params,
                            lambda s: build_world(s.world_config)),
            "data": _Stage(("world",),
                           lambda s: {"stream_seed": s.stream_seed},
                           Study._compute_data),
            "cascades": _Stage(("data",), _no_params,
                               Study._compute_cascades),
            "corpus": _Stage(("cascades",),
                             lambda s: {"gaps": s.gaps,
                                        "trim_fraction": s.trim_fraction,
                                        "max_urls": s.max_urls},
                             Study._compute_corpus),
            "fits": _Stage(("corpus",),
                           lambda s: {"hawkes": s.hawkes_config,
                                      "method": s.method,
                                      "fit_seed": list(s._fit_seed_state),
                                      "keep_samples": s.keep_samples},
                           Study._compute_fits),
            "aggregate": _Stage(("fits",), _no_params,
                                lambda s: aggregate_weights(
                                    s._value("fits"))),
            "summary": _Stage(("fits",), _no_params,
                              lambda s: corpus_background_rates(
                                  s._value("fits"))),
        }
        for table_id in TABLE_IDS:
            deps = (("data", "fits") if table_id in TABLES_NEEDING_FITS
                    else ("data",))
            stages[f"table:{table_id}"] = _Stage(
                deps, _no_params,
                lambda s, n=table_id: build_table(
                    n, s._value("data"),
                    s._value("fits") if n in TABLES_NEEDING_FITS else None))
        return stages

    def _stage(self, name: str) -> _Stage:
        stages = self._stages()
        try:
            return stages[name]
        except KeyError:
            raise KeyError(f"unknown stage {name!r}; expected one of "
                           f"{sorted(stages)}") from None

    def stage_names(self) -> tuple[str, ...]:
        return tuple(self._stages())

    def stage_key(self, name: str) -> str:
        """Content key of a stage: hash of params + upstream keys.

        Pure hashing — computing a key never computes the artifact, so
        the HTTP service answers conditional requests (ETag / 304)
        without touching NumPy.
        """
        with self._lock:
            if name in self._keys:
                return self._keys[name]
            spec = self._stage(name)
            key = digest({
                "schema": SCHEMA_VERSION,
                "stage": name,
                "params": spec.params(self),
                "deps": {dep: self.stage_key(dep) for dep in spec.deps},
            })
            self._keys[name] = key
            return key

    def keys(self) -> dict[str, str]:
        """Every stage's content key (all pure hashes, nothing computed)."""
        return {name: self.stage_key(name) for name in self.stage_names()}

    def etag(self, name: str) -> str:
        return f'"{self.stage_key(name)}"'

    @staticmethod
    def _count_stage(name: str, result: str) -> None:
        get_registry().counter(
            "repro_stage_requests_total",
            "Stage artifact requests by resolution.",
            stage=name, result=result).inc()

    def _value(self, name: str):
        with self._lock:
            if name in self._memo:
                self.stats["memo_hits"] += 1
                self._count_stage(name, "memo")
                return self._memo[name]
            stage_lock = self._stage_locks.setdefault(name,
                                                      threading.Lock())
        with stage_lock:
            with self._lock:
                if name in self._memo:  # computed while we waited
                    self.stats["memo_hits"] += 1
                    self._count_stage(name, "memo")
                    return self._memo[name]
                key = self.stage_key(name)
            load_start = perf_counter()
            cached = self.store.get(key, MISSING)
            if cached is not MISSING:
                with self._lock:
                    self.stats["store_hits"] += 1
                self._count_stage(name, "store")
                get_registry().histogram(
                    "repro_stage_load_seconds",
                    "Wall time to load one stage artifact from the store.",
                    edges=DEFAULT_TIME_BUCKETS,
                    stage=name).observe(perf_counter() - load_start)
                with self._lock:
                    self._memo[name] = cached
                return cached
            compute_start = perf_counter()
            with span(f"stage:{name}"):
                value = self._stage(name).compute(self)
            self._count_stage(name, "computed")
            get_registry().histogram(
                "repro_stage_compute_seconds",
                "Wall time to compute one cold stage artifact.",
                stage=name).observe(perf_counter() - compute_start)
            with self._lock:
                self.stats["computed"] += 1
                self._memo[name] = value
            self.store.put(key, value)
            return value

    # -- products -----------------------------------------------------------

    @property
    def world(self) -> World:
        return self._value("world")

    @property
    def data(self):
        """The collected datasets (a :class:`~repro.pipeline.CollectedData`)."""
        return self._value("data")

    @property
    def cascades(self) -> list[UrlCascade]:
        return self._value("cascades")

    @property
    def corpus(self) -> list[UrlCascade]:
        return self._value("corpus")

    def influence(self) -> InfluenceResult:
        """Per-URL Hawkes fits over the selected corpus (Section 5)."""
        return self._value("fits")

    def aggregate(self) -> WeightAggregate:
        """Figure 10 aggregation (raises if a category has no fits)."""
        return self._value("aggregate")

    def corpus_summary(self) -> CorpusSummary:
        """Table 11 per-process corpus summary."""
        return self._value("summary")

    def percentages(self, category: NewsCategory) -> np.ndarray:
        """Figure 11 influence percentages for one category."""
        return influence_percentages(self.influence(), category)

    def table(self, table_id: int) -> TableArtifact:
        """Paper Table ``table_id`` (1-11) as a structured artifact."""
        if table_id not in TABLE_IDS:
            raise KeyError(f"unknown table id {table_id!r} (expected 1-11)")
        return self._value(f"table:{table_id}")

    def tables(self) -> dict[int, TableArtifact]:
        return {table_id: self.table(table_id) for table_id in TABLE_IDS}

    def report(self, include_influence: bool = True) -> str:
        """The full markdown study report over this session's artifacts."""
        from ..reporting.study import generate_study_report
        corpus = result = None
        if include_influence:
            corpus = self.corpus
            if len(corpus) >= 4:
                result = self.influence()
        return generate_study_report(
            self.data, include_influence=include_influence,
            n_jobs=self.n_jobs, corpus=corpus, influence_result=result,
            ecosystem=self.ecosystem)

    def write_report(self, path, include_influence: bool = True):
        from pathlib import Path
        path = Path(path)
        path.write_text(self.report(include_influence=include_influence),
                        encoding="utf-8")
        return path
