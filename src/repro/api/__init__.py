"""``repro.api`` — the unified session, artifact-cache, and serving layer.

This package is the public surface of the reproduction.  A
:class:`Study` owns one configuration and exposes every pipeline
product as a lazily computed, dependency-tracked stage artifact; an
:class:`ArtifactStore` persists those artifacts content-addressed on
disk so any product is computed at most once per configuration across
processes and sessions; a :class:`StudyService` serves them over HTTP
with ETag/304 semantics driven by the artifact keys.

Stage graph
===========

Arrows point from an artifact to the stages derived from it; each
stage's key hashes its own parameters plus the keys of everything
upstream, so a changed knob invalidates exactly the cone below it::

    world (WorldConfig)
      └── data (collect; stream_seed)
            ├── table:1 .. table:10        (paper Tables 1-10)
            └── cascades
                  └── corpus (gaps, trim_fraction, max_urls)
                        └── fits (HawkesConfig, method, fit_seed)
                              ├── table:11
                              ├── aggregate   (Figure 10)
                              └── summary     (Table 11 rates)

``n_jobs`` is deliberately absent from every key: the parallel layer
guarantees bit-identical results for any worker count, so it is an
execution knob, not a configuration knob.

Quickstart::

    from repro import Study

    study = Study(seed=7, cache_dir=".repro-cache")
    print(study.table(4).render())     # cold: builds world -> data -> table
    study.table(4)                     # warm: memoized, no recompute
    result = study.influence()         # Section-5 per-URL Hawkes fits

    from repro.api import StudyService
    StudyService(study, port=8731).serve_forever()   # or: repro serve
"""

from .serialize import (
    canonical_bytes,
    experiments_payload,
    filter_influence,
    influence_payload,
    payload_key,
)
from .service import LIVE_INFLUENCE_REF, StudyService, serve
from .store import SCHEMA_VERSION, ArtifactStore, digest, fingerprint
from .study import Study
from .tables import TABLE_IDS, TableArtifact, build_table

__all__ = [
    "ArtifactStore",
    "LIVE_INFLUENCE_REF",
    "SCHEMA_VERSION",
    "Study",
    "StudyService",
    "TABLE_IDS",
    "TableArtifact",
    "build_table",
    "canonical_bytes",
    "digest",
    "experiments_payload",
    "filter_influence",
    "fingerprint",
    "influence_payload",
    "payload_key",
    "serve",
]
