"""HTTP query service over a :class:`~repro.api.study.Study` session.

A stdlib ``ThreadingHTTPServer`` exposing the reproduction's products
as JSON::

    GET /healthz                         liveness + version
    GET /experiments                     the paper-experiment index
    GET /scenarios                       the scenario-preset index
    GET /tables/<1-11>                   one paper table
    GET /influence                       Hawkes means / percentages
        ?category=alternative|mainstream
        ?source=<process>&destination=<process>   (matrix-cell filters)
        ?view=live                       latest live-engine refit
    GET /stages                          stage -> key map + store stats
    GET /metrics                         Prometheus text (?format=json)

Process-name filters validate against the study's ecosystem, so a
K-platform scenario's service accepts exactly its K process names.

Every cacheable response carries an ``ETag`` derived from the backing
artifact's content key (a pure hash — conditional requests never
compute anything), and ``If-None-Match`` hits return ``304`` with no
body.  Rendered response bytes are cached per ETag, so repeated warm
queries are dictionary lookups that never touch NumPy.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from ..config import HAWKES_PROCESSES
from ..obs import (
    CONTENT_TYPE_PROMETHEUS,
    DEFAULT_TIME_BUCKETS,
    get_registry,
    render_prometheus,
)
from .serialize import (
    CONTENT_TYPE_JSON,
    canonical_bytes,
    experiments_payload,
    filter_influence,
    influence_payload,
    payload_key,
    scenarios_payload,
)
from .study import Study

#: Ref name under which the live engine publishes its windowed refits.
LIVE_INFLUENCE_REF = "live/influence"

logger = logging.getLogger("repro.api.service")

#: Path heads the service routes; anything else is labelled "other" so
#: scanners can't mint unbounded metric label values.
_KNOWN_ROUTES = frozenset(
    {"healthz", "experiments", "scenarios", "stages", "tables", "influence",
     "metrics"})


def _route_label(path: str) -> str:
    head = path.strip("/").split("/", 1)[0]
    return f"/{head}" if head in _KNOWN_ROUTES else "other"


class _Response(tuple):
    """(status, etag or None, body, content type, extra headers) tuple."""

    __slots__ = ()

    def __new__(cls, status: int, etag: str | None, body: bytes,
                content_type: str = CONTENT_TYPE_JSON,
                extra_headers: tuple[tuple[str, str], ...] = ()):
        return super().__new__(
            cls, (status, etag, body, content_type, extra_headers))


#: RFC 7234 header attached to stale-while-revalidate responses.
_STALE_WARNING = ("Warning", '110 repro-serve "Response is Stale"')


def _error(status: int, message: str) -> _Response:
    return _Response(status, None, canonical_bytes({"error": message}))


def _etag_matches(etag: str, if_none_match: str | None) -> bool:
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    candidates = [c.strip().removeprefix("W/")
                  for c in if_none_match.split(",")]
    return etag in candidates


class StudyService:
    """The service: routing, ETag handling, and the response-byte cache."""

    def __init__(self, study: Study, host: str = "127.0.0.1",
                 port: int = 8731, registry=None) -> None:
        self.study = study
        self.metrics = registry if registry is not None else get_registry()
        self._stats_lock = threading.Lock()
        self._n_requests = 0
        self._n_not_modified = 0
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # type: ignore[attr-defined]
        #: Rendered bodies keyed by ETag, LRU-bounded: a live engine
        #: publishing refits mints a fresh ETag per refit x filter, so
        #: an unbounded cache would grow forever in a long-lived server.
        self._body_cache: OrderedDict[str, bytes] = OrderedDict()
        self._body_cache_max = 256
        self._cache_lock = threading.Lock()
        #: Last successfully built (etag, body) per logical resource,
        #: served stale (with a Warning header) when a rebuild raises.
        self._last_good: dict[str, tuple[str, bytes]] = {}
        #: component -> failure description; populated when a resource
        #: falls back to a stale body, cleared on the next clean build.
        self._degraded: dict[str, str] = {}
        #: In-flight request accounting for graceful drain().
        self._in_flight = 0
        self._in_flight_zero = threading.Condition(self._stats_lock)
        self._draining = False
        self._version = _package_version()
        self._experiments_body = canonical_bytes(experiments_payload())
        self._experiments_etag = f'"{payload_key(experiments_payload())}"'

    # -- lifecycle ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()

    def close(self) -> None:
        self.httpd.server_close()

    def drain(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Marks the service as draining (responses start carrying
        ``Connection: close`` so keep-alive clients release their
        sockets), stops the accept loop, waits up to ``timeout``
        seconds for in-flight requests to finish, then closes the
        listening socket.  Returns ``True`` if everything drained in
        time.
        """
        with self._stats_lock:
            self._draining = True
        self.httpd.shutdown()
        with self._in_flight_zero:
            drained = self._in_flight_zero.wait_for(
                lambda: self._in_flight == 0, timeout=timeout)
        self.close()
        if not drained:
            logger.warning("drain timed out with %d requests in flight",
                           self._in_flight)
        return drained

    # -- in-flight accounting (called by the HTTP handler) ------------------

    def _request_started(self) -> None:
        with self._stats_lock:
            self._in_flight += 1

    def _request_finished(self) -> bool:
        """Decrement in-flight; returns True when the service is draining."""
        with self._in_flight_zero:
            self._in_flight -= 1
            draining = self._draining
            if self._in_flight == 0:
                self._in_flight_zero.notify_all()
        return draining

    # -- routing ------------------------------------------------------------

    def respond(self, path: str, query: dict[str, list[str]],
                if_none_match: str | None = None) -> _Response:
        """Pure request handling; the HTTP handler only does I/O."""
        start = perf_counter()
        response = self._route(path, query, if_none_match)
        status = response[0]
        route = _route_label(path)
        self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status.",
            route=route, status=str(status)).inc()
        self.metrics.histogram(
            "repro_http_request_seconds",
            "Request handling latency (routing through body render).",
            edges=DEFAULT_TIME_BUCKETS,
            route=route).observe(perf_counter() - start)
        with self._stats_lock:
            self._n_requests += 1
            if status == 304:
                self._n_not_modified += 1
        return response

    def _route(self, path: str, query: dict[str, list[str]],
               if_none_match: str | None = None) -> _Response:
        if path in ("/healthz", "/healthz/"):
            return _Response(200, None, self._health_payload())
        if path in ("/experiments", "/experiments/"):
            if _etag_matches(self._experiments_etag.strip('"'),
                             _strip_quotes(if_none_match)):
                return _Response(304, self._experiments_etag, b"")
            return _Response(200, self._experiments_etag,
                             self._experiments_body)
        if path in ("/scenarios", "/scenarios/"):
            body = canonical_bytes(scenarios_payload())
            etag = f'"{payload_key(scenarios_payload())}"'
            if _etag_matches(etag.strip('"'), _strip_quotes(if_none_match)):
                return _Response(304, etag, b"")
            return _Response(200, etag, body)
        if path in ("/stages", "/stages/"):
            return _Response(200, None, canonical_bytes(
                {"stages": self.study.keys(),
                 "store": self.study.store.stats()}))
        if path in ("/metrics", "/metrics/"):
            return self._respond_metrics(query)
        if path.startswith("/tables/"):
            return self._respond_table(path, if_none_match)
        if path in ("/influence", "/influence/"):
            return self._respond_influence(query, if_none_match)
        return _error(404, f"no route for {path}")

    def _respond_metrics(self, query: dict[str, list[str]]) -> _Response:
        """The scrape endpoint: Prometheus text, or JSON on request.

        Derived gauges (cache hit ratio, 304 ratio) are refreshed here,
        once per scrape, instead of on every request.
        """
        fmt = _single(query, "format") or "prometheus"
        if fmt not in ("prometheus", "json"):
            return _error(400, f"unknown format {fmt!r}")
        registry = self.metrics
        registry.gauge(
            "repro_store_hit_ratio",
            "Artifact store hits over total gets, process lifetime.",
        ).set(self.study.store.stats()["hit_ratio"])
        with self._stats_lock:
            total, not_modified = self._n_requests, self._n_not_modified
        if total:
            registry.gauge(
                "repro_http_not_modified_ratio",
                "Fraction of requests answered 304 Not Modified.",
            ).set(not_modified / total)
        snapshot = registry.snapshot()
        if fmt == "json":
            return _Response(200, None, canonical_bytes(snapshot))
        return _Response(200, None,
                         render_prometheus(snapshot).encode("utf-8"),
                         CONTENT_TYPE_PROMETHEUS)

    def _health_payload(self) -> bytes:
        """Liveness body; reports components serving stale results."""
        with self._cache_lock:
            degraded = dict(self._degraded)
        if not degraded:
            return canonical_bytes(
                {"status": "ok", "version": self._version})
        return canonical_bytes({"status": "degraded",
                                "version": self._version,
                                "degraded": degraded})

    def _build_fresh(self, component: str, etag: str,
                     build: Callable[[], bytes]) -> _Response:
        """Build a cacheable body, falling back to the last-good copy.

        On a build failure the most recent successful body for
        ``component`` is served with HTTP 200 plus a ``Warning: 110``
        header (stale-while-revalidate): readers keep getting answers
        while the operator sees the component flagged degraded on
        ``/healthz`` and in ``repro_serve_stale_total``.  With no
        last-good copy the error propagates as before.
        """
        try:
            body = self._body(etag, build)
        except Exception as exc:
            failure = f"{type(exc).__name__}: {exc}"
            with self._cache_lock:
                stale = self._last_good.get(component)
                self._degraded[component] = failure
            if stale is None:
                raise
            self.metrics.counter(
                "repro_serve_stale_total",
                "Responses served from the last-good body after a "
                "rebuild failure.", component=component).inc()
            logger.warning("serving stale %s after rebuild failure (%s)",
                           component, failure)
            stale_etag, stale_body = stale
            return _Response(200, stale_etag, stale_body,
                             extra_headers=(_STALE_WARNING,))
        with self._cache_lock:
            self._last_good[component] = (etag, body)
            self._degraded.pop(component, None)
        return _Response(200, etag, body)

    def _respond_table(self, path: str,
                       if_none_match: str | None) -> _Response:
        suffix = path.removeprefix("/tables/").rstrip("/")
        try:
            table_id = int(suffix)
        except ValueError:
            return _error(404, f"bad table id {suffix!r}")
        if not 1 <= table_id <= 11:
            return _error(404, f"unknown table {table_id} (expected 1-11)")
        etag = self.study.etag(f"table:{table_id}")
        if _etag_matches(etag.strip('"'), _strip_quotes(if_none_match)):
            return _Response(304, etag, b"")
        return self._build_fresh(
            f"table:{table_id}", etag,
            lambda: canonical_bytes(self.study.table(table_id).to_payload()))

    def _respond_influence(self, query: dict[str, list[str]],
                           if_none_match: str | None) -> _Response:
        category = _single(query, "category")
        source = _single(query, "source")
        destination = _single(query, "destination")
        view = _single(query, "view") or "batch"
        if category is not None and category not in (
                "alternative", "mainstream"):
            return _error(400, f"unknown category {category!r}")
        ecosystem = getattr(self.study, "ecosystem", None)
        known = (ecosystem.processes if ecosystem is not None
                 else HAWKES_PROCESSES)
        for process in (source, destination):
            if process is not None and process not in known:
                return _error(400, f"unknown process {process!r}")
        if view == "live":
            key = self.study.store.get_ref(LIVE_INFLUENCE_REF)
            if key is None:
                return _error(404, "no live influence result published")
            load: Callable[[], dict] = lambda: self.study.store.get(key)
        elif view == "batch":
            key = self.study.stage_key("fits")
            load = lambda: influence_payload(self.study.influence())
        else:
            return _error(400, f"unknown view {view!r}")
        etag = f'"{key}:{view}:{category}:{source}:{destination}"'
        if _etag_matches(etag.strip('"'), _strip_quotes(if_none_match)):
            return _Response(304, etag, b"")

        def build() -> bytes:
            payload = load()
            if payload is None:
                raise LookupError("published live artifact vanished")
            filtered = filter_influence(
                dict(payload), category=category, source=source,
                destination=destination)
            filtered["view"] = view  # present in filtered and full bodies
            return canonical_bytes(filtered)

        component = f"influence:{view}:{category}:{source}:{destination}"
        try:
            return self._build_fresh(component, etag, build)
        except LookupError as exc:
            return _error(404, str(exc))

    def _body(self, etag: str, build: Callable[[], bytes]) -> bytes:
        with self._cache_lock:
            cached = self._body_cache.get(etag)
            if cached is not None:
                self._body_cache.move_to_end(etag)
                return cached
        body = build()
        with self._cache_lock:
            self._body_cache.setdefault(etag, body)
            self._body_cache.move_to_end(etag)
            while len(self._body_cache) > self._body_cache_max:
                self._body_cache.popitem(last=False)
        return body


def _single(query: dict[str, list[str]], name: str) -> str | None:
    values = query.get(name)
    return values[-1] if values else None


def _strip_quotes(header: str | None) -> str | None:
    if header is None:
        return None
    return header.replace('"', "")


def _package_version() -> str:
    from .. import __version__
    return __version__


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"  # keep-alive; every reply is length-framed
    # One flush per response: headers+body leave in a single segment,
    # and no Nagle wait on the body write (40 ms/req otherwise).
    wbufsize = -1
    disable_nagle_algorithm = True

    def _handle(self, send_body: bool) -> None:
        split = urlsplit(self.path)
        service: StudyService = self.server.service  # type: ignore[attr-defined]
        service._request_started()
        try:
            try:
                status, etag, body, content_type, extra = service.respond(
                    split.path, parse_qs(split.query),
                    self.headers.get("If-None-Match"))
            except Exception as exc:  # never kill the worker thread
                status, etag, body, content_type, extra = _error(
                    500, f"{type(exc).__name__}: {exc}")
            self.send_response(status)
            if etag:
                self.send_header("ETag", etag)
                self.send_header("Cache-Control", "no-cache")
            for header, value in extra:
                self.send_header(header, value)
            if status != 304:
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if send_body and status != 304 and body:
                self.wfile.write(body)
        finally:
            if service._request_finished():
                # Draining: make keep-alive clients drop the socket so
                # the connection threads exit promptly.
                self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle(send_body=True)

    def do_HEAD(self) -> None:  # noqa: N802
        self._handle(send_body=False)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Route through stdlib logging instead of stderr: silent under
        # the default WARNING level, visible with ``repro -v serve``.
        logger.info("%s - %s", self.address_string(), format % args)


def serve(study: Study, host: str = "127.0.0.1", port: int = 8731,
          registry=None) -> StudyService:
    """Create a service bound to ``host:port`` (``port=0`` → ephemeral)."""
    return StudyService(study, host=host, port=port, registry=registry)
