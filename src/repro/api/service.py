"""HTTP query service over a :class:`~repro.api.study.Study` session.

A stdlib ``ThreadingHTTPServer`` exposing the reproduction's products
as JSON::

    GET /healthz                         liveness + version
    GET /experiments                     the paper-experiment index
    GET /tables/<1-11>                   one paper table
    GET /influence                       Hawkes means / percentages
        ?category=alternative|mainstream
        ?source=<process>&destination=<process>   (matrix-cell filters)
        ?view=live                       latest live-engine refit
    GET /stages                          stage -> key map + store stats
    GET /metrics                         Prometheus text (?format=json)

Every cacheable response carries an ``ETag`` derived from the backing
artifact's content key (a pure hash — conditional requests never
compute anything), and ``If-None-Match`` hits return ``304`` with no
body.  Rendered response bytes are cached per ETag, so repeated warm
queries are dictionary lookups that never touch NumPy.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from ..config import HAWKES_PROCESSES
from ..obs import (
    CONTENT_TYPE_PROMETHEUS,
    DEFAULT_TIME_BUCKETS,
    get_registry,
    render_prometheus,
)
from .serialize import (
    CONTENT_TYPE_JSON,
    canonical_bytes,
    experiments_payload,
    filter_influence,
    influence_payload,
    payload_key,
)
from .study import Study

#: Ref name under which the live engine publishes its windowed refits.
LIVE_INFLUENCE_REF = "live/influence"

logger = logging.getLogger("repro.api.service")

#: Path heads the service routes; anything else is labelled "other" so
#: scanners can't mint unbounded metric label values.
_KNOWN_ROUTES = frozenset(
    {"healthz", "experiments", "stages", "tables", "influence", "metrics"})


def _route_label(path: str) -> str:
    head = path.strip("/").split("/", 1)[0]
    return f"/{head}" if head in _KNOWN_ROUTES else "other"


class _Response(tuple):
    """(status, etag or None, body bytes, content type) quadruple."""

    __slots__ = ()

    def __new__(cls, status: int, etag: str | None, body: bytes,
                content_type: str = CONTENT_TYPE_JSON):
        return super().__new__(cls, (status, etag, body, content_type))


def _error(status: int, message: str) -> _Response:
    return _Response(status, None, canonical_bytes({"error": message}))


def _etag_matches(etag: str, if_none_match: str | None) -> bool:
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    candidates = [c.strip().removeprefix("W/")
                  for c in if_none_match.split(",")]
    return etag in candidates


class StudyService:
    """The service: routing, ETag handling, and the response-byte cache."""

    def __init__(self, study: Study, host: str = "127.0.0.1",
                 port: int = 8731, registry=None) -> None:
        self.study = study
        self.metrics = registry if registry is not None else get_registry()
        self._stats_lock = threading.Lock()
        self._n_requests = 0
        self._n_not_modified = 0
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # type: ignore[attr-defined]
        #: Rendered bodies keyed by ETag, LRU-bounded: a live engine
        #: publishing refits mints a fresh ETag per refit x filter, so
        #: an unbounded cache would grow forever in a long-lived server.
        self._body_cache: OrderedDict[str, bytes] = OrderedDict()
        self._body_cache_max = 256
        self._cache_lock = threading.Lock()
        version = _package_version()
        self._experiments_body = canonical_bytes(experiments_payload())
        self._experiments_etag = f'"{payload_key(experiments_payload())}"'
        self._health_body = canonical_bytes(
            {"status": "ok", "version": version})

    # -- lifecycle ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()

    def close(self) -> None:
        self.httpd.server_close()

    # -- routing ------------------------------------------------------------

    def respond(self, path: str, query: dict[str, list[str]],
                if_none_match: str | None = None) -> _Response:
        """Pure request handling; the HTTP handler only does I/O."""
        start = perf_counter()
        response = self._route(path, query, if_none_match)
        status = response[0]
        route = _route_label(path)
        self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status.",
            route=route, status=str(status)).inc()
        self.metrics.histogram(
            "repro_http_request_seconds",
            "Request handling latency (routing through body render).",
            edges=DEFAULT_TIME_BUCKETS,
            route=route).observe(perf_counter() - start)
        with self._stats_lock:
            self._n_requests += 1
            if status == 304:
                self._n_not_modified += 1
        return response

    def _route(self, path: str, query: dict[str, list[str]],
               if_none_match: str | None = None) -> _Response:
        if path in ("/healthz", "/healthz/"):
            return _Response(200, None, self._health_body)
        if path in ("/experiments", "/experiments/"):
            if _etag_matches(self._experiments_etag.strip('"'),
                             _strip_quotes(if_none_match)):
                return _Response(304, self._experiments_etag, b"")
            return _Response(200, self._experiments_etag,
                             self._experiments_body)
        if path in ("/stages", "/stages/"):
            return _Response(200, None, canonical_bytes(
                {"stages": self.study.keys(),
                 "store": self.study.store.stats()}))
        if path in ("/metrics", "/metrics/"):
            return self._respond_metrics(query)
        if path.startswith("/tables/"):
            return self._respond_table(path, if_none_match)
        if path in ("/influence", "/influence/"):
            return self._respond_influence(query, if_none_match)
        return _error(404, f"no route for {path}")

    def _respond_metrics(self, query: dict[str, list[str]]) -> _Response:
        """The scrape endpoint: Prometheus text, or JSON on request.

        Derived gauges (cache hit ratio, 304 ratio) are refreshed here,
        once per scrape, instead of on every request.
        """
        fmt = _single(query, "format") or "prometheus"
        if fmt not in ("prometheus", "json"):
            return _error(400, f"unknown format {fmt!r}")
        registry = self.metrics
        registry.gauge(
            "repro_store_hit_ratio",
            "Artifact store hits over total gets, process lifetime.",
        ).set(self.study.store.stats()["hit_ratio"])
        with self._stats_lock:
            total, not_modified = self._n_requests, self._n_not_modified
        if total:
            registry.gauge(
                "repro_http_not_modified_ratio",
                "Fraction of requests answered 304 Not Modified.",
            ).set(not_modified / total)
        snapshot = registry.snapshot()
        if fmt == "json":
            return _Response(200, None, canonical_bytes(snapshot))
        return _Response(200, None,
                         render_prometheus(snapshot).encode("utf-8"),
                         CONTENT_TYPE_PROMETHEUS)

    def _respond_table(self, path: str,
                       if_none_match: str | None) -> _Response:
        suffix = path.removeprefix("/tables/").rstrip("/")
        try:
            table_id = int(suffix)
        except ValueError:
            return _error(404, f"bad table id {suffix!r}")
        if not 1 <= table_id <= 11:
            return _error(404, f"unknown table {table_id} (expected 1-11)")
        etag = self.study.etag(f"table:{table_id}")
        if _etag_matches(etag.strip('"'), _strip_quotes(if_none_match)):
            return _Response(304, etag, b"")
        body = self._body(etag, lambda: canonical_bytes(
            self.study.table(table_id).to_payload()))
        return _Response(200, etag, body)

    def _respond_influence(self, query: dict[str, list[str]],
                           if_none_match: str | None) -> _Response:
        category = _single(query, "category")
        source = _single(query, "source")
        destination = _single(query, "destination")
        view = _single(query, "view") or "batch"
        if category is not None and category not in (
                "alternative", "mainstream"):
            return _error(400, f"unknown category {category!r}")
        for process in (source, destination):
            if process is not None and process not in HAWKES_PROCESSES:
                return _error(400, f"unknown process {process!r}")
        if view == "live":
            key = self.study.store.get_ref(LIVE_INFLUENCE_REF)
            if key is None:
                return _error(404, "no live influence result published")
            load: Callable[[], dict] = lambda: self.study.store.get(key)
        elif view == "batch":
            key = self.study.stage_key("fits")
            load = lambda: influence_payload(self.study.influence())
        else:
            return _error(400, f"unknown view {view!r}")
        etag = f'"{key}:{view}:{category}:{source}:{destination}"'
        if _etag_matches(etag.strip('"'), _strip_quotes(if_none_match)):
            return _Response(304, etag, b"")

        def build() -> bytes:
            payload = load()
            if payload is None:
                raise LookupError("published live artifact vanished")
            filtered = filter_influence(
                dict(payload), category=category, source=source,
                destination=destination)
            filtered["view"] = view  # present in filtered and full bodies
            return canonical_bytes(filtered)

        try:
            body = self._body(etag, build)
        except LookupError as exc:
            return _error(404, str(exc))
        return _Response(200, etag, body)

    def _body(self, etag: str, build: Callable[[], bytes]) -> bytes:
        with self._cache_lock:
            cached = self._body_cache.get(etag)
            if cached is not None:
                self._body_cache.move_to_end(etag)
                return cached
        body = build()
        with self._cache_lock:
            self._body_cache.setdefault(etag, body)
            self._body_cache.move_to_end(etag)
            while len(self._body_cache) > self._body_cache_max:
                self._body_cache.popitem(last=False)
        return body


def _single(query: dict[str, list[str]], name: str) -> str | None:
    values = query.get(name)
    return values[-1] if values else None


def _strip_quotes(header: str | None) -> str | None:
    if header is None:
        return None
    return header.replace('"', "")


def _package_version() -> str:
    from .. import __version__
    return __version__


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"  # keep-alive; every reply is length-framed
    # One flush per response: headers+body leave in a single segment,
    # and no Nagle wait on the body write (40 ms/req otherwise).
    wbufsize = -1
    disable_nagle_algorithm = True

    def _handle(self, send_body: bool) -> None:
        split = urlsplit(self.path)
        service: StudyService = self.server.service  # type: ignore[attr-defined]
        try:
            status, etag, body, content_type = service.respond(
                split.path, parse_qs(split.query),
                self.headers.get("If-None-Match"))
        except Exception as exc:  # never kill the worker thread
            status, etag, body, content_type = _error(
                500, f"{type(exc).__name__}: {exc}")
        self.send_response(status)
        if etag:
            self.send_header("ETag", etag)
            self.send_header("Cache-Control", "no-cache")
        if status != 304:
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if send_body and status != 304 and body:
            self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle(send_body=True)

    def do_HEAD(self) -> None:  # noqa: N802
        self._handle(send_body=False)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Route through stdlib logging instead of stderr: silent under
        # the default WARNING level, visible with ``repro -v serve``.
        logger.info("%s - %s", self.address_string(), format % args)


def serve(study: Study, host: str = "127.0.0.1", port: int = 8731,
          registry=None) -> StudyService:
    """Create a service bound to ``host:port`` (``port=0`` → ephemeral)."""
    return StudyService(study, host=host, port=port, registry=registry)
