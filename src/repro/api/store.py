"""Content-addressed artifact storage for pipeline stage products.

Every stage artifact a :class:`~repro.api.study.Study` produces is
stored under a key derived from the *configuration that produced it*:
the SHA-256 of a canonical JSON fingerprint covering the stage name,
its parameters, and the keys of its upstream stages.  Two sessions (or
two processes) configured identically therefore agree on every key,
so a warm on-disk store turns recomputation into a single read.

The store itself is deliberately dumb: a key/value map with an
in-memory layer and an optional on-disk layer (``objects/<k>/<key>.pkl``
written atomically, so concurrent writers race benignly — both write
the same bytes for the same key).  A tiny ``refs`` namespace maps
stable names (e.g. ``live/influence``) to content keys, which is how
the live engine publishes its latest windowed refit for the HTTP
service to pick up.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
import pickle
import tempfile
import threading
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator
from urllib.parse import quote

import numpy as np

from ..obs import DEFAULT_TIME_BUCKETS, get_registry

logger = logging.getLogger("repro.api.store")

#: Bump to invalidate every stored artifact when stage semantics change.
SCHEMA_VERSION = 1

#: Sentinel distinguishing "stored None" from "absent".
MISSING = object()

#: On-disk object framing: magic + sha256 hex of the payload + newline,
#: then the pickled payload.  Loads verify the digest, so silent disk
#: corruption (bit rot, torn writes that survived rename) is detected
#: and quarantined instead of being unpickled into garbage.
OBJECT_MAGIC = b"repro-obj1\x00"


def _frame_object(data: bytes) -> bytes:
    sha = hashlib.sha256(data).hexdigest().encode("ascii")
    return OBJECT_MAGIC + sha + b"\n" + data


def frame_bytes(data: bytes) -> bytes:
    """Public alias of the store's sha256 object framing.

    Other subsystems (live checkpoints) reuse the same frame so every
    binary artifact on disk self-verifies the same way.
    """
    return _frame_object(data)


class CorruptObjectError(ValueError):
    """A stored object failed its integrity check."""


def _unframe_object(blob: bytes) -> bytes:
    """Verified payload of a framed object (legacy blobs pass through)."""
    if not blob.startswith(OBJECT_MAGIC):
        # Pre-framing cache file: no digest to verify against.
        return blob
    header_end = len(OBJECT_MAGIC) + 64
    if len(blob) <= header_end or blob[header_end:header_end + 1] != b"\n":
        raise CorruptObjectError("truncated object header")
    expected = blob[len(OBJECT_MAGIC):header_end]
    data = blob[header_end + 1:]
    actual = hashlib.sha256(data).hexdigest().encode("ascii")
    if actual != expected:
        raise CorruptObjectError(
            f"object digest mismatch (stored {expected.decode()!r}, "
            f"actual {actual.decode()!r})")
    return data


def unframe_bytes(blob: bytes) -> bytes:
    """Public alias of :func:`frame_bytes`'s verified inverse."""
    return _unframe_object(blob)


# ---------------------------------------------------------------------------
# Configuration fingerprinting
# ---------------------------------------------------------------------------

def fingerprint(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serializable structure.

    Handles the configuration vocabulary of this package — dataclasses
    (``WorldConfig``, ``HawkesConfig``, ``Interval``, ``GroundTruth``),
    enums, numpy arrays and scalars, seed sequences, and plain
    containers.  Unknown types raise ``TypeError`` rather than silently
    hashing an unstable representation.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly and never emits bare NaN/inf
        # into the JSON encoder.
        return {"__f__": repr(obj)}
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": obj.value}
    if isinstance(obj, np.ndarray):
        return {"__nd__": [list(obj.shape), str(obj.dtype),
                           fingerprint(obj.tolist())]}
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return fingerprint(obj.item())
    if isinstance(obj, np.random.SeedSequence):
        return {"__seed__": [fingerprint(obj.entropy),
                             list(obj.spawn_key),
                             obj.n_children_spawned]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dc__": type(obj).__name__,
                "fields": {f.name: fingerprint(getattr(obj, f.name))
                           for f in dataclasses.fields(obj)}}
    if isinstance(obj, (list, tuple)):
        return [fingerprint(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): fingerprint(value) for key, value in obj.items()}
    raise TypeError(f"cannot fingerprint {type(obj).__name__!r} "
                    "for artifact keying")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding of a fingerprinted structure."""
    return json.dumps(fingerprint(obj), sort_keys=True,
                      separators=(",", ":"))


def digest(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical fingerprint."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class ArtifactStore:
    """Keyed artifact cache: in-memory always, on-disk when rooted.

    ``root=None`` gives a process-local memory store (safe default);
    passing a directory persists artifacts across processes and
    sessions.  Values are pickled; keys are expected to be the content
    hashes :func:`digest` produces, so a key never maps to two
    different values.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._mem: dict[str, Any] = {}
        self._mem_refs: dict[str, str] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            (self.root / "refs").mkdir(parents=True, exist_ok=True)

    # -- objects ------------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def get(self, key: str, default: Any = None) -> Any:
        registry = get_registry()
        with self._lock:
            if key in self._mem:
                self.hits += 1
                registry.counter("repro_store_hits_total",
                                 "Artifact cache hits by layer.",
                                 layer="memory").inc()
                return self._mem[key]
        if self.root is not None:
            path = self._object_path(key)
            load_start = perf_counter()
            try:
                with path.open("rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = None
            if blob is not None:
                try:
                    data = _unframe_object(blob)
                    value = pickle.loads(data)
                except (CorruptObjectError, pickle.UnpicklingError,
                        EOFError, AttributeError, ImportError,
                        IndexError) as exc:
                    # A corrupt object is evicted into quarantine/, so
                    # the next put() rewrites a good copy and repeated
                    # gets don't re-read the damage; the caller sees a
                    # plain miss and recomputes transparently.
                    self._quarantine_object(key, path, exc)
                    blob = None
            if blob is not None:
                registry.histogram(
                    "repro_store_load_seconds",
                    "Wall time to read+unpickle one artifact from disk.",
                    edges=DEFAULT_TIME_BUCKETS,
                ).observe(perf_counter() - load_start)
                registry.counter("repro_store_bytes_read_total",
                                 "Bytes deserialized from the disk layer.",
                                 ).inc(len(data))
                registry.counter("repro_store_hits_total",
                                 "Artifact cache hits by layer.",
                                 layer="disk").inc()
                with self._lock:
                    self._mem[key] = value
                    self.hits += 1
                return value
        with self._lock:
            self.misses += 1
        registry.counter("repro_store_misses_total",
                         "Artifact cache misses (every layer cold).").inc()
        return default

    def contains(self, key: str) -> bool:
        with self._lock:
            if key in self._mem:
                return True
        return (self.root is not None
                and self._object_path(key).exists())

    def put(self, key: str, value: Any) -> str:
        with self._lock:
            self._mem[key] = value
        if self.root is not None:
            path = self._object_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            self._atomic_write(path, _frame_object(data))
            get_registry().counter(
                "repro_store_bytes_written_total",
                "Bytes serialized into the disk layer.").inc(len(data))
        return key

    def _quarantine_object(self, key: str, path: Path, exc: Exception,
                           ) -> None:
        """Evict a corrupt/unreadable object file out of the cache."""
        assert self.root is not None
        target = self.root / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:  # already evicted by a racing reader, or gone
            pass
        get_registry().counter(
            "repro_store_corrupt_total",
            "Stored objects that failed verification or unpickling "
            "and were quarantined.").inc()
        logger.warning("quarantined corrupt artifact %s (%s: %s); "
                       "it will be recomputed", key,
                       type(exc).__name__, exc)

    def stats(self) -> dict:
        """Cache effectiveness counters, cheap enough for every /stages.

        ``hits``/``misses`` count :meth:`get` outcomes over this store's
        lifetime (both layers); ``memory_objects`` is the resident
        in-memory layer size.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            memory_objects = len(self._mem)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / total) if total else 0.0,
            "memory_objects": memory_objects,
            "persistent": self.root is not None,
        }

    def keys(self) -> Iterator[str]:
        with self._lock:
            seen = set(self._mem)
        yield from seen
        if self.root is not None:
            for path in (self.root / "objects").glob("*/*.pkl"):
                key = path.stem
                if key not in seen:
                    yield key

    # -- refs ---------------------------------------------------------------

    def _ref_path(self, name: str) -> Path:
        assert self.root is not None
        return self.root / "refs" / quote(name, safe="")

    def set_ref(self, name: str, key: str) -> None:
        """Point the stable name ``name`` at content key ``key``."""
        with self._lock:
            self._mem_refs[name] = key
        if self.root is not None:
            self._atomic_write(self._ref_path(name), key.encode("ascii"))

    def get_ref(self, name: str) -> str | None:
        with self._lock:
            if name in self._mem_refs:
                return self._mem_refs[name]
        if self.root is not None:
            try:
                return self._ref_path(name).read_text("ascii").strip()
            except OSError:
                return None
        return None

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
