"""Core contribution: discrete-time Hawkes influence estimation.

``repro.core.hawkes`` implements the statistical machinery of Section 5
(model, simulation, Gibbs/EM inference) and ``repro.core.influence``
implements the corpus-level experiment: URL selection, per-URL fitting,
and the aggregations behind Table 11 and Figures 10-11.
"""

from .events import DiscreteEvents, bin_timestamps
from .hawkes import (
    DirichletLagBasis,
    HawkesParams,
    LogBinnedLagBasis,
    discrete_log_likelihood,
    expected_rate,
    fit_em,
    fit_gibbs,
    simulate_branching,
    simulate_stepwise,
)
from .influence import (
    InfluenceResult,
    UrlCascade,
    aggregate_weights,
    corpus_background_rates,
    fit_corpus,
    influence_percentages,
    select_urls,
    trim_gap_urls,
)

__all__ = [
    "DiscreteEvents",
    "bin_timestamps",
    "DirichletLagBasis",
    "HawkesParams",
    "LogBinnedLagBasis",
    "discrete_log_likelihood",
    "expected_rate",
    "fit_em",
    "fit_gibbs",
    "simulate_branching",
    "simulate_stepwise",
    "InfluenceResult",
    "UrlCascade",
    "aggregate_weights",
    "corpus_background_rates",
    "fit_corpus",
    "influence_percentages",
    "select_urls",
    "trim_gap_urls",
]
