"""Corpus-level influence estimation (Section 5.2-5.3).

Pipeline: select URLs with activity on Twitter, /pol/, and at least one
of the six subreddits; drop the shortest gap-overlapping URLs; fit a
K=8 Hawkes model per URL; aggregate the weight matrices into the
quantities reported in Table 11 and Figures 10-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache, partial
from typing import Callable, Iterable, Literal, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from ..config import (
    HAWKES_PROCESSES,
    HawkesConfig,
    SELECTED_SUBREDDITS,
)
from ..news.domains import NewsCategory
from ..obs import span
from ..parallel import (
    auto_chunk_size,
    iter_chunks,
    parallel_map,
    resolve_n_jobs,
    spawn_task_seeds,
)
from ..parallel.seeding import SeedLike
from ..timeutil import Interval, in_any_interval
from .events import DiscreteEvents, bin_timestamps
from .hawkes.basis import LagBasis, LogBinnedLagBasis
from .hawkes.batched import fit_em_batched
from .hawkes.inference import FitResult, Priors, fit_em, fit_gibbs

FitMethod = Literal["gibbs", "em"]
Engine = Literal["per-url", "batched"]

#: Cascades packed into one batched EM fit, at most.  Bounds the flat
#: candidate arrays (memory scales with total events in the batch, not
#: with the corpus) while keeping per-iteration dispatch cost amortized
#: over enough cascades to matter.
MAX_BATCH_CASCADES = 1024


@dataclass(frozen=True)
class UrlCascade:
    """All observed posts of one URL across the modeled communities.

    ``events`` is a sequence of ``(timestamp, process_name)`` pairs; the
    process names must come from :data:`~repro.config.HAWKES_PROCESSES`.
    """

    url: str
    category: NewsCategory
    events: tuple[tuple[float, str], ...]

    @property
    def first_time(self) -> float:
        return min(t for t, _ in self.events)

    @property
    def last_time(self) -> float:
        return max(t for t, _ in self.events)

    @property
    def duration(self) -> float:
        return self.last_time - self.first_time

    def processes_present(self) -> frozenset[str]:
        return frozenset(name for _, name in self.events)

    def overlaps_gaps(self, gaps: Sequence[Interval]) -> bool:
        """True if any event of this cascade falls on a gap day."""
        return any(in_any_interval(t, gaps) for t, _ in self.events)


@dataclass(frozen=True)
class UrlFit:
    """Per-URL fit output kept for aggregation."""

    url: str
    category: NewsCategory
    background: np.ndarray        # (K,) events per bin
    weights: np.ndarray           # (K, K)
    event_counts: np.ndarray      # (K,) observed events per process
    n_bins: int
    log_likelihood: float
    #: Posterior W draws, (n_samples, K, K); None unless the corpus fit
    #: was asked to keep them (they dominate the result's footprint).
    weight_samples: np.ndarray | None = None


@dataclass
class InfluenceResult:
    """Everything Section 5 reports, in one bundle."""

    processes: tuple[str, ...]
    fits: list[UrlFit]

    def of_category(self, category: NewsCategory) -> list[UrlFit]:
        return [f for f in self.fits if f.category == category]

    def weight_stack(self, category: NewsCategory) -> np.ndarray:
        """(n_urls, K, K) stack of weight matrices for one category."""
        fits = self.of_category(category)
        if not fits:
            k = len(self.processes)
            return np.empty((0, k, k))
        return np.stack([f.weights for f in fits])


# ---------------------------------------------------------------------------
# URL selection and gap handling
# ---------------------------------------------------------------------------

def select_urls(cascades: Iterable[UrlCascade],
                processes: Sequence[str] = HAWKES_PROCESSES,
                subreddits: Sequence[str] = SELECTED_SUBREDDITS,
                require_all: Sequence[str] | None = None,
                require_any: Sequence[str] | None = None,
                ) -> list[UrlCascade]:
    """Keep URLs satisfying the corpus selection rule.

    The defaults are the Section 5.2 rule — >= 1 event on Twitter,
    /pol/, and any of the six subreddits; a scenario ecosystem may
    supply its own ``require_all`` (every listed process must appear)
    and ``require_any`` (at least one must appear; an empty sequence
    disables the clause).  Events on processes outside ``processes``
    are dropped from the retained cascades.
    """
    allowed = set(processes)
    if require_all is None:
        require_all = ("Twitter", "/pol/")
    if require_any is None:
        require_any = tuple(subreddits)
    any_set = set(require_any)
    kept: list[UrlCascade] = []
    for cascade in cascades:
        events = tuple((t, name) for t, name in cascade.events
                       if name in allowed)
        present = {name for _, name in events}
        if (all(name in present for name in require_all)
                and (not any_set or present & any_set)):
            kept.append(UrlCascade(cascade.url, cascade.category, events))
    return kept


def trim_gap_urls(cascades: Sequence[UrlCascade], gaps: Sequence[Interval],
                  fraction: float = 0.10) -> list[UrlCascade]:
    """Drop the ``fraction`` shortest-duration URLs among gap-overlapping ones.

    Section 5.2: missing Twitter days matter more for short-lived URLs, so
    the paper removes the 10% of gap-overlapping URLs with the shortest
    total duration.
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be within [0, 1]")
    overlapping = [c for c in cascades if c.overlaps_gaps(gaps)]
    n_drop = int(round(len(overlapping) * fraction))
    if not n_drop:
        return list(cascades)
    by_duration = sorted(overlapping, key=lambda c: c.duration)
    dropped = {id(c) for c in by_duration[:n_drop]}
    return [c for c in cascades if id(c) not in dropped]


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------

def _build_cascade_events(cascade: UrlCascade, processes: tuple[str, ...],
                          delta_t: float) -> DiscreteEvents:
    index = {name: i for i, name in enumerate(processes)}
    timestamps = [t for t, _ in cascade.events]
    procs = [index[name] for _, name in cascade.events]
    return bin_timestamps(timestamps, procs, n_processes=len(processes),
                          delta_t=delta_t)


_cascade_events_memo = lru_cache(maxsize=128)(_build_cascade_events)


def cascade_to_events(cascade: UrlCascade,
                      processes: Sequence[str] = HAWKES_PROCESSES,
                      delta_t: float = 60.0,
                      memoize: bool = False) -> DiscreteEvents:
    """Bin a cascade into the per-URL count matrix of Section 5.2.

    With ``memoize=True`` the result is cached by cascade content
    (cascades are frozen): a window refit that sees the same URL again
    gets the same events object back, so the kernel structures cached
    on it (:mod:`repro.core.hawkes.kernels`) are reused instead of
    rebuilt.  Retention is bounded by the LRU (128 entries; windows
    larger than that cycle without reuse).  Batch corpus fits touch
    each URL once, so they default to the unmemoized path and retain
    nothing.
    """
    builder = _cascade_events_memo if memoize else _build_cascade_events
    return builder(cascade, tuple(processes), float(delta_t))


def _fit_one_url(task: tuple[UrlCascade, np.random.SeedSequence | None],
                 *, config: HawkesConfig, method: FitMethod,
                 processes: tuple[str, ...], basis: LagBasis,
                 priors: Priors, keep_samples: bool,
                 memoize_events: bool) -> UrlFit:
    """Fit a single cascade; module-level so it crosses process lines."""
    cascade, seed = task
    events = cascade_to_events(cascade, processes, config.delta_t,
                               memoize=memoize_events)
    if method == "gibbs":
        result: FitResult = fit_gibbs(
            events, config.max_lag_bins, basis=basis, priors=priors,
            n_iterations=config.gibbs_iterations,
            burn_in=config.gibbs_burn_in, rng=np.random.default_rng(seed),
            keep_samples=keep_samples)
    else:
        result = fit_em(events, config.max_lag_bins, basis=basis,
                        priors=priors)
    return UrlFit(
        url=cascade.url,
        category=cascade.category,
        background=result.params.background,
        weights=result.params.weights,
        event_counts=events.events_per_process(),
        n_bins=events.n_bins,
        log_likelihood=result.log_likelihood,
        weight_samples=(result.weight_samples
                        if keep_samples and method == "gibbs" else None),
    )


def _fit_batch(chunk: Sequence[UrlCascade], *, config: HawkesConfig,
               processes: tuple[str, ...], basis: LagBasis,
               priors: Priors, memoize_events: bool) -> list[UrlFit]:
    """Fit one packed batch of cascades; module-level for pickling."""
    events_list = [cascade_to_events(c, processes, config.delta_t,
                                     memoize=memoize_events)
                   for c in chunk]
    batch = fit_em_batched(events_list, config.max_lag_bins, basis=basis,
                           priors=priors)
    return [
        UrlFit(
            url=cascade.url,
            category=cascade.category,
            background=batch.background[i].copy(),
            weights=batch.weights[i].copy(),
            event_counts=events.events_per_process(),
            n_bins=events.n_bins,
            log_likelihood=float(batch.log_likelihood[i]),
        )
        for i, (cascade, events) in enumerate(zip(chunk, events_list))
    ]


def fit_corpus(cascades: Sequence[UrlCascade],
               config: HawkesConfig | None = None,
               method: FitMethod = "gibbs",
               processes: Sequence[str] = HAWKES_PROCESSES,
               basis: LagBasis | None = None,
               rng: SeedLike = None,
               progress: Callable[[int, int], None] | None = None,
               n_jobs: int | None = 1,
               chunk_size: int | None = None,
               keep_samples: bool = False,
               memoize_events: bool = False,
               engine: Engine = "per-url",
               ) -> InfluenceResult:
    """Fit one Hawkes model per URL and collect the results.

    Per-URL fits are independent, so the corpus fans out over
    ``n_jobs`` worker processes (:func:`repro.parallel.parallel_map`);
    ``n_jobs=1`` keeps everything in-process and ``-1`` uses every
    core.  Each URL draws from its own random stream spawned from
    ``rng`` and keyed by corpus position (task index), which makes the
    result **bit-for-bit identical for every** ``n_jobs`` **and**
    ``chunk_size`` — the property the ``tests/test_parallel_*`` suites
    enforce.  ``rng`` accepts a ``Generator``, ``SeedSequence``,
    integer seed, or ``None`` (fresh entropy).  ``memoize_events=True``
    reuses binned event matrices (and their kernel caches) across calls
    that see the same cascades — the live refitter's sliding window —
    at the cost of LRU retention; one-shot corpus fits leave it off.

    ``engine`` selects how EM fits execute.  ``"per-url"`` (default,
    the golden reference) dispatches one fit per cascade.
    ``"batched"`` packs each chunk of cascades into one flat array
    program (:func:`~.hawkes.batched.fit_em_batched`) so thousands of
    small cascades fit as a handful of NumPy calls per EM sweep; it
    requires ``method="em"`` and matches the per-URL path to floating
    point tolerance (each cascade's result is bit-identical for every
    batch composition, but batched and per-URL reductions associate
    differently).
    """
    config = config or HawkesConfig()
    basis = basis or LogBinnedLagBasis(config.max_lag_bins)
    if method not in ("gibbs", "em"):
        raise ValueError(f"unknown fit method {method!r}")
    if engine not in ("per-url", "batched"):
        raise ValueError(f"unknown fit engine {engine!r}")
    if engine == "batched" and method != "em":
        raise ValueError(
            "engine='batched' requires method='em' (Gibbs batching is "
            "not implemented; see ROADMAP)")
    priors = Priors(
        background_shape=config.background_shape,
        background_rate=config.background_rate,
        weight_shape=config.weight_shape,
        weight_rate=config.weight_rate,
        impulse_concentration=config.impulse_concentration,
    )
    if engine == "batched":
        return _fit_corpus_batched(
            cascades, config=config, processes=tuple(processes),
            basis=basis, priors=priors, progress=progress, n_jobs=n_jobs,
            chunk_size=chunk_size, memoize_events=memoize_events)
    if method == "gibbs":
        seeds: Sequence[np.random.SeedSequence | None] = spawn_task_seeds(
            rng, len(cascades))
    else:  # EM is deterministic; don't advance the caller's seed state
        seeds = [None] * len(cascades)
    fit_one = partial(
        _fit_one_url, config=config, method=method,
        processes=tuple(processes), basis=basis, priors=priors,
        keep_samples=keep_samples, memoize_events=memoize_events)
    with span("fit_corpus", urls=len(cascades), method=method,
              engine="per-url", n_jobs=n_jobs):
        fits = parallel_map(fit_one, zip(cascades, seeds), n_jobs=n_jobs,
                            chunk_size=chunk_size, progress=progress)
    return InfluenceResult(processes=tuple(processes), fits=fits)


def _fit_corpus_batched(cascades: Sequence[UrlCascade], *,
                        config: HawkesConfig, processes: tuple[str, ...],
                        basis: LagBasis, priors: Priors,
                        progress: Callable[[int, int], None] | None,
                        n_jobs: int | None, chunk_size: int | None,
                        memoize_events: bool) -> InfluenceResult:
    """Batched-engine corpus fit: each parallel task is one packed batch.

    The corpus is split into contiguous batches of at most
    :data:`MAX_BATCH_CASCADES` cascades; ``parallel_map`` then fans the
    *batches* out over workers, so each worker runs one array program
    per batch instead of N tiny per-URL fits.  Cascades never interact
    inside a batch, so the per-URL results are bit-identical for every
    batch size and worker count.
    """
    n_urls = len(cascades)
    workers = resolve_n_jobs(n_jobs)
    if chunk_size is None:
        chunk_size = (auto_chunk_size(n_urls, workers)
                      if workers > 1 else n_urls)
    batch_size = max(1, min(chunk_size, MAX_BATCH_CASCADES))
    batches = [cascades[start:stop]
               for start, stop in iter_chunks(n_urls, batch_size)]
    fit_batch = partial(
        _fit_batch, config=config, processes=processes, basis=basis,
        priors=priors, memoize_events=memoize_events)
    batch_progress = None
    if progress is not None:
        def batch_progress(done: int, total: int) -> None:
            progress(min(done * batch_size, n_urls), n_urls)
    with span("fit_corpus", urls=n_urls, method="em", engine="batched",
              n_jobs=n_jobs):
        nested = parallel_map(fit_batch, batches, n_jobs=n_jobs,
                              chunk_size=1, progress=batch_progress)
    fits = [fit for batch in nested for fit in batch]
    return InfluenceResult(processes=processes, fits=fits)


# ---------------------------------------------------------------------------
# Aggregation (Table 11, Figures 10 and 11)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WeightAggregate:
    """Figure 10: mean weights per category plus per-cell significance."""

    processes: tuple[str, ...]
    mean_alternative: np.ndarray   # (K, K)
    mean_mainstream: np.ndarray    # (K, K)
    percent_change: np.ndarray     # (K, K) alt over main, percent
    ks_pvalues: np.ndarray         # (K, K)

    def significance_stars(self) -> np.ndarray:
        """'**' for p < 0.01, '*' for p < 0.05, '' otherwise."""
        stars = np.full(self.ks_pvalues.shape, "", dtype=object)
        stars[self.ks_pvalues < 0.05] = "*"
        stars[self.ks_pvalues < 0.01] = "**"
        return stars


def aggregate_weights(result: InfluenceResult) -> WeightAggregate:
    """Mean W per category, percent difference, and KS significance."""
    alt = result.weight_stack(NewsCategory.ALTERNATIVE)
    main = result.weight_stack(NewsCategory.MAINSTREAM)
    if not len(alt) or not len(main):
        raise ValueError("need fits for both categories to aggregate")
    mean_alt = alt.mean(axis=0)
    mean_main = main.mean(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        pct = 100.0 * (mean_alt - mean_main) / mean_main
    # A zero mainstream mean cell makes the ratio +/-Inf (or NaN for
    # 0/0); mask to NaN so downstream consumers (report rendering, the
    # JSON payload) see one well-defined "undefined" marker instead of
    # formatting artifacts like "+inf%".
    pct[~np.isfinite(pct)] = np.nan
    k = len(result.processes)
    pvalues = np.ones((k, k))
    for i in range(k):
        for j in range(k):
            stat = _scipy_stats.ks_2samp(alt[:, i, j], main[:, i, j])
            pvalues[i, j] = stat.pvalue
    return WeightAggregate(
        processes=result.processes,
        mean_alternative=mean_alt,
        mean_mainstream=mean_main,
        percent_change=pct,
        ks_pvalues=pvalues,
    )


def influence_percentages(result: InfluenceResult,
                          category: NewsCategory) -> np.ndarray:
    """Figure 11 estimator.

    ``Pct[A, B] = sum_u W_u[A, B] * N_u[A] / sum_u N_u[B]``, the expected
    share of events on destination ``B`` caused by source ``A``.
    Returned as percentages.
    """
    fits = result.of_category(category)
    k = len(result.processes)
    caused = np.zeros((k, k))
    destination_events = np.zeros(k)
    for fit in fits:
        caused += fit.weights * fit.event_counts[:, None]
        destination_events += fit.event_counts
    with np.errstate(divide="ignore", invalid="ignore"):
        pct = 100.0 * caused / destination_events[None, :]
    pct[:, destination_events == 0] = 0.0
    return pct


@dataclass(frozen=True)
class CorpusSummary:
    """Table 11: URLs, events, and mean background rates per process."""

    processes: tuple[str, ...]
    urls: dict[NewsCategory, np.ndarray]         # (K,) URLs with >=1 event
    events: dict[NewsCategory, np.ndarray]       # (K,) total events
    mean_background: dict[NewsCategory, np.ndarray]  # (K,) mean lambda0

    def totals(self, field_name: str) -> np.ndarray:
        data = getattr(self, field_name)
        return sum(data.values())


def corpus_background_rates(result: InfluenceResult) -> CorpusSummary:
    """Compute Table 11 from the per-URL fits."""
    k = len(result.processes)
    urls: dict[NewsCategory, np.ndarray] = {}
    events: dict[NewsCategory, np.ndarray] = {}
    backgrounds: dict[NewsCategory, np.ndarray] = {}
    for category in NewsCategory:
        fits = result.of_category(category)
        url_counts = np.zeros(k, dtype=np.int64)
        event_counts = np.zeros(k, dtype=np.int64)
        bg_sum = np.zeros(k)
        bg_n = np.zeros(k, dtype=np.int64)
        for fit in fits:
            present = fit.event_counts > 0
            url_counts += present.astype(np.int64)
            event_counts += fit.event_counts
            # Mean lambda0 over URLs where the process actually posted
            # (same population as the `urls` column); averaging over
            # every fit drags the mean toward the prior for processes
            # absent from most URLs.
            bg_sum += np.where(present, fit.background, 0.0)
            bg_n += present.astype(np.int64)
        urls[category] = url_counts
        events[category] = event_counts
        with np.errstate(divide="ignore", invalid="ignore"):
            mean_bg = np.where(bg_n > 0, bg_sum / np.maximum(bg_n, 1), 0.0)
        backgrounds[category] = mean_bg
    return CorpusSummary(
        processes=result.processes,
        urls=urls,
        events=events,
        mean_background=backgrounds,
    )
