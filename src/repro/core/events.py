"""Sparse discrete-time event sequences.

Section 5.2 builds, for each URL, a matrix ``s`` of event counts per
minute per process.  Those matrices are overwhelmingly sparse (a URL
spanning months has hundreds of thousands of minute bins but only tens
of events), so we store only the occupied ``(bin, process, count)``
triples, sorted by bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class DiscreteEvents:
    """Sparse event-count matrix ``s in N^{T x K}``.

    Attributes
    ----------
    bins:
        Sorted ``int64`` array of occupied time-bin indices (may repeat
        when several processes have events in the same bin).
    processes:
        Process index of each entry, aligned with ``bins``.
    counts:
        Event count of each entry (all ``>= 1``).
    n_bins:
        Total number of time bins ``T``.
    n_processes:
        Number of point processes ``K``.
    """

    bins: np.ndarray
    processes: np.ndarray
    counts: np.ndarray
    n_bins: int
    n_processes: int

    def __post_init__(self) -> None:
        if not (len(self.bins) == len(self.processes) == len(self.counts)):
            raise ValueError("bins/processes/counts must be equal length")
        if len(self.bins) and np.any(np.diff(self.bins) < 0):
            raise ValueError("bins must be sorted ascending")
        if len(self.counts) and self.counts.min() < 1:
            raise ValueError("counts must be >= 1")
        if len(self.bins):
            if self.bins.min() < 0 or self.bins.max() >= self.n_bins:
                raise ValueError("bin index out of range")
            if self.processes.min() < 0 or self.processes.max() >= self.n_processes:
                raise ValueError("process index out of range")

    def __getstate__(self) -> dict:
        # Derived kernel caches (see repro.core.hawkes.kernels) can dwarf
        # the events themselves; rebuildable, so never serialized.
        state = self.__dict__.copy()
        state.pop("_hawkes_kernel_cache", None)
        return state

    def __len__(self) -> int:
        return len(self.bins)

    @property
    def total_events(self) -> int:
        return int(self.counts.sum())

    def events_per_process(self) -> np.ndarray:
        """Total event count per process, shape ``(K,)``."""
        totals = np.zeros(self.n_processes, dtype=np.int64)
        np.add.at(totals, self.processes, self.counts)
        return totals

    def to_dense(self) -> np.ndarray:
        """Expand to a dense ``(T, K)`` count matrix (small inputs only)."""
        dense = np.zeros((self.n_bins, self.n_processes), dtype=np.int64)
        np.add.at(dense, (self.bins, self.processes), self.counts)
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "DiscreteEvents":
        """Build from a dense ``(T, K)`` count matrix."""
        dense = np.asarray(dense)
        rows, cols = np.nonzero(dense)
        order = np.argsort(rows, kind="stable")
        rows, cols = rows[order], cols[order]
        return cls(
            bins=rows.astype(np.int64),
            processes=cols.astype(np.int64),
            counts=dense[rows, cols].astype(np.int64),
            n_bins=dense.shape[0],
            n_processes=dense.shape[1],
        )

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]], n_bins: int,
                   n_processes: int) -> "DiscreteEvents":
        """Build from an iterable of ``(bin, process)`` single events."""
        tally: dict[tuple[int, int], int] = {}
        for t, k in pairs:
            tally[(int(t), int(k))] = tally.get((int(t), int(k)), 0) + 1
        ordered = sorted(tally)
        bins = np.array([t for t, _ in ordered], dtype=np.int64)
        procs = np.array([k for _, k in ordered], dtype=np.int64)
        counts = np.array([tally[key] for key in ordered], dtype=np.int64)
        return cls(bins=bins, processes=procs, counts=counts,
                   n_bins=n_bins, n_processes=n_processes)


def bin_timestamps(timestamps: Sequence[float], process_ids: Sequence[int],
                   n_processes: int, delta_t: float = 60.0,
                   origin: float | None = None) -> DiscreteEvents:
    """Bin raw ``(timestamp, process)`` events into :class:`DiscreteEvents`.

    Following Section 5.2, the origin defaults to the first event and the
    matrix extends to the bin of the last event (``T`` differs per URL).
    """
    if len(timestamps) != len(process_ids):
        raise ValueError("timestamps and process_ids must be equal length")
    if not len(timestamps):
        return DiscreteEvents(
            bins=np.empty(0, dtype=np.int64),
            processes=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            n_bins=1, n_processes=n_processes)
    ts = np.asarray(timestamps, dtype=np.float64)
    if origin is None:
        origin = float(ts.min())
    rel = np.floor((ts - origin) / float(delta_t)).astype(np.int64)
    if rel.min() < 0:
        raise ValueError("timestamp precedes origin")
    n_bins = int(rel.max()) + 1
    pairs = zip(rel.tolist(), (int(p) for p in process_ids))
    return DiscreteEvents.from_pairs(pairs, n_bins=n_bins,
                                     n_processes=n_processes)
