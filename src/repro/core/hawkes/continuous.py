"""Continuous-time multivariate Hawkes with exponential kernels.

A baseline comparator for the paper's discrete-time model: the classic
parameterization

    lambda_k(t) = mu_k + sum_j sum_{t_i^j < t} W[j, k] * beta *
                  exp(-beta * (t - t_i^j))

where ``W[j, k]`` is again the expected number of children on ``k`` per
event on ``j`` (the kernel integrates to ``W``), and ``beta`` is a
shared decay rate.  Fitting is EM over latent parent attributions; the
discrete and continuous estimators should agree on ``W`` when the bin
width is small relative to ``1/beta`` (checked by the estimator
ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ContinuousHawkesParams:
    """Parameters ``(mu, W, beta)`` of the exponential-kernel model."""

    background: np.ndarray   # (K,) events per unit time
    weights: np.ndarray      # (K, K) branching matrix
    decay: float             # beta, 1/units of time

    def __post_init__(self) -> None:
        k = self.background.shape[0]
        if self.weights.shape != (k, k):
            raise ValueError(f"weights must be ({k}, {k})")
        if np.any(self.background < 0) or np.any(self.weights < 0):
            raise ValueError("rates and weights must be non-negative")
        if self.decay <= 0:
            raise ValueError("decay must be positive")

    @property
    def n_processes(self) -> int:
        return self.background.shape[0]

    def spectral_radius(self) -> float:
        return float(np.max(np.abs(np.linalg.eigvals(self.weights))))


@dataclass(frozen=True)
class EventList:
    """Continuous-time events: sorted times with process labels."""

    times: np.ndarray       # (N,) float, sorted ascending
    processes: np.ndarray   # (N,) int
    horizon: float          # observation window [0, horizon)
    n_processes: int

    def __post_init__(self) -> None:
        if len(self.times) != len(self.processes):
            raise ValueError("times and processes must align")
        if len(self.times) and np.any(np.diff(self.times) < 0):
            raise ValueError("times must be sorted")
        if len(self.times):
            if self.times.min() < 0 or self.times.max() >= self.horizon:
                raise ValueError("event outside [0, horizon)")

    def __len__(self) -> int:
        return len(self.times)

    def counts_per_process(self) -> np.ndarray:
        counts = np.zeros(self.n_processes, dtype=np.int64)
        np.add.at(counts, self.processes, 1)
        return counts

    @classmethod
    def from_pairs(cls, pairs, horizon: float,
                   n_processes: int) -> "EventList":
        ordered = sorted(pairs)
        times = np.array([t for t, _ in ordered], dtype=np.float64)
        procs = np.array([k for _, k in ordered], dtype=np.int64)
        return cls(times=times, processes=procs, horizon=float(horizon),
                   n_processes=n_processes)


def simulate_continuous(params: ContinuousHawkesParams, horizon: float,
                        rng: np.random.Generator | None = None,
                        max_events: int = 2_000_000) -> EventList:
    """Exact cluster-representation sampler over ``[0, horizon)``."""
    rng = rng or np.random.default_rng()
    k_procs = params.n_processes
    pending: list[tuple[float, int]] = []
    for k in range(k_procs):
        count = rng.poisson(params.background[k] * horizon)
        pending.extend((float(t), k)
                       for t in rng.uniform(0, horizon, size=count))
    accepted: list[tuple[float, int]] = []
    while pending:
        t, k = pending.pop()
        accepted.append((t, k))
        if len(accepted) > max_events:
            raise RuntimeError("event budget exceeded; check stability")
        for dst in range(k_procs):
            n_children = rng.poisson(params.weights[k, dst])
            for _ in range(n_children):
                child_t = t + rng.exponential(1.0 / params.decay)
                if child_t < horizon:
                    pending.append((float(child_t), dst))
    return EventList.from_pairs(accepted, horizon, k_procs)


def continuous_log_likelihood(params: ContinuousHawkesParams,
                              events: EventList) -> float:
    """Exact log-likelihood via the exponential-kernel recursion."""
    mu = params.background
    weights = params.weights
    beta = params.decay
    k_procs = params.n_processes
    # R[j, k]: summed kernel contribution of past j-events to process k,
    # maintained with exponential decay as we sweep events in order.
    decay_state = np.zeros((k_procs,))  # per source process j
    last_time = 0.0
    log_term = 0.0
    for t, proc in zip(events.times, events.processes):
        decay_state *= np.exp(-beta * (t - last_time))
        rate = mu[int(proc)] + float(
            weights[:, int(proc)] @ (beta * decay_state))
        if rate <= 0:
            return -np.inf
        log_term += np.log(rate)
        decay_state[int(proc)] += 1.0
        last_time = t
    # Compensator: mu*T plus each event's truncated kernel mass.
    compensator = float(mu.sum()) * events.horizon
    remaining = events.horizon - events.times
    kernel_mass = 1.0 - np.exp(-beta * remaining)
    for j in range(k_procs):
        mass_j = float(kernel_mass[events.processes == j].sum())
        compensator += float(weights[j, :].sum()) * mass_j
    return log_term - compensator


@dataclass(frozen=True)
class ContinuousFitResult:
    params: ContinuousHawkesParams
    log_likelihood: float
    n_iterations: int


def fit_continuous_em(events: EventList, decay: float | None = None,
                      max_iterations: int = 100, tol: float = 1e-6,
                      background_floor: float = 1e-10,
                      estimate_decay: bool = False,
                      ) -> ContinuousFitResult:
    """EM fit of ``(mu, W)`` (optionally ``beta``) by parent attribution.

    Each event is softly attributed to the background or to each earlier
    event within a numerically relevant window; conjugate-style M-steps
    update ``mu`` (background responsibility over time), ``W``
    (children per source event), and optionally ``beta`` (inverse mean
    attributed lag).
    """
    k_procs = events.n_processes
    n = len(events)
    beta = decay if decay is not None else 1.0 / 600.0
    mu = np.maximum(events.counts_per_process()
                    / max(events.horizon, 1e-9) * 0.5, background_floor)
    weights = np.full((k_procs, k_procs), 0.05)
    counts = events.counts_per_process().astype(np.float64)

    previous_ll = -np.inf
    iterations = 0
    for iteration in range(max_iterations):
        iterations = iteration + 1
        z_background = np.zeros(k_procs)
        z_weight = np.zeros((k_procs, k_procs))
        lag_sum = 0.0
        lag_weight = 0.0
        window = 20.0 / beta  # beyond this the kernel is negligible
        start = 0
        for i in range(n):
            t_i = events.times[i]
            dst = int(events.processes[i])
            while start < i and events.times[start] < t_i - window:
                start += 1
            lags = t_i - events.times[start:i]
            sources = events.processes[start:i]
            kernel = (weights[sources, dst] * beta
                      * np.exp(-beta * lags))
            total = mu[dst] + kernel.sum()
            if total <= 0:
                z_background[dst] += 1.0
                continue
            z_background[dst] += mu[dst] / total
            if len(kernel):
                resp = kernel / total
                np.add.at(z_weight, (sources, np.full(len(resp), dst)),
                          resp)
                lag_sum += float((resp * lags).sum())
                lag_weight += float(resp.sum())
        mu = np.maximum(z_background / max(events.horizon, 1e-9),
                        background_floor)
        exposure = np.maximum(counts, 1e-9)
        weights = z_weight / exposure[:, None]
        if estimate_decay and lag_sum > 0:
            beta = lag_weight / lag_sum
        params = ContinuousHawkesParams(background=mu, weights=weights,
                                        decay=beta)
        current_ll = continuous_log_likelihood(params, events)
        if abs(current_ll - previous_ll) < tol * (1 + abs(previous_ll)):
            previous_ll = current_ll
            break
        previous_ll = current_ll

    params = ContinuousHawkesParams(background=mu, weights=weights,
                                    decay=beta)
    return ContinuousFitResult(params=params, log_likelihood=previous_ll,
                               n_iterations=iterations)


def discrete_events_to_continuous(events, delta_t: float = 60.0,
                                  rng: np.random.Generator | None = None,
                                  ) -> EventList:
    """Convert binned events to continuous times (uniform within bins)."""
    rng = rng or np.random.default_rng()
    base = np.repeat(events.bins.astype(np.float64) * delta_t,
                     events.counts)
    procs = np.repeat(events.processes.astype(np.int64), events.counts)
    times = base + rng.uniform(0, delta_t, size=len(base))
    order = np.argsort(times, kind="stable")
    return EventList(times=times[order], processes=procs[order],
                     horizon=float(events.n_bins * delta_t),
                     n_processes=events.n_processes)
