"""Model parameters, rates, and likelihood for the discrete Hawkes process.

The rate of process ``k`` in bin ``t`` is

    lambda[t, k] = lambda0[k]
                 + sum_{k'} sum_{d=1}^{D} s[t-d, k'] * W[k', k] * G[k', k, d]

where ``s`` is the count matrix, ``W[k', k]`` the expected number of
child events on ``k`` per event on ``k'``, and ``G[k', k]`` a PMF over
lags ``1..D`` (Section 5.1).

Rate and likelihood evaluation run on the flat segment kernels of
:mod:`.kernels`; accumulation preserves the event-order floating-point
associativity of a reference loop, so values are bit-identical to a
naive per-event implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from ..events import DiscreteEvents
from . import kernels

_PMF_TOL = 1e-6


@dataclass(frozen=True)
class HawkesParams:
    """Parameters ``(lambda0, W, G)`` of a K-process discrete Hawkes model.

    Attributes
    ----------
    background:
        ``(K,)`` background rates per bin, ``lambda0 >= 0``.
    weights:
        ``(K, K)`` interaction weights; ``weights[i, j]`` is the expected
        number of events induced on process ``j`` by one event on
        process ``i``.
    impulse:
        ``(K, K, D)`` lag PMFs; ``impulse[i, j]`` sums to 1 over the lag
        axis (lag ``d`` bins corresponds to index ``d - 1``).
    """

    background: np.ndarray
    weights: np.ndarray
    impulse: np.ndarray

    def __post_init__(self) -> None:
        k = self.background.shape[0]
        if self.weights.shape != (k, k):
            raise ValueError(f"weights must be ({k}, {k})")
        if self.impulse.ndim != 3 or self.impulse.shape[:2] != (k, k):
            raise ValueError(f"impulse must be ({k}, {k}, D)")
        if np.any(self.background < 0) or np.any(self.weights < 0):
            raise ValueError("rates and weights must be non-negative")
        if np.any(self.impulse < -_PMF_TOL):
            raise ValueError("impulse PMFs must be non-negative")
        sums = self.impulse.sum(axis=2)
        if np.any(np.abs(sums - 1.0) > 1e-4):
            raise ValueError("impulse PMFs must sum to 1 over lags")

    @property
    def n_processes(self) -> int:
        return self.background.shape[0]

    @property
    def max_lag(self) -> int:
        return self.impulse.shape[2]

    def spectral_radius(self) -> float:
        """Spectral radius of ``W``; < 1 means the process is stable.

        In the branching view each event spawns ``W[i, :]`` children in
        expectation, so the cascade dies out iff the radius is below 1.
        """
        return float(np.max(np.abs(np.linalg.eigvals(self.weights))))

    def branching_kernel(self) -> np.ndarray:
        """``(K, K, D)`` expected child counts per lag: ``W[:, :, None] * G``."""
        return self.weights[:, :, None] * self.impulse


def expected_rate(params: HawkesParams, events: DiscreteEvents,
                  query_bins: np.ndarray | None = None) -> np.ndarray:
    """Rates ``lambda[t, k]`` at the requested bins.

    Returns an ``(n_query, K)`` array.  ``query_bins`` defaults to the
    occupied bins of ``events`` (deduplicated, sorted).  Computation is
    sparse in the events, so month-long URL matrices stay cheap; the
    default-grid gather structure is cached on ``events``.
    """
    if events.n_processes != params.n_processes:
        raise ValueError("event matrix and params disagree on K")
    if query_bins is None:
        structure = kernels.get_query_structure(events, params.max_lag)
        n_query = structure.n_queries
    else:
        query_bins = np.asarray(query_bins, dtype=np.int64)
        structure = None
        n_query = len(query_bins)
    rates = np.tile(params.background, (n_query, 1))
    if not len(events):
        return rates
    if structure is None:
        structure = kernels.QueryStructure(events, query_bins,
                                           params.max_lag)
    structure.add_rates(rates, params.branching_kernel())
    return rates


def rate_integral(params: HawkesParams, events: DiscreteEvents) -> np.ndarray:
    """``sum_t lambda[t, k]`` for each process, computed exactly.

    Background contributes ``lambda0 * T``; each event at bin ``t'`` on
    process ``k'`` contributes ``W[k', k] * cdf_G(min(D, T - 1 - t'))``,
    i.e. its kernel mass truncated at the end of the observation window.
    """
    total = params.background * events.n_bins
    if not len(events):
        return total
    cdf = np.cumsum(params.impulse, axis=2)  # (K, K, D)
    return kernels.truncated_kernel_mass(events, params.weights, cdf,
                                         params.max_lag, init=total)


def discrete_log_likelihood(params: HawkesParams,
                            events: DiscreteEvents) -> float:
    """Exact Poisson log-likelihood of ``events`` under ``params``.

    ``sum_{t,k} [ s log(lambda) - lambda - log(s!) ]``; bins with zero
    counts contribute only their ``-lambda`` term, captured by the exact
    rate integral.
    """
    integral = float(rate_integral(params, events).sum())
    if not len(events):
        return -integral
    rates = expected_rate(params, events)
    rows = np.searchsorted(kernels.unique_bins(events), events.bins)
    lams = rates[rows, events.processes]
    if np.any(lams <= 0):
        return -np.inf
    counts = events.counts.astype(np.float64)
    terms = counts * np.log(lams) - gammaln(counts + 1)
    log_term = float(np.cumsum(terms)[-1])
    return log_term - integral
