"""Discrete-time multivariate Hawkes processes (Section 5.1).

The model follows Linderman & Adams [20, 21] as used by the paper: ``K``
point processes with background rates ``lambda_0``, an interaction
weight matrix ``W`` (``W[i, j]`` is the expected number of child events
on process ``j`` caused by one event on process ``i``), and per-pair lag
probability mass functions ``G`` over lags ``1..D`` bins.

Submodules
----------
``model``       parameters, rate computation, log-likelihood
``basis``       lag-PMF parameterizations (full Dirichlet, log-binned)
``kernels``     flat segment-wise array kernels shared by all of the above
``simulation``  exact branching sampler and a stepwise cross-check sampler
``inference``   Gibbs sampler with conjugate updates, plus an EM fitter
``batched``     batched EM over packed corpora (one array program per batch)
"""

from .basis import DirichletLagBasis, LagBasis, LogBinnedLagBasis
from .batched import BatchedEMResult, PackedCascades, fit_em_batched
from .kernels import ParentStructure, get_parent_structure
from .model import HawkesParams, discrete_log_likelihood, expected_rate
from .simulation import simulate_branching, simulate_stepwise
from .inference import FitResult, fit_em, fit_gibbs

__all__ = [
    "BatchedEMResult",
    "PackedCascades",
    "fit_em_batched",
    "DirichletLagBasis",
    "LagBasis",
    "LogBinnedLagBasis",
    "ParentStructure",
    "get_parent_structure",
    "HawkesParams",
    "discrete_log_likelihood",
    "expected_rate",
    "simulate_branching",
    "simulate_stepwise",
    "FitResult",
    "fit_em",
    "fit_gibbs",
]
