"""Batched EM: fit a whole corpus chunk of cascades as one array program.

:func:`~repro.core.influence.fit_corpus` historically dispatched one
:func:`~.inference.fit_em` per URL.  PR 3 made each of those fits a
flat array program (:mod:`.kernels`), but with thousands of *tiny*
cascades the remaining cost is NumPy call dispatch — hundreds of
kernel launches per URL on arrays with tens of elements.  This module
removes the corpus loop itself: a batch of per-URL
:class:`~repro.core.events.DiscreteEvents` is packed into one flat
segmented layout with a leading cascade axis, and every EM phase —
candidate values, responsibilities, exposures, MAP updates, and the
log-likelihood — runs across the entire batch in single NumPy calls.

Packing
-------
Cascades are laid end to end on one shared global bin axis with a
``max_lag`` guard gap between consecutive cascades
(:class:`PackedCascades`).  The same two-``searchsorted`` candidate
enumeration as :class:`~.kernels.ParentStructure` then runs once over
the packed ``bins`` array, and the guard gap guarantees no candidate
parent ever crosses a cascade boundary: the nearest event of the
previous cascade is always more than ``max_lag`` bins away.  Per-pair
state gains a leading cascade axis — ``background (C, K)``, ``weights
(C, K, K)``, bucket PMFs ``(C, K, K, B)`` — and all scatters/gathers go
through precomputed raveled indices that include the cascade.

Equivalence contract
--------------------
Within one cascade, the E-step reproduces :func:`~.inference.fit_em`'s
floating-point evaluation order exactly (same ``count * weight * pmf``
products, same ``np.add.at``/``reduceat`` accumulation order).  The
exposure and likelihood reductions associate differently (bucket-level
closed forms replace per-lag cumsums over the expanded ``(K, K, D)``
PMF, which would not fit in memory with a cascade axis), so batched
results match the per-URL golden path to floating-point *tolerance*,
not bit for bit — pinned by ``tests/test_batched_equivalence.py``.
Cascades never interact, so a cascade's fitted parameters are
bit-identical for every batch composition, worker count, and chunk
size.

Convergence uses per-cascade freeze masks: the iteration a cascade's
relative log-likelihood delta drops below ``tol`` — exactly when
``fit_em`` would break — its parameters and likelihood freeze while
the rest of the batch keeps iterating.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np
from scipy.special import gammaln

from ...obs import DEFAULT_COUNT_BUCKETS, get_registry
from ..events import DiscreteEvents
from .basis import LagBasis, LogBinnedLagBasis
from .inference import FitResult, Priors
from .kernels import segment_ranges
from .model import HawkesParams

#: Parameter floor shared with the per-URL MAP updates.
_EPS = 1e-12

#: Below this working-set size, compaction's repacking overhead beats
#: its savings — small batches just finish with freeze masks.
_COMPACT_MIN_CASCADES = 32


class PackedCascades:
    """``C`` per-URL event matrices packed onto one global bin axis.

    Cascade ``c`` occupies global bins ``[bin_offsets[c],
    bin_offsets[c] + n_bins[c])``; consecutive cascades are separated
    by a ``max_lag``-bin guard gap so lag-windowed candidate searches
    never reach into a neighbour.  Entries stay sorted by global bin
    (cascade-major, bin-minor) and segment ``c`` of every per-entry
    array spans ``entry_offsets[c]:entry_offsets[c + 1]``.
    """

    def __init__(self, events_list: Sequence[DiscreteEvents],
                 max_lag: int) -> None:
        if not events_list:
            raise ValueError("need at least one cascade to pack")
        k = events_list[0].n_processes
        if any(ev.n_processes != k for ev in events_list):
            raise ValueError("all packed cascades must share n_processes")
        self.max_lag = int(max_lag)
        self.n_cascades = len(events_list)
        self.n_processes = k
        self.n_bins = np.array([ev.n_bins for ev in events_list],
                               dtype=np.int64)
        entry_counts = np.array([len(ev) for ev in events_list],
                                dtype=np.int64)
        self.entry_offsets = np.zeros(self.n_cascades + 1, dtype=np.int64)
        np.cumsum(entry_counts, out=self.entry_offsets[1:])
        # Guard gap: offset step T_c + max_lag puts the last bin of
        # cascade c at least max_lag + 1 bins before the first bin of
        # cascade c + 1, so a candidate window [t - max_lag, t) can
        # never span cascades.
        self.bin_offsets = np.zeros(self.n_cascades, dtype=np.int64)
        if self.n_cascades > 1:
            np.cumsum(self.n_bins[:-1] + self.max_lag,
                      out=self.bin_offsets[1:])
        self.cascade_of = np.repeat(
            np.arange(self.n_cascades, dtype=np.int64), entry_counts)
        self.bins = (np.concatenate(
            [ev.bins for ev in events_list]).astype(np.int64)
            + self.bin_offsets[self.cascade_of])
        self.processes = np.concatenate(
            [ev.processes for ev in events_list]).astype(np.int64)
        self.counts = np.concatenate(
            [ev.counts for ev in events_list]).astype(np.float64)

    def __len__(self) -> int:
        return len(self.bins)


class BatchedParentStructure:
    """Candidate-parent arrays for every entry of a packed batch.

    The batched analogue of :class:`~.kernels.ParentStructure`: one
    candidate enumeration over the packed global bins covers every
    cascade, and the precomputed gather indices target raveled
    ``(C, K, K)`` / ``(C, K, K, B)`` parameter arrays so per-sweep
    work is three flat gathers, two products, and sequential
    scatter-adds — for the whole batch at once.
    """

    def __init__(self, packed: PackedCascades, basis: LagBasis) -> None:
        self.packed = packed
        self.basis = basis
        bins = packed.bins
        lo = np.searchsorted(bins, bins - basis.max_lag, side="left")
        hi = np.searchsorted(bins, bins, side="left")
        flat_idx, sizes, offsets = segment_ranges(lo, hi)
        self.sizes = sizes
        self.offsets = offsets
        k = packed.n_processes
        self.flat_src = packed.processes[flat_idx]
        self.flat_lag = np.repeat(bins, sizes) - bins[flat_idx]
        self.flat_cnt = packed.counts[flat_idx]
        self.flat_bucket = basis.bucket_of[self.flat_lag - 1]
        self.flat_dst = np.repeat(packed.processes, sizes)
        self.flat_cascade = np.repeat(packed.cascade_of, sizes)
        self._pair = (self.flat_cascade * k + self.flat_src) * k \
            + self.flat_dst
        self._bucket_index = (self._pair * basis.n_buckets
                              + self.flat_bucket)
        self._bucket_size = basis.bucket_sizes[self.flat_bucket].astype(
            np.float64)
        #: Raveled (C, K) cell of each entry: cascade * K + process.
        self.entry_cell = packed.cascade_of * k + packed.processes
        # -- truncated-exposure precomputation (window-end effects) ------
        local_bins = packed.bins - packed.bin_offsets[packed.cascade_of]
        remaining = packed.n_bins[packed.cascade_of] - 1 - local_bins
        capped = np.minimum(remaining, basis.max_lag)
        valid = capped > 0
        self.v_cascade = packed.cascade_of[valid]
        self.v_src = packed.processes[valid]
        self.v_cnt = packed.counts[valid]
        cap = capped[valid]
        self.v_bucket = basis.bucket_of[cap - 1]
        lags_below = np.concatenate(
            [[0], np.cumsum(basis.bucket_sizes)])[self.v_bucket]
        # Fraction of the cap bucket's mass inside the truncation window.
        self.v_frac = ((cap - lags_below)
                       / basis.bucket_sizes[self.v_bucket])

    def candidate_values(self, weights_flat: np.ndarray,
                         buckets_flat: np.ndarray) -> np.ndarray:
        """``count * W[c, src, dst] * pmf[c, src, dst, lag - 1]`` for
        every candidate, as flat gathers; the per-lag PMF value is the
        bucket probability spread uniformly over the bucket's lags.
        """
        if not len(self._pair):
            return np.empty(0, dtype=np.float64)
        return (self.flat_cnt * weights_flat[self._pair]
                * (buckets_flat[self._bucket_index] / self._bucket_size))

    def segment_sums(self, flat_vals: np.ndarray) -> np.ndarray:
        """Per-entry candidate-mass totals, ``(n_entries,)``."""
        if not len(flat_vals):
            return np.zeros(len(self.packed))
        sums = np.add.reduceat(np.concatenate([flat_vals, [0.0]]),
                               self.offsets[:-1])
        sums[self.sizes == 0] = 0.0
        return sums

    def truncation_cdf_rows(self, buckets: np.ndarray) -> np.ndarray:
        """Lag-CDF rows ``cdf[c, src, :, cap - 1]`` per valid entry.

        ``(n_valid, K)``: full buckets below the cap bucket plus the
        covered fraction of the cap bucket — the bucket-level closed
        form of the per-lag cumsum the per-URL kernels use.
        """
        below = np.zeros_like(buckets)
        np.cumsum(buckets[..., :-1], axis=3, out=below[..., 1:])
        return (below[self.v_cascade, self.v_src, :, self.v_bucket]
                + self.v_frac[:, None]
                * buckets[self.v_cascade, self.v_src, :, self.v_bucket])

    def exposure(self, buckets: np.ndarray) -> np.ndarray:
        """Truncated exposure ``E[c, i, j]`` for the whole batch."""
        packed = self.packed
        out = np.zeros((packed.n_cascades, packed.n_processes,
                        packed.n_processes))
        if len(self.v_cascade):
            rows = self.truncation_cdf_rows(buckets)
            np.add.at(out, (self.v_cascade, self.v_src),
                      self.v_cnt[:, None] * rows)
        return out


@dataclass(frozen=True)
class BatchedEMResult:
    """Per-cascade MAP estimates of one batched EM fit.

    Parameters stay stacked (cascade-leading axes) so a corpus driver
    can slice rows without materializing ``C`` expanded ``(K, K, D)``
    impulse arrays; :meth:`fit_result` expands one cascade on demand
    for API parity with :func:`~.inference.fit_em`.
    """

    background: np.ndarray      # (C, K)
    weights: np.ndarray         # (C, K, K)
    bucket_pmf: np.ndarray      # (C, K, K, B)
    log_likelihood: np.ndarray  # (C,)
    n_iterations: np.ndarray    # (C,)
    basis: LagBasis

    def __len__(self) -> int:
        return len(self.log_likelihood)

    def fit_result(self, cascade: int) -> FitResult:
        """One cascade's fit as a :func:`~.inference.fit_em`-style result."""
        params = HawkesParams(
            background=self.background[cascade].copy(),
            weights=self.weights[cascade].copy(),
            impulse=self.basis.expand(self.bucket_pmf[cascade]))
        return FitResult(params=params,
                         log_likelihood=float(self.log_likelihood[cascade]),
                         n_iterations=int(self.n_iterations[cascade]))


def _record_batch_metrics(n_cascades: int, max_iterations: int,
                          total: float, phases: dict[str, float]) -> None:
    """Observe one completed batched fit (pure timing, RNG-free)."""
    registry = get_registry()
    registry.counter("repro_fit_batch_total",
                     "Completed batched EM corpus fits.", method="em").inc()
    registry.counter("repro_fit_total",
                     "Completed per-URL Hawkes fits.",
                     method="em-batched").inc(n_cascades)
    registry.histogram("repro_fit_batch_cascades",
                       "Cascades packed into one batched EM fit.",
                       edges=DEFAULT_COUNT_BUCKETS).observe(n_cascades)
    registry.histogram("repro_fit_batch_iterations",
                       "EM iterations until the whole batch converged.",
                       edges=DEFAULT_COUNT_BUCKETS).observe(max_iterations)
    registry.histogram("repro_fit_batch_seconds",
                       "Wall time of one batched EM fit.").observe(total)
    phase_help = "Kernel wall time per fit phase, summed over sweeps."
    for phase, seconds in phases.items():
        registry.histogram("repro_fit_phase_seconds", phase_help,
                           method="em-batched", phase=phase).observe(seconds)


def fit_em_batched(events_list: Sequence[DiscreteEvents], max_lag: int,
                   basis: LagBasis | None = None,
                   priors: Priors | None = None,
                   max_iterations: int = 200,
                   tol: float = 1e-6) -> BatchedEMResult:
    """Deterministic MAP EM over a batch of cascades, all phases batched.

    Semantically ``[fit_em(ev, max_lag, ...) for ev in events_list]``
    with one array program instead of ``C`` dispatch loops; see the
    module docstring for the (tolerance-level) equivalence contract.
    Each cascade iterates until its own relative log-likelihood delta
    drops below ``tol`` (then freezes) or ``max_iterations`` is hit.

    Converged cascades first freeze (``np.where`` masking), and once
    half the working set is frozen the batch is *compacted*: frozen
    results are flushed to the output arrays and the survivors are
    repacked into a smaller batch.  Cascades never interact, so
    compaction is invisible in the results (bit-identical to never
    compacting); it only stops long-tail cascades from dragging the
    already-converged majority through extra full-batch sweeps.
    """
    priors = priors or Priors()
    basis = basis or LogBinnedLagBasis(max_lag)
    if basis.max_lag != max_lag:
        raise ValueError("basis.max_lag must equal max_lag")
    fit_start = perf_counter()
    work = list(events_list)
    n_total = len(work)
    packed = PackedCascades(work, basis.max_lag)
    structure = BatchedParentStructure(packed, basis)
    n_casc = packed.n_cascades
    k_procs = packed.n_processes
    n_buckets = basis.n_buckets

    # -- initialization (mirrors inference._initial_state per cascade) ---
    totals_per = np.zeros((n_casc, k_procs))
    np.add.at(totals_per.reshape(-1), structure.entry_cell, packed.counts)
    background = np.maximum(
        np.full((n_casc, k_procs),
                priors.background_shape / priors.background_rate),
        0.5 * totals_per / np.maximum(packed.n_bins, 1)[:, None])
    weights = np.full((n_casc, k_procs, k_procs),
                      priors.weight_shape / priors.weight_rate)
    buckets = np.full((n_casc, k_procs, k_procs, n_buckets),
                      1.0 / n_buckets)

    counts = packed.counts
    entry_cell = structure.entry_cell
    cascade_of = packed.cascade_of
    bg_denominator = priors.background_rate + packed.n_bins[:, None]
    log_factorials = gammaln(counts + 1.0)

    # Output arrays at full corpus size; the working set shrinks via
    # compaction and ``orig`` maps working rows back to corpus rows.
    orig = np.arange(n_total)
    out_background = np.empty((n_total, k_procs))
    out_weights = np.empty((n_total, k_procs, k_procs))
    out_buckets = np.empty((n_total, k_procs, k_procs, n_buckets))
    out_ll = np.full(n_total, -np.inf)
    out_iterations = np.zeros(n_total, dtype=np.int64)

    active = np.ones(n_casc, dtype=bool)
    previous_ll = np.full(n_casc, -np.inf)
    final_ll = np.full(n_casc, -np.inf)
    n_iterations = np.zeros(n_casc, dtype=np.int64)
    attribution_s = updates_s = likelihood_s = 0.0
    iterations_run = 0
    for iteration in range(max_iterations):
        if not active.any():
            break
        iterations_run = iteration + 1
        phase_start = perf_counter()
        # -- E-step: responsibilities over the whole batch ----------------
        flat_vals = structure.candidate_values(weights.reshape(-1),
                                               buckets.reshape(-1))
        seg_sums = structure.segment_sums(flat_vals)
        entry_bg = background.reshape(-1)[entry_cell]
        totals = entry_bg + seg_sums
        safe = totals > 0
        denominator = np.where(safe, totals, 1.0)
        bg_resp = np.where(safe, counts * entry_bg / denominator, counts)
        z_background = np.zeros((n_casc, k_procs))
        np.add.at(z_background.reshape(-1), entry_cell, bg_resp)
        z_weight = np.zeros(n_casc * k_procs * k_procs)
        z_bucket = np.zeros(n_casc * k_procs * k_procs * n_buckets)
        if len(flat_vals):
            scale = np.where(safe, counts / denominator, 0.0)
            flat_resp = flat_vals * np.repeat(scale, structure.sizes)
            np.add.at(z_weight, structure._pair, flat_resp)
            np.add.at(z_bucket, structure._bucket_index, flat_resp)
        z_weight = z_weight.reshape(n_casc, k_procs, k_procs)
        z_bucket = z_bucket.reshape(n_casc, k_procs, k_procs, n_buckets)
        attribution_s += perf_counter() - phase_start
        # -- MAP M-step ----------------------------------------------------
        phase_start = perf_counter()
        new_background = np.maximum(
            (priors.background_shape - 1.0 + z_background)
            / bg_denominator, _EPS)
        exposure = structure.exposure(buckets)
        new_weights = np.maximum(
            (priors.weight_shape - 1.0 + z_weight)
            / (priors.weight_rate + exposure), 0.0)
        concentration = np.maximum(
            priors.impulse_concentration - 1.0 + z_bucket, _EPS)
        new_buckets = concentration / concentration.sum(axis=3,
                                                        keepdims=True)
        updates_s += perf_counter() - phase_start
        # -- log-likelihood of the updated parameters ----------------------
        phase_start = perf_counter()
        vals = structure.candidate_values(new_weights.reshape(-1),
                                          new_buckets.reshape(-1))
        rates = new_background.reshape(-1)[entry_cell] \
            + structure.segment_sums(vals)
        log_terms = np.zeros(n_casc)
        degenerate = np.zeros(n_casc, dtype=bool)
        if len(rates):
            positive = rates > 0
            terms = (counts * np.log(np.where(positive, rates, 1.0))
                     - log_factorials)
            np.add.at(log_terms, cascade_of, terms)
            if not positive.all():
                degenerate[cascade_of[~positive]] = True
        integral = (new_background * packed.n_bins[:, None]).sum(axis=1)
        if len(structure.v_cascade):
            cdf_rows = structure.truncation_cdf_rows(new_buckets)
            weight_rows = new_weights[structure.v_cascade,
                                      structure.v_src, :]
            np.add.at(integral, structure.v_cascade,
                      structure.v_cnt
                      * (cdf_rows * weight_rows).sum(axis=1))
        current_ll = log_terms - integral
        current_ll[degenerate] = -np.inf
        likelihood_s += perf_counter() - phase_start
        # -- adopt updates for active cascades; freeze the converged -------
        background = np.where(active[:, None], new_background, background)
        weights = np.where(active[:, None, None], new_weights, weights)
        buckets = np.where(active[:, None, None, None], new_buckets,
                           buckets)
        final_ll = np.where(active, current_ll, final_ll)
        n_iterations[active] = iteration + 1
        # previous_ll is -inf until a cascade's first sweep completes;
        # the delta is then NaN/Inf and the comparison is correctly
        # False, so silence the invalid-value warning NumPy raises for
        # the array form of the same scalar check fit_em runs.
        with np.errstate(invalid="ignore"):
            converged = (np.abs(current_ll - previous_ll)
                         < tol * (1.0 + np.abs(previous_ll)))
        previous_ll = np.where(active, current_ll, previous_ll)
        active &= ~converged
        # -- compaction: flush the frozen, repack the survivors ------------
        n_active = int(active.sum())
        if (0 < n_active <= n_casc // 2
                and n_casc >= _COMPACT_MIN_CASCADES):
            frozen = np.flatnonzero(~active)
            out_background[orig[frozen]] = background[frozen]
            out_weights[orig[frozen]] = weights[frozen]
            out_buckets[orig[frozen]] = buckets[frozen]
            out_ll[orig[frozen]] = final_ll[frozen]
            out_iterations[orig[frozen]] = n_iterations[frozen]
            keep = np.flatnonzero(active)
            work = [work[i] for i in keep]
            orig = orig[keep]
            background = np.ascontiguousarray(background[keep])
            weights = np.ascontiguousarray(weights[keep])
            buckets = np.ascontiguousarray(buckets[keep])
            previous_ll = previous_ll[keep]
            final_ll = final_ll[keep]
            n_iterations = n_iterations[keep]
            packed = PackedCascades(work, basis.max_lag)
            structure = BatchedParentStructure(packed, basis)
            n_casc = packed.n_cascades
            counts = packed.counts
            entry_cell = structure.entry_cell
            cascade_of = packed.cascade_of
            bg_denominator = (priors.background_rate
                              + packed.n_bins[:, None])
            log_factorials = gammaln(counts + 1.0)
            active = np.ones(n_casc, dtype=bool)

    # Flush whatever the loop left in the working set (never-compacted
    # batches, survivors of the last compaction, max_iterations tails).
    out_background[orig] = background
    out_weights[orig] = weights
    out_buckets[orig] = buckets
    out_ll[orig] = final_ll
    out_iterations[orig] = n_iterations

    _record_batch_metrics(n_total, iterations_run,
                          perf_counter() - fit_start, {
                              "attribution": attribution_s,
                              "updates": updates_s,
                              "likelihood": likelihood_s,
                          })
    return BatchedEMResult(
        background=out_background,
        weights=out_weights,
        bucket_pmf=out_buckets,
        log_likelihood=out_ll,
        n_iterations=out_iterations,
        basis=basis,
    )
