"""Flat, segment-wise NumPy kernels for the discrete Hawkes core.

Every hot path of the statistical core — candidate-parent enumeration,
Gibbs parent attribution, exposure, rate evaluation, and the exact
log-likelihood — is expressed here as a flat array program over
*segments*: per-event candidate lists are concatenated into single
arrays partitioned by an ``offsets`` vector, in the spirit of the
vectorized conjugate updates of Linderman & Adams.  The fitters in
:mod:`.inference`, the likelihood in :mod:`.model`, and the residual
checks in :mod:`.diagnostics` all share these kernels, so no caller
pays for a per-event Python loop.

Bit-compatibility contract
--------------------------
The EM fitter is required to produce *bit-identical* results to the
historical per-event loops, so every kernel used on the EM path
preserves the exact floating-point evaluation and accumulation order of
those loops: per-candidate products multiply left-to-right as
``count * weight * pmf``, and scatter-adds use :func:`np.ufunc.at` /
``np.cumsum``, both of which accumulate sequentially in element order
(a plain ``sum()`` would re-associate via pairwise summation and drift
in the last bits).  The Gibbs sampler keeps seed-determinism — same
seed, same result — but its *draw stream* differs from the historical
sampler: one bulk uniform pass replaces per-event ``multinomial``
calls (the sampled law is unchanged; a multinomial is a sum of i.i.d.
categorical draws).

Caching
-------
:func:`get_parent_structure` memoizes the :class:`ParentStructure` on
the (immutable) :class:`~repro.core.events.DiscreteEvents` instance,
keyed by basis content, and :func:`get_query_structure` does the same
for the default rate-evaluation grid.  EM, Gibbs, diagnostics, and —
because the live refitter opts into memoized cascade binning
(:func:`repro.core.influence.cascade_to_events` with ``memoize=True``)
— repeated refits over the same window all reuse one build.  The cache
dies with the events object (and is dropped from pickles by
``DiscreteEvents.__getstate__``), so corpora of transient per-URL
matrices cannot leak or bloat worker payloads.
"""

from __future__ import annotations

import numpy as np

from ..events import DiscreteEvents
from .basis import LagBasis

#: Attribute under which per-events kernel caches are stored.  The
#: events dataclass is frozen, so writes go through object.__setattr__;
#: DiscreteEvents.__getstate__ drops the attribute from pickles.
_CACHE_ATTR = "_hawkes_kernel_cache"

#: Scatter-adds over (pair, K) row blocks are chunked to bound transient
#: memory on dense query grids (e.g. diagnostics over every bin).
_SCATTER_CHUNK = 1 << 18


def _events_cache(events: DiscreteEvents) -> dict:
    cache = getattr(events, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        object.__setattr__(events, _CACHE_ATTR, cache)
    return cache


def _basis_key(basis: LagBasis) -> tuple:
    """Content key: two bases with equal mappings share structures."""
    return (basis.max_lag, basis.bucket_of.tobytes())


def segment_ranges(starts: np.ndarray, stops: np.ndarray,
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the integer ranges ``[starts[i], stops[i])``.

    Returns ``(flat, sizes, offsets)`` where ``flat`` holds every range
    back to back, ``sizes[i] = stops[i] - starts[i]``, and ``offsets``
    (length ``len(starts) + 1``) partitions ``flat`` into segments.
    Built from ``repeat``/``cumsum`` only — no Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    sizes = np.asarray(stops, dtype=np.int64) - starts
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    total = int(offsets[-1])
    flat = (np.arange(total, dtype=np.int64)
            + np.repeat(starts - offsets[:-1], sizes))
    return flat, sizes, offsets


def sequential_row_sum(rows: np.ndarray, init: np.ndarray) -> np.ndarray:
    """Sum ``rows`` onto ``init`` in strict top-to-bottom order.

    Equivalent to ``acc = init.copy(); for row in rows: acc += row`` —
    the associativity a reference accumulation loop uses — via a
    column-wise ``cumsum``.
    """
    if not len(rows):
        return init.copy()
    stacked = np.concatenate([init[None, :], rows], axis=0)
    return np.cumsum(stacked, axis=0)[-1]


class ParentStructure:
    """Flat candidate-parent arrays for each event entry.

    For entry ``m`` (bin ``t``, process ``k``, count ``c``) the
    candidate parents are every earlier entry within ``max_lag`` bins.
    Candidates of all entries are stored concatenated; segment ``m``
    occupies ``flat_*[offsets[m]:offsets[m + 1]]``.
    """

    def __init__(self, events: DiscreteEvents, basis: LagBasis) -> None:
        self.events = events
        self.basis = basis
        ev_bins = events.bins
        lo = np.searchsorted(ev_bins, ev_bins - basis.max_lag, side="left")
        hi = np.searchsorted(ev_bins, ev_bins, side="left")
        flat_idx, sizes, offsets = segment_ranges(lo, hi)
        self.sizes = sizes
        self.offsets = offsets
        self.flat_src = events.processes[flat_idx].astype(np.int64)
        self.flat_lag = (np.repeat(ev_bins, sizes)
                         - ev_bins[flat_idx]).astype(np.int64)
        self.flat_cnt = events.counts[flat_idx].astype(np.float64)
        self.flat_bucket = basis.bucket_of[self.flat_lag - 1]
        self.flat_dst = np.repeat(events.processes.astype(np.int64), sizes)
        # Precomputed gather indices into raveled (K, K) / (K, K, D)
        # arrays: candidate values become three flat gathers + products.
        k = events.n_processes
        self._pair = self.flat_src * k + self.flat_dst
        self._pmf_index = self._pair * basis.max_lag + self.flat_lag - 1
        self.dst = events.processes.astype(np.int64)
        self._draw_entry: np.ndarray | None = None

    @property
    def draw_entry(self) -> np.ndarray:
        """Entry index of each individual event draw: entry ``m``
        repeated ``counts[m]`` times.  Built lazily (only the Gibbs
        sampler needs it) and reused across sweeps.
        """
        if self._draw_entry is None:
            self._draw_entry = np.repeat(
                np.arange(len(self.events), dtype=np.int64),
                self.events.counts.astype(np.int64))
        return self._draw_entry

    # -- per-event views (introspection and tests; not on hot paths) ------

    def _split(self, flat: np.ndarray) -> list[np.ndarray]:
        if not len(self.events):
            return []
        return np.split(flat, self.offsets[1:-1])

    @property
    def cand_src(self) -> list[np.ndarray]:
        return self._split(self.flat_src)

    @property
    def cand_lag(self) -> list[np.ndarray]:
        return self._split(self.flat_lag)

    @property
    def cand_cnt(self) -> list[np.ndarray]:
        return self._split(self.flat_cnt)

    @property
    def cand_bucket(self) -> list[np.ndarray]:
        return self._split(self.flat_bucket)

    # -- kernels -----------------------------------------------------------

    def all_candidate_values(self, weights: np.ndarray,
                             lag_pmf: np.ndarray) -> np.ndarray:
        """Unnormalized parent weights for every candidate, flattened.

        Products evaluate as ``count * weight * pmf`` left-to-right,
        matching the reference loop bit for bit.
        """
        if not len(self.flat_src):
            return np.empty(0, dtype=np.float64)
        return (self.flat_cnt
                * weights.reshape(-1)[self._pair]
                * lag_pmf.reshape(-1)[self._pmf_index])

    def exposure(self, lag_cdf: np.ndarray) -> np.ndarray:
        """Truncated exposure ``E[i, j]`` under the lag CDF ``(K, K, D)``."""
        return exposure(self.events, lag_cdf, self.basis.max_lag)

    def segment_sums(self, flat_vals: np.ndarray) -> np.ndarray:
        """Per-event candidate-mass totals ``(n_events,)``."""
        if not len(flat_vals):
            return np.zeros(len(self.events))
        sums = np.add.reduceat(np.concatenate([flat_vals, [0.0]]),
                               self.offsets[:-1])
        sums[self.sizes == 0] = 0.0
        return sums


def get_parent_structure(events: DiscreteEvents,
                         basis: LagBasis) -> ParentStructure:
    """Memoized :class:`ParentStructure` for ``(events, basis)``."""
    cache = _events_cache(events)
    key = ("parents", _basis_key(basis))
    structure = cache.get(key)
    if structure is None:
        structure = ParentStructure(events, basis)
        cache[key] = structure
    return structure


def exposure(events: DiscreteEvents, lag_cdf: np.ndarray,
             max_lag: int) -> np.ndarray:
    """Truncated exposure ``E[i, j]``: opportunities for events on ``i``
    to parent events on ``j`` before the observation window ends.
    """
    k_procs = events.n_processes
    out = np.zeros((k_procs, k_procs))
    if not len(events):
        return out
    remaining = events.n_bins - 1 - events.bins
    capped = np.minimum(remaining, max_lag)
    valid = capped > 0
    if not valid.any():
        return out
    src = events.processes[valid].astype(np.int64)
    rows = events.counts[valid][:, None] * lag_cdf[src, :, capped[valid] - 1]
    np.add.at(out, src, rows)
    return out


def truncated_kernel_mass(events: DiscreteEvents, weights: np.ndarray,
                          lag_cdf: np.ndarray, max_lag: int,
                          init: np.ndarray) -> np.ndarray:
    """``init + sum_m count_m * W[src_m, :] * cdf[src_m, :, cap_m - 1]``
    accumulated in event order (the rate-integral kernel).
    """
    remaining = events.n_bins - 1 - events.bins
    capped = np.minimum(remaining, max_lag)
    valid = capped > 0
    if not valid.any():
        return init.copy()
    src = events.processes[valid].astype(np.int64)
    rows = (events.counts[valid][:, None]
            * weights[src, :] * lag_cdf[src, :, capped[valid] - 1])
    return sequential_row_sum(rows, init)


class QueryStructure:
    """Flat ``(query bin, source event)`` pairs within ``max_lag``.

    The rate-evaluation analogue of :class:`ParentStructure`: segment
    ``q`` lists every event entry strictly before query bin ``q`` and at
    most ``max_lag`` bins away.
    """

    def __init__(self, events: DiscreteEvents, query_bins: np.ndarray,
                 max_lag: int) -> None:
        ev_bins = events.bins
        lo = np.searchsorted(ev_bins, query_bins - max_lag, side="left")
        hi = np.searchsorted(ev_bins, query_bins, side="left")
        flat_idx, sizes, _ = segment_ranges(lo, hi)
        self.n_queries = len(query_bins)
        self.q_index = np.repeat(np.arange(len(query_bins), dtype=np.int64),
                                 sizes)
        self.src = events.processes[flat_idx].astype(np.int64)
        self.lag = (np.repeat(query_bins, sizes)
                    - ev_bins[flat_idx]).astype(np.int64)
        self.cnt = events.counts[flat_idx].astype(np.float64)

    def add_rates(self, rates: np.ndarray, kernel: np.ndarray) -> None:
        """Scatter-add each pair's ``count * kernel[src, :, lag - 1]``
        row onto ``rates[q]``, in (query, event) order.  Chunked so the
        transient row block stays bounded on dense query grids; chunks
        run in order, preserving the sequential accumulation contract.
        """
        for start in range(0, len(self.src), _SCATTER_CHUNK):
            sl = slice(start, start + _SCATTER_CHUNK)
            rows = self.cnt[sl, None] * kernel[self.src[sl], :,
                                               self.lag[sl] - 1]
            np.add.at(rates, self.q_index[sl], rows)


def unique_bins(events: DiscreteEvents) -> np.ndarray:
    """Memoized ``np.unique(events.bins)``."""
    cache = _events_cache(events)
    uniq = cache.get("unique_bins")
    if uniq is None:
        uniq = np.unique(events.bins)
        cache["unique_bins"] = uniq
    return uniq


def get_query_structure(events: DiscreteEvents,
                        max_lag: int) -> QueryStructure:
    """Memoized :class:`QueryStructure` over the occupied-bin grid."""
    cache = _events_cache(events)
    key = ("query", int(max_lag))
    structure = cache.get(key)
    if structure is None:
        structure = QueryStructure(events, unique_bins(events), max_lag)
        cache[key] = structure
    return structure


def sample_parent_attributions(structure: ParentStructure,
                               background: np.ndarray,
                               flat_vals: np.ndarray,
                               rng: np.random.Generator,
                               ) -> tuple[np.ndarray, np.ndarray]:
    """One vectorized Gibbs attribution pass over every event.

    Each of an entry's ``count`` events is independently attributed to
    the background (mass ``background[dst]``) or to one candidate
    parent (mass ``flat_vals`` within the entry's segment) — jointly a
    multinomial draw per entry, realized as one bulk uniform pass and a
    single ``searchsorted`` against the global candidate-mass cumsum.

    Returns ``(z_background, flat_draws)``: background attribution
    counts per process ``(K,)`` and per-candidate child counts ``(F,)``.
    Entries with no admissible parent mass fall back to the background,
    like the reference sampler.
    """
    events = structure.events
    k_procs = events.n_processes
    if not len(events):
        return np.zeros(k_procs), np.zeros(0)
    offsets = structure.offsets
    dst_all = structure.dst
    # Global cumulative candidate mass; segment m spans
    # cum[offsets[m]] .. cum[offsets[m + 1]] (cum has a leading zero).
    cum = np.zeros(len(flat_vals) + 1)
    np.cumsum(flat_vals, out=cum[1:])
    seg_mass = cum[offsets[1:]] - cum[offsets[:-1]]
    bg_mass = background[dst_all]
    totals = bg_mass + seg_mass

    rep = structure.draw_entry
    x = rng.random(len(rep)) * totals[rep]
    to_background = ((x < bg_mass[rep])
                     | (seg_mass[rep] <= 0) | (totals[rep] <= 0))
    z_background = np.bincount(
        dst_all[rep[to_background]], minlength=k_procs).astype(np.float64)

    flat_draws = np.zeros(len(flat_vals))
    cand = ~to_background
    if cand.any():
        rep_c = rep[cand]
        lo, hi = offsets[:-1][rep_c], offsets[1:][rep_c]
        targets = cum[lo] + (x[cand] - bg_mass[rep_c])
        chosen = np.searchsorted(cum[1:], targets, side="right")
        # Guard the last-ulp overshoot past the segment's own mass sum.
        chosen = np.clip(chosen, lo, hi - 1)
        flat_draws += np.bincount(chosen, minlength=len(flat_vals))
    return z_background, flat_draws
