"""Inference diagnostics: convergence, posterior predictive checks,
and residual analysis for the discrete Hawkes model.

The paper fits thousands of per-URL models with Gibbs sampling but
reports no convergence evidence; this module supplies the checks a
careful replication needs:

* :func:`geweke_z` / :func:`effective_sample_size` — standard MCMC
  chain diagnostics on the weight samples kept by
  :func:`~repro.core.hawkes.inference.fit_gibbs`.
* :func:`posterior_predictive_check` — simulate from the fitted
  parameters and compare per-process event totals against the data.
* :func:`residual_uniformity` — a discrete-time analogue of the
  time-rescaling theorem: transform inter-event gaps through the fitted
  cumulative intensity and test the result for uniformity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from ..events import DiscreteEvents
from .model import HawkesParams, expected_rate, rate_integral
from .simulation import simulate_branching


# ---------------------------------------------------------------------------
# Chain diagnostics
# ---------------------------------------------------------------------------

def geweke_z(chain: np.ndarray, first: float = 0.1,
             last: float = 0.5) -> float:
    """Geweke convergence z-score for one scalar chain.

    Compares the mean of the first ``first`` fraction of the chain with
    the mean of the last ``last`` fraction; |z| < 2 is the usual
    "no evidence against convergence" threshold.
    """
    chain = np.asarray(chain, dtype=np.float64)
    if chain.ndim != 1 or len(chain) < 10:
        raise ValueError("need a 1-D chain of at least 10 samples")
    n = len(chain)
    head = chain[: max(1, int(n * first))]
    tail = chain[n - max(1, int(n * last)):]
    var = head.var(ddof=1) / len(head) + tail.var(ddof=1) / len(tail)
    if var <= 0:
        return 0.0
    return float((head.mean() - tail.mean()) / np.sqrt(var))


def effective_sample_size(chain: np.ndarray,
                          max_lag: int | None = None) -> float:
    """ESS via the initial-positive-sequence autocorrelation estimator."""
    chain = np.asarray(chain, dtype=np.float64)
    n = len(chain)
    if n < 4:
        return float(n)
    centered = chain - chain.mean()
    denom = float(np.dot(centered, centered))
    if denom <= 0:
        return float(n)
    max_lag = max_lag or n // 2
    rho_sum = 0.0
    for lag in range(1, max_lag):
        rho = float(np.dot(centered[:-lag], centered[lag:])) / denom
        if rho <= 0:
            break
        rho_sum += rho
    return float(n / (1.0 + 2.0 * rho_sum))


@dataclass(frozen=True)
class ChainDiagnostics:
    """Summary over every weight-matrix entry's chain."""

    geweke: np.ndarray   # (K, K) z-scores
    ess: np.ndarray      # (K, K) effective sample sizes
    n_samples: int

    @property
    def worst_geweke(self) -> float:
        return float(np.abs(self.geweke).max())

    @property
    def min_ess(self) -> float:
        return float(self.ess.min())

    def fraction_large_geweke(self, z_threshold: float = 3.0) -> float:
        """Share of chains whose |Geweke z| exceeds the threshold.

        With K*K chains per fit, the max |z| is inflated by multiple
        comparisons; the *fraction* of flagged chains is the stable
        convergence signal.
        """
        return float((np.abs(self.geweke) > z_threshold).mean())

    def converged(self, z_threshold: float = 3.0,
                  min_ess: float = 5.0,
                  max_flagged_fraction: float = 0.10) -> bool:
        return (self.fraction_large_geweke(z_threshold)
                <= max_flagged_fraction
                and self.min_ess >= min_ess)


def diagnose_weight_chains(weight_samples: np.ndarray) -> ChainDiagnostics:
    """Run Geweke and ESS on each ``W[i, j]`` chain.

    ``weight_samples`` is the ``(n_samples, K, K)`` array returned by
    :func:`fit_gibbs` with ``keep_samples=True``.
    """
    if weight_samples.ndim != 3 or len(weight_samples) < 10:
        raise ValueError("need (n_samples >= 10, K, K) weight samples")
    _, k, _ = weight_samples.shape
    geweke = np.zeros((k, k))
    ess = np.zeros((k, k))
    for i in range(k):
        for j in range(k):
            chain = weight_samples[:, i, j]
            geweke[i, j] = geweke_z(chain)
            ess[i, j] = effective_sample_size(chain)
    return ChainDiagnostics(geweke=geweke, ess=ess,
                            n_samples=len(weight_samples))


# ---------------------------------------------------------------------------
# Posterior predictive checks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PredictiveCheck:
    """Observed vs replicated per-process event totals."""

    observed: np.ndarray          # (K,)
    replicated_mean: np.ndarray   # (K,)
    replicated_std: np.ndarray    # (K,)
    z_scores: np.ndarray          # (K,)

    def acceptable(self, threshold: float = 3.0) -> bool:
        return bool(np.all(np.abs(self.z_scores) < threshold))


def posterior_predictive_check(params: HawkesParams,
                               events: DiscreteEvents,
                               n_replicates: int = 20,
                               rng: np.random.Generator | None = None,
                               ) -> PredictiveCheck:
    """Simulate replicates from ``params`` and compare event totals."""
    rng = rng or np.random.default_rng()
    observed = events.events_per_process().astype(np.float64)
    totals = np.zeros((n_replicates, params.n_processes))
    for r in range(n_replicates):
        replicate = simulate_branching(params, events.n_bins, rng)
        totals[r] = replicate.events_per_process()
    mean = totals.mean(axis=0)
    std = totals.std(axis=0)
    safe_std = np.maximum(std, 1.0)
    return PredictiveCheck(
        observed=observed,
        replicated_mean=mean,
        replicated_std=std,
        z_scores=(observed - mean) / safe_std,
    )


# ---------------------------------------------------------------------------
# Residual analysis (discrete time-rescaling)
# ---------------------------------------------------------------------------

def residual_uniformity(params: HawkesParams, events: DiscreteEvents,
                        rng: np.random.Generator | None = None,
                        ) -> float:
    """KS p-value for uniformity of randomized rescaled residuals.

    For a well-specified model, the cumulative intensity between
    consecutive events is Exp(1) distributed (time-rescaling theorem).
    In discrete time we accumulate ``lambda[t, k]`` between events and
    jitter within the event bin to break ties, then KS-test the
    exponential CDF transforms against Uniform(0, 1).
    """
    rng = rng or np.random.default_rng()
    if not len(events):
        raise ValueError("need events for residual analysis")
    parts: list[np.ndarray] = []
    all_bins = np.arange(events.n_bins)
    rates = expected_rate(params, events, query_bins=all_bins)
    dense = events.to_dense()
    for k in range(params.n_processes):
        rate_k = rates[:, k]
        cum = np.concatenate([[0.0], np.cumsum(rate_k)])
        event_bins = np.nonzero(dense[:, k])[0]
        reps = dense[event_bins, k]
        n_events_k = int(reps.sum())
        if not n_events_k:
            continue
        # integrated intensity up to a uniform point in each event's bin
        totals = (np.repeat(cum[event_bins], reps)
                  + np.repeat(rate_k[event_bins], reps)
                  * rng.uniform(size=n_events_k))
        gaps = np.diff(totals, prepend=0.0)
        positive = gaps > 0
        if positive.any():
            parts.append(1.0 - np.exp(-gaps[positive]))
    residuals = np.concatenate(parts) if parts else np.empty(0)
    if len(residuals) < 5:
        return 1.0
    result = _scipy_stats.kstest(residuals, "uniform")
    return float(result.pvalue)
