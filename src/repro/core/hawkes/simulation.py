"""Forward sampling of the discrete Hawkes model.

Two samplers are provided:

* :func:`simulate_branching` uses the exact cluster (branching)
  representation — background events arrive as a homogeneous Poisson
  process and every event independently spawns Poisson-distributed
  children at lags drawn from the impulse PMF.  This is the production
  sampler: cost scales with the number of events, not with ``T``.
* :func:`simulate_stepwise` walks the bins one at a time, drawing
  ``Poisson(lambda[t, k])`` counts from the accumulated rate.  It is
  O(T·K·D) and exists as an independent cross-check of the branching
  construction (the two agree in distribution; tested on moments).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..events import DiscreteEvents
from .model import HawkesParams

#: Guard against runaway cascades from unstable parameter settings.
_MAX_EVENTS = 5_000_000


def simulate_branching(params: HawkesParams, n_bins: int,
                       rng: np.random.Generator | None = None,
                       ) -> DiscreteEvents:
    """Draw one realization of the model over ``n_bins`` bins.

    Raises ``RuntimeError`` if the cascade exceeds an internal event
    budget, which only happens for super-critical ``W`` (spectral radius
    well above 1).
    """
    rng = rng or np.random.default_rng()
    k_procs = params.n_processes
    queue: deque[tuple[int, int]] = deque()

    # Immigrant (background) events: Poisson(lambda0) per bin, drawn in
    # bulk as a total count placed uniformly over bins.
    for k in range(k_procs):
        total = rng.poisson(params.background[k] * n_bins)
        if total:
            for t in rng.integers(0, n_bins, size=total):
                queue.append((int(t), k))

    all_events: list[tuple[int, int]] = []
    lags = np.arange(1, params.max_lag + 1)
    produced = 0
    while queue:
        t, k = queue.popleft()
        all_events.append((t, k))
        produced += 1
        if produced > _MAX_EVENTS:
            raise RuntimeError(
                "event budget exceeded; weight matrix is likely unstable "
                f"(spectral radius {params.spectral_radius():.3f})")
        for dst in range(k_procs):
            n_children = rng.poisson(params.weights[k, dst])
            if not n_children:
                continue
            child_lags = rng.choice(lags, size=n_children,
                                    p=params.impulse[k, dst])
            for lag in child_lags:
                child_t = t + int(lag)
                if child_t < n_bins:
                    queue.append((child_t, dst))

    return DiscreteEvents.from_pairs(all_events, n_bins=n_bins,
                                     n_processes=k_procs)


def simulate_stepwise(params: HawkesParams, n_bins: int,
                      rng: np.random.Generator | None = None,
                      ) -> DiscreteEvents:
    """Bin-by-bin sampler; O(T·K·D) and intended for validation only."""
    rng = rng or np.random.default_rng()
    k_procs = params.n_processes
    max_lag = params.max_lag
    kernel = params.branching_kernel()  # (K, K, D)
    counts = np.zeros((n_bins, k_procs), dtype=np.int64)
    for t in range(n_bins):
        rate = params.background.copy()
        lo = max(0, t - max_lag)
        for t_past in range(lo, t):
            past = counts[t_past]
            if not past.any():
                continue
            lag = t - t_past
            rate += past @ kernel[:, :, lag - 1]
        counts[t] = rng.poisson(rate)
    return DiscreteEvents.from_dense(counts)


def expected_total_events(params: HawkesParams, n_bins: int) -> np.ndarray:
    """Expected event totals per process over ``n_bins`` bins.

    Ignoring edge truncation, totals solve ``N = lambda0 * T + W^T N``,
    i.e. ``N = (I - W^T)^{-1} lambda0 T``.  Useful for sizing simulations
    and as an analytic check on the samplers.
    """
    identity = np.eye(params.n_processes)
    return np.linalg.solve(identity - params.weights.T,
                           params.background * n_bins)
