"""Parameter inference for the discrete Hawkes model.

Two fitters with the same interface:

* :func:`fit_gibbs` — the paper's method ([20, 21]): Gibbs sampling with
  auxiliary parent attribution.  Every event is stochastically attributed
  either to the background rate or to an earlier event; conditioned on
  the attributions, the Gamma/Dirichlet priors are conjugate and all
  parameters are resampled in closed form.
* :func:`fit_em` — expectation-maximization on the identical latent
  structure, with MAP updates under the same priors.  Deterministic and
  faster; used as an independent cross-check of the sampler.

Both fitters run on the flat segment kernels of :mod:`.kernels`: parent
candidates are enumerated once per ``(events, basis)`` (and cached on
the events object), Gibbs attribution is a single bulk uniform pass per
sweep, and every responsibility/exposure accumulation is a vectorized
scatter-add.  EM is bit-identical to the historical per-event loops;
the Gibbs sampler keeps seed-determinism but draws its randomness in a
different order than the historical per-event ``multinomial`` sampler
(the sampled distribution is unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ...obs import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_DELTA_BUCKETS,
    get_registry,
)
from ..events import DiscreteEvents
from .basis import LagBasis, LogBinnedLagBasis
from .kernels import ParentStructure, get_parent_structure, \
    sample_parent_attributions
from .model import HawkesParams, discrete_log_likelihood

#: Backwards-compatible alias; the class moved to :mod:`.kernels`.
_ParentStructure = ParentStructure


@dataclass(frozen=True)
class Priors:
    """Conjugate prior hyper-parameters (shape/rate parameterization)."""

    background_shape: float = 1.0
    background_rate: float = 100.0
    weight_shape: float = 1.0
    weight_rate: float = 10.0
    impulse_concentration: float = 1.0

    def __post_init__(self) -> None:
        if min(self.background_shape, self.background_rate,
               self.weight_shape, self.weight_rate,
               self.impulse_concentration) <= 0:
            raise ValueError("prior hyper-parameters must be positive")


@dataclass(frozen=True)
class FitResult:
    """Posterior summary of one model fit."""

    params: HawkesParams
    log_likelihood: float
    #: Per-sweep posterior draws of W, shape (n_samples, K, K); empty for EM.
    weight_samples: np.ndarray = field(
        default_factory=lambda: np.empty((0, 0, 0)))
    n_iterations: int = 0

    @property
    def background(self) -> np.ndarray:
        return self.params.background

    @property
    def weights(self) -> np.ndarray:
        return self.params.weights


def _initial_state(events: DiscreteEvents, basis: LagBasis, priors: Priors,
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Heuristic initialization: prior means, weights seeded from data."""
    k_procs = events.n_processes
    background = np.full(
        k_procs, priors.background_shape / priors.background_rate)
    totals = events.events_per_process()
    background = np.maximum(background,
                            0.5 * totals / max(events.n_bins, 1))
    weights = np.full((k_procs, k_procs),
                      priors.weight_shape / priors.weight_rate)
    buckets = np.full((k_procs, k_procs, basis.n_buckets),
                      1.0 / basis.n_buckets)
    return background, weights, buckets


def _record_fit_metrics(method: str, total: float,
                        phases: dict[str, float]) -> None:
    """Observe one completed fit.

    Pure timing — nothing here touches the RNG or the fitted arrays,
    so instrumented fits stay bit-identical to uninstrumented ones.
    """
    registry = get_registry()
    registry.counter("repro_fit_total",
                     "Completed per-URL Hawkes fits.", method=method).inc()
    registry.histogram("repro_fit_seconds",
                       "Wall time of one Hawkes fit.",
                       method=method).observe(total)
    phase_help = "Kernel wall time per fit phase, summed over sweeps."
    for phase, seconds in phases.items():
        registry.histogram("repro_fit_phase_seconds", phase_help,
                           method=method, phase=phase).observe(seconds)


def fit_gibbs(events: DiscreteEvents, max_lag: int,
              basis: LagBasis | None = None,
              priors: Priors | None = None,
              n_iterations: int = 120, burn_in: int = 40,
              rng: np.random.Generator | None = None,
              keep_samples: bool = True) -> FitResult:
    """Fit by Gibbs sampling; returns posterior means.

    Parameters mirror Section 5.2: ``max_lag`` is ``Delta t_max`` in bins
    (720 for the paper's 12-hour window at 1-minute bins).
    """
    if burn_in >= n_iterations:
        raise ValueError("burn_in must be smaller than n_iterations")
    rng = rng or np.random.default_rng()
    priors = priors or Priors()
    basis = basis or LogBinnedLagBasis(max_lag)
    if basis.max_lag != max_lag:
        raise ValueError("basis.max_lag must equal max_lag")
    k_procs = events.n_processes
    fit_start = perf_counter()
    structure = get_parent_structure(events, basis)
    background, weights, buckets = _initial_state(events, basis, priors)

    attribution_s = updates_s = 0.0
    kept_bg: list[np.ndarray] = []
    kept_w: list[np.ndarray] = []
    kept_buckets: list[np.ndarray] = []
    for sweep in range(n_iterations):
        phase_start = perf_counter()
        lag_pmf = basis.expand(buckets)
        # -- parent attribution ------------------------------------------
        flat_vals = structure.all_candidate_values(weights, lag_pmf)
        z_background, flat_draws = sample_parent_attributions(
            structure, background, flat_vals, rng)
        z_weight = np.zeros((k_procs, k_procs))
        z_bucket = np.zeros((k_procs, k_procs, basis.n_buckets))
        if len(flat_draws):
            np.add.at(z_weight, (structure.flat_src, structure.flat_dst),
                      flat_draws)
            np.add.at(z_bucket,
                      (structure.flat_src, structure.flat_dst,
                       structure.flat_bucket), flat_draws)
        attribution_s += perf_counter() - phase_start
        # -- conjugate updates --------------------------------------------
        phase_start = perf_counter()
        background = rng.gamma(
            priors.background_shape + z_background,
            1.0 / (priors.background_rate + events.n_bins))
        lag_cdf = np.cumsum(lag_pmf, axis=2)
        exposure = structure.exposure(lag_cdf)
        weights = rng.gamma(priors.weight_shape + z_weight,
                            1.0 / (priors.weight_rate + exposure))
        conc = priors.impulse_concentration + z_bucket
        buckets = rng.gamma(conc, 1.0)  # Dirichlet via normalized Gammas
        buckets = np.maximum(buckets, 1e-12)
        buckets /= buckets.sum(axis=2, keepdims=True)
        updates_s += perf_counter() - phase_start

        if sweep >= burn_in:
            kept_bg.append(background.copy())
            kept_w.append(weights.copy())
            kept_buckets.append(buckets.copy())

    mean_bg = np.mean(kept_bg, axis=0)
    mean_w = np.mean(kept_w, axis=0)
    mean_buckets = np.mean(kept_buckets, axis=0)
    mean_buckets /= mean_buckets.sum(axis=2, keepdims=True)
    params = HawkesParams(background=mean_bg, weights=mean_w,
                          impulse=basis.expand(mean_buckets))
    samples = (np.array(kept_w) if keep_samples
               else np.empty((0, k_procs, k_procs)))
    phase_start = perf_counter()
    log_likelihood = discrete_log_likelihood(params, events)
    likelihood_s = perf_counter() - phase_start
    _record_fit_metrics("gibbs", perf_counter() - fit_start, {
        "attribution": attribution_s,
        "updates": updates_s,
        "likelihood": likelihood_s,
    })
    return FitResult(
        params=params,
        log_likelihood=log_likelihood,
        weight_samples=samples,
        n_iterations=n_iterations,
    )


def fit_em(events: DiscreteEvents, max_lag: int,
           basis: LagBasis | None = None,
           priors: Priors | None = None,
           max_iterations: int = 200, tol: float = 1e-6) -> FitResult:
    """Deterministic EM fit with MAP updates under the same priors."""
    priors = priors or Priors()
    basis = basis or LogBinnedLagBasis(max_lag)
    if basis.max_lag != max_lag:
        raise ValueError("basis.max_lag must equal max_lag")
    k_procs = events.n_processes
    fit_start = perf_counter()
    structure = get_parent_structure(events, basis)
    background, weights, buckets = _initial_state(events, basis, priors)

    counts = events.counts.astype(np.float64)
    dst_all = events.processes.astype(np.int64)
    previous_ll = -np.inf
    iterations_run = 0
    attribution_s = updates_s = likelihood_s = 0.0
    relative_delta = np.inf
    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        phase_start = perf_counter()
        lag_pmf = basis.expand(buckets)
        z_background = np.zeros(k_procs)
        flat_vals = structure.all_candidate_values(weights, lag_pmf)
        # per-event totals (background + candidate mass), fully vectorized
        seg_sums = structure.segment_sums(flat_vals)
        totals = background[dst_all] + seg_sums
        safe = totals > 0
        bg_resp = np.where(safe, counts * background[dst_all]
                           / np.where(safe, totals, 1.0), counts)
        np.add.at(z_background, dst_all, bg_resp)
        z_weight = np.zeros((k_procs, k_procs))
        z_bucket = np.zeros((k_procs, k_procs, basis.n_buckets))
        if len(flat_vals):
            scale = np.where(safe, counts / np.where(safe, totals, 1.0),
                             0.0)
            flat_resp = flat_vals * np.repeat(scale, structure.sizes)
            np.add.at(z_weight, (structure.flat_src, structure.flat_dst),
                      flat_resp)
            np.add.at(z_bucket,
                      (structure.flat_src, structure.flat_dst,
                       structure.flat_bucket), flat_resp)
        attribution_s += perf_counter() - phase_start
        # -- MAP M-step -----------------------------------------------------
        phase_start = perf_counter()
        background = ((priors.background_shape - 1.0 + z_background)
                      / (priors.background_rate + events.n_bins))
        background = np.maximum(background, 1e-12)
        lag_cdf = np.cumsum(lag_pmf, axis=2)
        exposure = structure.exposure(lag_cdf)
        weights = ((priors.weight_shape - 1.0 + z_weight)
                   / (priors.weight_rate + exposure))
        weights = np.maximum(weights, 0.0)
        conc = priors.impulse_concentration - 1.0 + z_bucket
        conc = np.maximum(conc, 1e-12)
        buckets = conc / conc.sum(axis=2, keepdims=True)
        updates_s += perf_counter() - phase_start

        phase_start = perf_counter()
        params = HawkesParams(background=background, weights=weights,
                              impulse=basis.expand(buckets))
        current_ll = discrete_log_likelihood(params, events)
        likelihood_s += perf_counter() - phase_start
        relative_delta = (abs(current_ll - previous_ll)
                          / (1 + abs(previous_ll)))
        if abs(current_ll - previous_ll) < tol * (1 + abs(previous_ll)):
            previous_ll = current_ll
            break
        previous_ll = current_ll

    params = HawkesParams(background=background, weights=weights,
                          impulse=basis.expand(buckets))
    registry = get_registry()
    registry.histogram(
        "repro_fit_em_iterations", "EM iterations to convergence.",
        edges=DEFAULT_COUNT_BUCKETS).observe(iterations_run)
    if np.isfinite(relative_delta):
        registry.histogram(
            "repro_fit_em_convergence_delta",
            "Final relative log-likelihood delta at EM termination.",
            edges=DEFAULT_DELTA_BUCKETS).observe(relative_delta)
    _record_fit_metrics("em", perf_counter() - fit_start, {
        "attribution": attribution_s,
        "updates": updates_s,
        "likelihood": likelihood_s,
    })
    return FitResult(
        params=params,
        log_likelihood=previous_ll,
        n_iterations=iterations_run,
    )
