"""Parameter inference for the discrete Hawkes model.

Two fitters with the same interface:

* :func:`fit_gibbs` — the paper's method ([20, 21]): Gibbs sampling with
  auxiliary parent attribution.  Every event is stochastically attributed
  either to the background rate or to an earlier event; conditioned on
  the attributions, the Gamma/Dirichlet priors are conjugate and all
  parameters are resampled in closed form.
* :func:`fit_em` — expectation-maximization on the identical latent
  structure, with MAP updates under the same priors.  Deterministic and
  faster; used as an independent cross-check of the sampler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..events import DiscreteEvents
from .basis import LagBasis, LogBinnedLagBasis
from .model import HawkesParams, discrete_log_likelihood


@dataclass(frozen=True)
class Priors:
    """Conjugate prior hyper-parameters (shape/rate parameterization)."""

    background_shape: float = 1.0
    background_rate: float = 100.0
    weight_shape: float = 1.0
    weight_rate: float = 10.0
    impulse_concentration: float = 1.0

    def __post_init__(self) -> None:
        if min(self.background_shape, self.background_rate,
               self.weight_shape, self.weight_rate,
               self.impulse_concentration) <= 0:
            raise ValueError("prior hyper-parameters must be positive")


@dataclass(frozen=True)
class FitResult:
    """Posterior summary of one model fit."""

    params: HawkesParams
    log_likelihood: float
    #: Per-sweep posterior draws of W, shape (n_samples, K, K); empty for EM.
    weight_samples: np.ndarray = field(
        default_factory=lambda: np.empty((0, 0, 0)))
    n_iterations: int = 0

    @property
    def background(self) -> np.ndarray:
        return self.params.background

    @property
    def weights(self) -> np.ndarray:
        return self.params.weights


class _ParentStructure:
    """Precomputed candidate-parent arrays for each event entry.

    For entry ``m`` (bin ``t``, process ``k``, count ``c``) the candidate
    parents are every earlier entry within ``max_lag`` bins.  We cache,
    per entry: source process indices, lags, source counts, and the
    bucket index of each lag under the chosen basis.
    """

    def __init__(self, events: DiscreteEvents, basis: LagBasis) -> None:
        self.events = events
        self.basis = basis
        ev_bins = events.bins
        self.cand_src: list[np.ndarray] = []
        self.cand_lag: list[np.ndarray] = []
        self.cand_cnt: list[np.ndarray] = []
        self.cand_bucket: list[np.ndarray] = []
        for m in range(len(events)):
            t = int(ev_bins[m])
            lo = np.searchsorted(ev_bins, t - basis.max_lag, side="left")
            hi = np.searchsorted(ev_bins, t, side="left")
            idx = np.arange(lo, hi)
            lags = (t - ev_bins[idx]).astype(np.int64)
            self.cand_src.append(events.processes[idx].astype(np.int64))
            self.cand_lag.append(lags)
            self.cand_cnt.append(events.counts[idx].astype(np.float64))
            self.cand_bucket.append(basis.bucket_of[lags - 1])
        # Flattened views for vectorized probability computation: the
        # candidate weights of all events are evaluated in one numpy
        # pass per sweep, then sliced per event at ``offsets``.
        sizes = [len(src) for src in self.cand_src]
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        if self.offsets[-1]:
            self.flat_src = np.concatenate(self.cand_src)
            self.flat_lag = np.concatenate(self.cand_lag)
            self.flat_cnt = np.concatenate(self.cand_cnt)
            self.flat_bucket = np.concatenate(self.cand_bucket)
            self.flat_dst = np.repeat(
                events.processes.astype(np.int64), sizes)
        else:
            self.flat_src = np.empty(0, dtype=np.int64)
            self.flat_lag = np.empty(0, dtype=np.int64)
            self.flat_cnt = np.empty(0, dtype=np.float64)
            self.flat_bucket = np.empty(0, dtype=np.int64)
            self.flat_dst = np.empty(0, dtype=np.int64)

    def all_candidate_values(self, weights: np.ndarray,
                             lag_pmf: np.ndarray) -> np.ndarray:
        """Unnormalized parent weights for every candidate, flattened."""
        if not len(self.flat_src):
            return np.empty(0, dtype=np.float64)
        return (self.flat_cnt
                * weights[self.flat_src, self.flat_dst]
                * lag_pmf[self.flat_src, self.flat_dst,
                          self.flat_lag - 1])

    def exposure(self, lag_cdf: np.ndarray) -> np.ndarray:
        """Truncated exposure ``E[i, j]``: opportunities for events on ``i``
        to parent events on ``j``, given the current lag CDF ``(K, K, D)``.
        """
        events = self.events
        k_procs = events.n_processes
        out = np.zeros((k_procs, k_procs))
        remaining = events.n_bins - 1 - events.bins
        capped = np.minimum(remaining, self.basis.max_lag)
        for m in range(len(events)):
            cap = int(capped[m])
            if cap <= 0:
                continue
            src = int(events.processes[m])
            out[src, :] += events.counts[m] * lag_cdf[src, :, cap - 1]
        return out


def _initial_state(events: DiscreteEvents, basis: LagBasis, priors: Priors,
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Heuristic initialization: prior means, weights seeded from data."""
    k_procs = events.n_processes
    background = np.full(
        k_procs, priors.background_shape / priors.background_rate)
    totals = events.events_per_process()
    background = np.maximum(background,
                            0.5 * totals / max(events.n_bins, 1))
    weights = np.full((k_procs, k_procs),
                      priors.weight_shape / priors.weight_rate)
    buckets = np.full((k_procs, k_procs, basis.n_buckets),
                      1.0 / basis.n_buckets)
    return background, weights, buckets


def _attribution_probs(m: int, structure: _ParentStructure,
                       background: np.ndarray, weights: np.ndarray,
                       lag_pmf: np.ndarray) -> np.ndarray:
    """Unnormalized parent probabilities for entry ``m``.

    Index 0 is the background; indices ``1..`` align with the candidate
    arrays of ``structure``.
    """
    events = structure.events
    dst = int(events.processes[m])
    src = structure.cand_src[m]
    lag = structure.cand_lag[m]
    cnt = structure.cand_cnt[m]
    vals = cnt * weights[src, dst] * lag_pmf[src, dst, lag - 1]
    probs = np.empty(len(vals) + 1)
    probs[0] = background[dst]
    probs[1:] = vals
    return probs


def fit_gibbs(events: DiscreteEvents, max_lag: int,
              basis: LagBasis | None = None,
              priors: Priors | None = None,
              n_iterations: int = 120, burn_in: int = 40,
              rng: np.random.Generator | None = None,
              keep_samples: bool = True) -> FitResult:
    """Fit by Gibbs sampling; returns posterior means.

    Parameters mirror Section 5.2: ``max_lag`` is ``Delta t_max`` in bins
    (720 for the paper's 12-hour window at 1-minute bins).
    """
    if burn_in >= n_iterations:
        raise ValueError("burn_in must be smaller than n_iterations")
    rng = rng or np.random.default_rng()
    priors = priors or Priors()
    basis = basis or LogBinnedLagBasis(max_lag)
    if basis.max_lag != max_lag:
        raise ValueError("basis.max_lag must equal max_lag")
    k_procs = events.n_processes
    structure = _ParentStructure(events, basis)
    background, weights, buckets = _initial_state(events, basis, priors)

    kept_bg: list[np.ndarray] = []
    kept_w: list[np.ndarray] = []
    kept_buckets: list[np.ndarray] = []
    for sweep in range(n_iterations):
        lag_pmf = basis.expand(buckets)
        # -- parent attribution ------------------------------------------
        z_background = np.zeros(k_procs)
        z_weight = np.zeros((k_procs, k_procs))
        z_bucket = np.zeros((k_procs, k_procs, basis.n_buckets))
        flat_vals = structure.all_candidate_values(weights, lag_pmf)
        flat_draws = np.zeros(len(flat_vals))
        offsets = structure.offsets
        for m in range(len(events)):
            vals = flat_vals[offsets[m]:offsets[m + 1]]
            count = int(events.counts[m])
            dst = int(events.processes[m])
            total = background[dst] + vals.sum()
            if total <= 0:
                z_background[dst] += count
                continue
            probs = np.empty(len(vals) + 1)
            probs[0] = background[dst]
            probs[1:] = vals
            draws = rng.multinomial(count, probs / total)
            z_background[dst] += draws[0]
            if len(draws) > 1 and draws[1:].any():
                flat_draws[offsets[m]:offsets[m + 1]] = draws[1:]
        if len(flat_draws):
            np.add.at(z_weight, (structure.flat_src, structure.flat_dst),
                      flat_draws)
            np.add.at(z_bucket,
                      (structure.flat_src, structure.flat_dst,
                       structure.flat_bucket), flat_draws)
        # -- conjugate updates --------------------------------------------
        background = rng.gamma(
            priors.background_shape + z_background,
            1.0 / (priors.background_rate + events.n_bins))
        lag_cdf = np.cumsum(lag_pmf, axis=2)
        exposure = structure.exposure(lag_cdf)
        weights = rng.gamma(priors.weight_shape + z_weight,
                            1.0 / (priors.weight_rate + exposure))
        conc = priors.impulse_concentration + z_bucket
        buckets = rng.gamma(conc, 1.0)  # Dirichlet via normalized Gammas
        buckets = np.maximum(buckets, 1e-12)
        buckets /= buckets.sum(axis=2, keepdims=True)

        if sweep >= burn_in:
            kept_bg.append(background.copy())
            kept_w.append(weights.copy())
            kept_buckets.append(buckets.copy())

    mean_bg = np.mean(kept_bg, axis=0)
    mean_w = np.mean(kept_w, axis=0)
    mean_buckets = np.mean(kept_buckets, axis=0)
    mean_buckets /= mean_buckets.sum(axis=2, keepdims=True)
    params = HawkesParams(background=mean_bg, weights=mean_w,
                          impulse=basis.expand(mean_buckets))
    samples = (np.array(kept_w) if keep_samples
               else np.empty((0, k_procs, k_procs)))
    return FitResult(
        params=params,
        log_likelihood=discrete_log_likelihood(params, events),
        weight_samples=samples,
        n_iterations=n_iterations,
    )


def fit_em(events: DiscreteEvents, max_lag: int,
           basis: LagBasis | None = None,
           priors: Priors | None = None,
           max_iterations: int = 200, tol: float = 1e-6) -> FitResult:
    """Deterministic EM fit with MAP updates under the same priors."""
    priors = priors or Priors()
    basis = basis or LogBinnedLagBasis(max_lag)
    if basis.max_lag != max_lag:
        raise ValueError("basis.max_lag must equal max_lag")
    k_procs = events.n_processes
    structure = _ParentStructure(events, basis)
    background, weights, buckets = _initial_state(events, basis, priors)

    previous_ll = -np.inf
    iterations_run = 0
    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        lag_pmf = basis.expand(buckets)
        z_background = np.zeros(k_procs)
        flat_vals = structure.all_candidate_values(weights, lag_pmf)
        offsets = structure.offsets
        counts = events.counts.astype(np.float64)
        dst_all = events.processes.astype(np.int64)
        # per-event totals (background + candidate mass), fully vectorized
        if len(flat_vals):
            seg_sums = np.add.reduceat(
                np.concatenate([flat_vals, [0.0]]), offsets[:-1])
            seg_sums[offsets[:-1] == offsets[1:]] = 0.0
        else:
            seg_sums = np.zeros(len(events))
        totals = background[dst_all] + seg_sums
        safe = totals > 0
        bg_resp = np.where(safe, counts * background[dst_all]
                           / np.where(safe, totals, 1.0), counts)
        np.add.at(z_background, dst_all, bg_resp)
        z_weight = np.zeros((k_procs, k_procs))
        z_bucket = np.zeros((k_procs, k_procs, basis.n_buckets))
        if len(flat_vals):
            scale = np.where(safe, counts / np.where(safe, totals, 1.0),
                             0.0)
            flat_resp = flat_vals * np.repeat(
                scale, np.diff(offsets))
            np.add.at(z_weight, (structure.flat_src, structure.flat_dst),
                      flat_resp)
            np.add.at(z_bucket,
                      (structure.flat_src, structure.flat_dst,
                       structure.flat_bucket), flat_resp)
        # -- MAP M-step -----------------------------------------------------
        background = ((priors.background_shape - 1.0 + z_background)
                      / (priors.background_rate + events.n_bins))
        background = np.maximum(background, 1e-12)
        lag_cdf = np.cumsum(lag_pmf, axis=2)
        exposure = structure.exposure(lag_cdf)
        weights = ((priors.weight_shape - 1.0 + z_weight)
                   / (priors.weight_rate + exposure))
        weights = np.maximum(weights, 0.0)
        conc = priors.impulse_concentration - 1.0 + z_bucket
        conc = np.maximum(conc, 1e-12)
        buckets = conc / conc.sum(axis=2, keepdims=True)

        params = HawkesParams(background=background, weights=weights,
                              impulse=basis.expand(buckets))
        current_ll = discrete_log_likelihood(params, events)
        if abs(current_ll - previous_ll) < tol * (1 + abs(previous_ll)):
            previous_ll = current_ll
            break
        previous_ll = current_ll

    params = HawkesParams(background=background, weights=weights,
                          impulse=basis.expand(buckets))
    return FitResult(
        params=params,
        log_likelihood=previous_ll,
        n_iterations=iterations_run,
    )
