"""Lag-PMF parameterizations for the impulse response.

The paper decomposes each impulse response into a scalar weight
``W[k -> k']`` and a PMF ``G[k -> k'][d]`` over lags ``d = 1..D`` bins
(Section 5.1).  Two parameterizations are provided:

* :class:`DirichletLagBasis` — one free PMF value per lag bin with a
  symmetric Dirichlet prior.  Faithful but high-dimensional for
  ``D = 720``.
* :class:`LogBinnedLagBasis` — lags are grouped into logarithmically
  spaced buckets; the PMF is uniform within a bucket.  This acts like the
  smooth logistic-normal impulse of Linderman & Adams while keeping
  conjugacy, and is the default used by the corpus pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LagBasis:
    """Maps between lag bins ``1..max_lag`` and coarse basis buckets."""

    max_lag: int
    #: ``bucket_of[d-1]`` is the bucket index of lag ``d``.
    bucket_of: np.ndarray
    #: Number of lags inside each bucket.
    bucket_sizes: np.ndarray

    def __post_init__(self) -> None:
        if len(self.bucket_of) != self.max_lag:
            raise ValueError("bucket_of must have max_lag entries")
        if self.bucket_sizes.sum() != self.max_lag:
            raise ValueError("bucket sizes must sum to max_lag")

    @property
    def n_buckets(self) -> int:
        return len(self.bucket_sizes)

    def expand(self, bucket_pmf: np.ndarray) -> np.ndarray:
        """Expand bucket probabilities to a full per-lag PMF.

        Probability mass assigned to a bucket is spread uniformly over
        the lags it covers, so the result sums to 1 over lags ``1..D``.
        """
        bucket_pmf = np.asarray(bucket_pmf, dtype=np.float64)
        if bucket_pmf.shape[-1] != self.n_buckets:
            raise ValueError("bucket_pmf has wrong number of buckets")
        per_lag = bucket_pmf[..., self.bucket_of] / self.bucket_sizes[self.bucket_of]
        return per_lag

    def contract(self, lag_pmf: np.ndarray) -> np.ndarray:
        """Sum a full per-lag PMF down to bucket probabilities."""
        lag_pmf = np.asarray(lag_pmf, dtype=np.float64)
        if lag_pmf.shape[-1] != self.max_lag:
            raise ValueError("lag_pmf has wrong number of lags")
        out = np.zeros(lag_pmf.shape[:-1] + (self.n_buckets,))
        np.add.at(out.reshape(-1, self.n_buckets),
                  (slice(None), self.bucket_of),
                  lag_pmf.reshape(-1, self.max_lag))
        return out


def DirichletLagBasis(max_lag: int) -> LagBasis:
    """Full-resolution basis: every lag is its own bucket."""
    return LagBasis(
        max_lag=max_lag,
        bucket_of=np.arange(max_lag, dtype=np.int64),
        bucket_sizes=np.ones(max_lag, dtype=np.int64),
    )


def LogBinnedLagBasis(max_lag: int, n_buckets: int = 12) -> LagBasis:
    """Logarithmically spaced buckets over lags ``1..max_lag``.

    The first buckets cover single small lags (1, 2, 3 min...) and later
    buckets grow geometrically, mirroring how influence between posts
    decays: fine resolution for re-shares within minutes, coarse for the
    multi-hour tail.
    """
    if n_buckets < 1:
        raise ValueError("need at least one bucket")
    if n_buckets >= max_lag:
        return DirichletLagBasis(max_lag)
    # Geometric edges from 1 to max_lag+1, deduplicated and forced to
    # include both endpoints.
    raw = np.geomspace(1, max_lag + 1, n_buckets + 1)
    edges = np.unique(np.round(raw).astype(np.int64))
    edges[0], edges[-1] = 1, max_lag + 1
    edges = np.unique(edges)
    bucket_of = np.empty(max_lag, dtype=np.int64)
    sizes = []
    for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        bucket_of[lo - 1:hi - 1] = i
        sizes.append(hi - lo)
    return LagBasis(
        max_lag=max_lag,
        bucket_of=bucket_of,
        bucket_sizes=np.array(sizes, dtype=np.int64),
    )
