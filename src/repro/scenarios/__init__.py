"""Scenario registry: named, versioned presets over K-platform ecosystems.

A :class:`Scenario` bundles a :class:`~repro.synthesis.world.WorldConfig`
(volumes, bot mix, extra platforms), an
:class:`~repro.platforms.registry.Ecosystem` (the K platforms, the
influence-process axes, community routing, and the corpus selection
rule), a :class:`~repro.config.HawkesConfig`, and a fit method.  The
built-in presets:

============== ==== =====================================================
name             K  what it is
============== ==== =====================================================
minimal          8  tiny paper-shaped world for CI smokes and benchmarks
web-centipede    8  the paper; bit-identical to bare ``Study()`` defaults
gab              4  paper triple + a Gab-style platform, platform-level
                    processes (Reddit, /pol/, Twitter, Gab)
election-week    8  Nov 2016 election-week world (the example study)
bot-amplification 8 bot-heavy Twitter population for counterfactuals
============== ==== =====================================================

Use them through the session surface::

    from repro import Study

    study = Study(scenario="gab")
    result = study.influence()        # 4x4 influence matrices
    print(study.table(1).render())    # Gab row included

or from the CLI: ``repro scenarios list`` / ``repro scenarios run gab``.
Scenario name and version participate in artifact keys, so presets
cache independently of each other and of bare ``Study()`` runs.
"""

from .registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from . import presets
from .presets import GAB_SPEC

__all__ = [
    "GAB_SPEC",
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "presets",
    "register_scenario",
    "scenario_names",
]
