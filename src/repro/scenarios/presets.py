"""The built-in scenario presets.

``web-centipede`` is the paper itself and is pinned bit-identical to
the bare ``Study()`` defaults (a golden test enforces this); the other
presets are the ecosystem variations the paper's framing invites —
a Gab-style fourth platform, the election week at higher zoom, and a
bot-heavy Twitter — plus a ``minimal`` smoke preset sized for CI.
"""

from __future__ import annotations

from ..config import HawkesConfig
from ..platforms.registry import PAPER_ECOSYSTEM, PlatformSpec, make_ecosystem
from ..synthesis.users import PopulationShape
from ..synthesis.world import WorldConfig
from .registry import Scenario, register_scenario

#: Quick-fit Hawkes settings for the non-paper presets: EM-friendly
#: Gibbs budget, same binning/priors as the paper config.
_FAST_HAWKES = HawkesConfig(gibbs_iterations=30, gibbs_burn_in=10)

#: Gab as a K-th platform: an alternative-leaning generic forum that
#: couples a bit more strongly into the ecosystem than the aggregate
#: extras do (its Reddit-refugee dynamics in the follow-up literature).
GAB_SPEC = PlatformSpec(
    key="gab", display="Gab", kind="generic",
    process="Gab", code="G", communities=("Gab",),
    background_alternative=0.0012,
    background_mainstream=0.0006,
    self_excitation=0.09,
    coupling=0.035,
    incoming_weight=0.045,
    ambient_ratio=380.0,
    n_users=500,
)

MINIMAL = register_scenario(Scenario(
    name="minimal",
    version=1,
    title="Minimal smoke world",
    description=("Tiny paper-shaped world sized for CI smokes and "
                 "benchmarks: same triple, same selection rule, EM fits."),
    world=WorldConfig(seed=11, n_stories_alternative=220,
                      n_stories_mainstream=650, n_twitter_users=250,
                      n_reddit_users=200, n_generic_subreddits=30),
    ecosystem=PAPER_ECOSYSTEM,
    hawkes=_FAST_HAWKES,
    method="em",
))

WEB_CENTIPEDE = register_scenario(Scenario(
    name="web-centipede",
    version=1,
    title="The Web Centipede (IMC 2017)",
    description=("The paper's study: Twitter, six subreddits, and /pol/ "
                 "over Jun 2016 - Feb 2017, Gibbs-fitted 8-process "
                 "Hawkes corpus.  Bit-identical to Study() defaults."),
    world=WorldConfig(),
    ecosystem=PAPER_ECOSYSTEM,
    hawkes=HawkesConfig(),
    method="gibbs",
))

GAB = register_scenario(Scenario(
    name="gab",
    version=1,
    title="Gab joins the ecosystem (K=4)",
    description=("The paper's triple plus a Gab-style generic platform; "
                 "subreddits merge into one Reddit process, so the "
                 "influence matrix is 4x4 (Reddit, /pol/, Twitter, Gab)."),
    world=WorldConfig(seed=23, n_stories_alternative=1200,
                      n_stories_mainstream=3600, n_twitter_users=1500,
                      n_reddit_users=1200, n_generic_subreddits=120,
                      extra_platforms=(GAB_SPEC,)),
    ecosystem=make_ecosystem("gab", extras=(GAB_SPEC,),
                             merge_subreddits=True),
    hawkes=_FAST_HAWKES,
    method="em",
))

ELECTION_WEEK = register_scenario(Scenario(
    name="election-week",
    version=1,
    title="US election week zoom",
    description=("The paper's ecosystem seeded on the Nov 2016 election "
                 "week (the example study's configuration), EM fits."),
    world=WorldConfig(seed=1108, n_stories_alternative=800,
                      n_stories_mainstream=2400, n_twitter_users=1000,
                      n_reddit_users=800),
    ecosystem=PAPER_ECOSYSTEM,
    hawkes=_FAST_HAWKES,
    method="em",
))

BOT_AMPLIFICATION = register_scenario(Scenario(
    name="bot-amplification",
    version=1,
    title="Bot-amplified alternative news",
    description=("The paper's ecosystem with a bot-heavy Twitter "
                 "population (more alternative-only authors, almost all "
                 "bots), for counterfactual bot-filtering studies."),
    world=WorldConfig(seed=404, n_stories_alternative=700,
                      n_stories_mainstream=2100, n_twitter_users=1200,
                      n_reddit_users=800,
                      twitter_shape=PopulationShape(
                          mainstream_only=0.70,
                          alternative_only=0.21,
                          bot_fraction_of_alt_only=0.95)),
    ecosystem=PAPER_ECOSYSTEM,
    hawkes=_FAST_HAWKES,
    method="em",
))
