"""The scenario dataclass and the named, versioned preset registry."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import HawkesConfig
from ..platforms.registry import Ecosystem
from ..synthesis.world import WorldConfig


@dataclass(frozen=True)
class Scenario:
    """A named, versioned preset bundling everything one run needs.

    A scenario fixes the WorldConfig (volumes, bot mix, extra
    platforms), the ecosystem (K platforms, influence processes,
    community routing, corpus selection rule), the HawkesConfig, and
    the fit method.  ``Study(scenario=...)`` resolves its defaults from
    here, and the scenario id participates in artifact keys so presets
    cache independently.
    """

    name: str
    version: int
    title: str
    description: str
    world: WorldConfig
    ecosystem: Ecosystem
    hawkes: HawkesConfig = field(default_factory=HawkesConfig)
    method: str = "gibbs"

    @property
    def scenario_id(self) -> str:
        """Stable identity used in artifact keys, e.g. ``gab@v1``."""
        return f"{self.name}@v{self.version}"

    @property
    def k(self) -> int:
        """Number of influence processes (the K of the KxK matrix)."""
        return len(self.ecosystem.processes)


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register a scenario under its name; refuses silent clobbers."""
    if scenario.name in _REGISTRY and not replace:
        existing = _REGISTRY[scenario.name]
        if existing != scenario:
            raise ValueError(
                f"scenario {scenario.name!r} already registered "
                f"(as {existing.scenario_id}); pass replace=True")
        return existing
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str | Scenario) -> Scenario:
    """Look a scenario up by name (``gab``) or id (``gab@v1``)."""
    if isinstance(name, Scenario):
        return name
    base, _, version = name.partition("@")
    scenario = _REGISTRY.get(base)
    if scenario is None:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
    if version and scenario.scenario_id != name:
        raise KeyError(
            f"scenario {base!r} is registered as {scenario.scenario_id}, "
            f"not {name!r}")
    return scenario


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())
