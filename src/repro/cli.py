"""Command-line interface.

Every analysis command is a thin adapter over :class:`repro.Study`
(:mod:`repro.api`): build a session from the flags, ask it for the
products, print.  ``--cache DIR`` shares the session's artifact store
across commands and processes, so e.g. ``repro report`` after
``repro validate --cache .repro-cache`` never regenerates the world.

Usage::

    python -m repro world --seed 7 --out data/           # generate + crawl
    python -m repro live --seed 7                        # streaming engine
    python -m repro serve --port 8731                    # HTTP query service
    python -m repro reproduce --table 4                  # one experiment
    python -m repro experiments                          # EXPERIMENTS.md
    python -m repro list [--json]                        # experiment index
    python -m repro scenarios list [--json]              # scenario presets
    python -m repro scenarios run gab                    # one preset, KxK
    python -m repro stats --cache DIR --trace FILE       # run metrics

``report``, ``validate``, ``serve``, and ``live`` also accept
``--scenario NAME``, which swaps in a registered preset's world,
ecosystem, and fit settings (the world flags are then ignored).

``-v`` / ``-vv`` (before or after the subcommand) raises the stdlib
logging level, surfacing live-engine summaries and HTTP access logs
that are suppressed by default.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path

from .paper import EXPERIMENTS, by_id


def _configure_logging(verbosity: int) -> None:
    """Map ``-v`` counts to stdlib logging levels (WARNING by default).

    ``repro.*`` loggers (live summaries, HTTP access lines) emit at
    INFO/DEBUG, so without ``-v`` the tools stay as quiet as before.
    """
    level = (logging.WARNING if verbosity <= 0
             else logging.INFO if verbosity == 1
             else logging.DEBUG)
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--stories-alt", type=int, default=1100)
    parser.add_argument("--stories-main", type=int, default=3300)
    parser.add_argument("--twitter-users", type=int, default=1500)
    parser.add_argument("--reddit-users", type=int, default=1200)


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for Hawkes corpus fitting (-1 = all "
             "cores); results are identical for any value")


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=("per-url", "batched"), default="per-url",
        help="corpus fit execution strategy: 'per-url' fits one cascade "
             "at a time (golden reference); 'batched' packs each chunk "
             "into one array program and switches the fit method to EM "
             "(results match per-url EM to floating-point tolerance)")


def _add_scenario_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run a registered scenario preset (see `repro scenarios "
             "list`); the world and Hawkes flags are ignored when set")


def _add_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="artifact-cache directory; identical configurations reuse "
             "each other's stage artifacts across processes")


def _add_verbose_arg(parser: argparse.ArgumentParser,
                     suppress_default: bool = False) -> None:
    # Subparsers get default=SUPPRESS so `repro -v live` survives: an
    # absent subcommand flag then leaves the main parser's value alone
    # instead of resetting it to 0.
    parser.add_argument(
        "-v", "--verbose", action="count",
        default=argparse.SUPPRESS if suppress_default else 0,
        help="log progress via stdlib logging (-v INFO, -vv DEBUG)")


def _publish_metrics(study) -> None:
    """Publish this process's metrics snapshot into the study's store.

    Lets ``repro stats --cache DIR`` report on the run afterwards; a
    no-op for in-memory stores (nothing would outlive the process) or
    with metrics disabled.
    """
    from .obs import get_registry, publish_snapshot
    registry = get_registry()
    if study.store.root is not None and registry.enabled:
        publish_snapshot(study.store, registry.snapshot())


def _world_config(args: argparse.Namespace):
    from .synthesis import WorldConfig
    return WorldConfig(
        seed=args.seed,
        n_stories_alternative=args.stories_alt,
        n_stories_mainstream=args.stories_main,
        n_twitter_users=args.twitter_users,
        n_reddit_users=args.reddit_users,
    )


def _study(args: argparse.Namespace, **overrides):
    """The Study session every analysis command adapts over."""
    from .api import Study
    from .config import HawkesConfig
    kwargs = {
        "max_urls": getattr(args, "max_urls", None),
        "n_jobs": getattr(args, "jobs", 1),
        "engine": getattr(args, "engine", "per-url"),
        "cache_dir": getattr(args, "cache", None),
    }
    scenario = getattr(args, "scenario", None)
    if scenario is not None:
        # A preset bundles world + ecosystem + Hawkes config + method;
        # the generic world/seed flags don't apply on this path.
        kwargs["scenario"] = scenario
    else:
        kwargs.update({
            "world": _world_config(args),
            "hawkes": HawkesConfig(gibbs_iterations=30, gibbs_burn_in=10),
            "fit_seed": args.seed,
        })
    if kwargs["engine"] == "batched":
        # The batched engine only exists for EM; the CLI's default fit
        # method is Gibbs, so --engine batched selects EM rather than
        # erroring out of the Study constructor.
        kwargs["method"] = "em"
    kwargs.update(overrides)
    return Study(**kwargs)


def cmd_world(args: argparse.Namespace) -> int:
    """Generate a world, crawl it, and save the datasets as JSONL."""
    data = _study(args).data
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    data.twitter.save_jsonl(out / "twitter.jsonl")
    data.reddit.save_jsonl(out / "reddit.jsonl")
    data.fourchan.save_jsonl(out / "fourchan.jsonl")
    print(f"wrote {len(data.twitter)} twitter, {len(data.reddit)} reddit, "
          f"{len(data.fourchan)} 4chan records to {out}/")
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    """Stream a synthetic world (or saved JSONL) through the live engine."""
    from .config import SEQUENCE_PLATFORMS
    from .live import (
        EventBus,
        LiveEngine,
        RefitPolicy,
        WindowedHawkesRefitter,
        jsonl_batch_source,
        jsonl_source,
    )
    from .news.domains import NewsCategory
    from .reporting import render_table

    if args.resume and args.checkpoint is None:
        print("--resume needs --checkpoint", file=sys.stderr)
        return 2
    scenario = None
    if args.scenario is not None:
        from .scenarios import get_scenario
        scenario = get_scenario(args.scenario)
        print(f"scenario {scenario.scenario_id} "
              f"(K={scenario.k}: {', '.join(scenario.ecosystem.processes)})")
    ecosystem = scenario.ecosystem if scenario is not None else None
    supervised = (args.chaos_seed is not None
                  or args.quarantine is not None)
    # Replay straight from JSONL as column chunks when nothing needs
    # per-row supervision; supervised sources stay row streams (the
    # quarantine inspects individual records) and the bus re-packs
    # them for the columnar drain.
    batch_replay = (args.replay and not supervised
                    and args.batch_size is not None)
    if args.replay:
        factories = []
        taken: set[str] = set()
        for i, path in enumerate(args.replay):
            name = Path(path).stem
            if name in taken:
                name = f"{name}#{i}"
            taken.add(name)
            if batch_replay:
                factories.append(
                    (name, lambda p=path: jsonl_batch_source(
                        p, batch_size=args.batch_size)))
            else:
                factories.append((name, lambda p=path: jsonl_source(p)))
    else:
        from .pipeline import stream_source_factories
        from .synthesis.world import build_world
        print("generating world ...")
        config = (scenario.world if scenario is not None
                  else _world_config(args))
        world = build_world(config)
        factories = stream_source_factories(world, stream_seed=args.seed)
    quarantine = None
    if supervised:
        # Supervised ingest: transient faults restart the source with
        # deterministic replay; malformed records go to the quarantine
        # sidecar instead of killing the run.  --chaos-seed injects a
        # reproducible fault schedule in front of each source.
        from .resilience import FaultPlan, Quarantine, supervised_source
        quarantine = Quarantine(args.quarantine)
        plan = (FaultPlan(args.chaos_seed)
                if args.chaos_seed is not None else None)
        sources = []
        for name, factory in factories:
            if plan is not None:
                faults = plan.source(name)
                factory = (lambda f=factory, inj=faults: inj.wrap(f()))
            sources.append((name, supervised_source(
                name, factory, quarantine=quarantine)))
    else:
        sources = [(name, factory()) for name, factory in factories]
    if batch_replay:
        bus = EventBus()
        for name, batches in sources:
            bus.add_batch_source(name, batches)
    else:
        bus = EventBus(sources)
    refitter = None
    if not args.skip_refit:
        refitter = WindowedHawkesRefitter(
            policy=RefitPolicy(every_records=args.refit_every,
                               max_urls=args.refit_max_urls,
                               n_jobs=args.jobs,
                               engine=args.engine),
            seed=args.seed,
            ecosystem=ecosystem)
    publish_store = None
    if args.cache is not None:
        from .api import ArtifactStore
        publish_store = ArtifactStore(args.cache)
    # Rolling summaries go through the "repro.live" logger: visible
    # with -v, quiet otherwise (the final tables always print).
    engine = LiveEngine(
        bus,
        refitter=refitter,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        summary_every=args.summary_every,
        publish_store=publish_store,
        ecosystem=ecosystem,
        batch_size=args.batch_size,
        checkpoint_format=args.checkpoint_format)
    if args.resume and Path(args.checkpoint).exists():
        engine.restore()
        print(f"resumed at {engine.records_seen} records "
              f"from {args.checkpoint}")
    engine.run(limit=args.limit)

    final = engine.summary()
    print(final.format())
    for category in (NewsCategory.ALTERNATIVE, NewsCategory.MAINSTREAM):
        rows = engine.first_hops.first_hop(category)
        if rows:
            print(render_table(
                ["Sequence", "URLs", "%"],
                [[r.sequence, str(r.count), f"{r.percentage:.1f}"]
                 for r in rows],
                title=f"First-hop sequences — {category.value}"))
    slices = (ecosystem.slices if ecosystem is not None
              else SEQUENCE_PLATFORMS)
    top = [[name] + [
        f"{row.name} ({row.percentage:.1f}%)"
        for row in engine.domains.top_domains(
            name, NewsCategory.ALTERNATIVE, 3)]
        for name in slices]
    width = max(len(row) for row in top)
    print(render_table(
        ["Slice"] + [f"#{i + 1}" for i in range(width - 1)],
        [row + [""] * (width - len(row)) for row in top],
        title="Top alternative domains per slice"))
    if refitter is not None and refitter.last_result is not None:
        fits = refitter.last_result.fits
        print(f"last refit: {len(fits)} URLs fitted "
              f"({refitter.n_refits} refits total)")
    if quarantine is not None:
        where = (f" -> {args.quarantine}"
                 if args.quarantine is not None else "")
        print(f"quarantined {quarantine.count} records{where}")
        for reason, count in sorted(quarantine.by_reason().items()):
            print(f"  {count:6d}  {reason}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """Print the experiment index (``--json`` for machine-readable)."""
    if args.json:
        from .api.serialize import experiments_payload
        print(json.dumps(experiments_payload(), indent=2, sort_keys=True))
        return 0
    for experiment in EXPERIMENTS:
        print(f"{experiment.exp_id:10s} {experiment.title}")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List scenario presets, or run one end-to-end (KxK influence)."""
    from .scenarios import all_scenarios, get_scenario
    if args.action == "list":
        if args.json:
            from .api.serialize import scenarios_payload
            print(json.dumps(scenarios_payload(), indent=2, sort_keys=True))
            return 0
        for scenario in all_scenarios():
            print(f"{scenario.scenario_id:18s} K={scenario.k}  "
                  f"{scenario.title}")
        return 0
    from .api import Study
    from .news.domains import NewsCategory
    from .reporting import render_table
    scenario = get_scenario(args.name)
    print(f"running {scenario.scenario_id} "
          f"(K={scenario.k}: {', '.join(scenario.ecosystem.processes)})")
    study = Study(scenario=scenario, max_urls=args.max_urls,
                  n_jobs=args.jobs, cache_dir=args.cache)
    result = study.influence()
    processes = result.processes
    for category in (NewsCategory.ALTERNATIVE, NewsCategory.MAINSTREAM):
        stack = result.weight_stack(category)
        if not len(stack):
            continue
        mean = stack.mean(axis=0)
        print(render_table(
            ["W src\\dst"] + list(processes),
            [[src] + [f"{mean[i, j]:.4f}"
                      for j in range(len(processes))]
             for i, src in enumerate(processes)],
            title=f"Mean weights — {category.value} "
                  f"({scenario.k}x{scenario.k})"))
    if args.report is not None:
        path = study.write_report(args.report)
        print(f"wrote {path}")
    _publish_metrics(study)
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run one experiment's benchmark via pytest."""
    try:
        experiment = by_id(args.experiment)
    except KeyError:
        matches = [e for e in EXPERIMENTS
                   if args.experiment.lower() in e.exp_id.lower()]
        if len(matches) != 1:
            print(f"unknown experiment {args.experiment!r}; "
                  "try `python -m repro list`", file=sys.stderr)
            return 2
        experiment = matches[0]
    import pytest
    print(f"running {experiment.bench} ...")
    return pytest.main([experiment.bench, "--benchmark-only", "-q"])


def cmd_validate(args: argparse.Namespace) -> int:
    """Generate a world and run every paper-claim shape check."""
    from .validation import (
        summarize_checks,
        validate_collected,
        validate_influence,
    )
    study = _study(args)
    checks = validate_collected(study.data)
    if not args.skip_influence:
        checks.extend(validate_influence(study.influence()))
    print(summarize_checks(checks))
    _publish_metrics(study)
    return 0 if all(c.passed for c in checks) else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Generate a world and write a full study report (markdown)."""
    study = _study(args)
    path = study.write_report(
        args.out, include_influence=not args.skip_influence)
    print(f"wrote {path}")
    _publish_metrics(study)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve tables and influence results over HTTP (JSON + ETag/304).

    SIGTERM and SIGINT trigger a graceful shutdown: the accept loop
    stops, in-flight requests finish (bounded wait), then the socket
    closes — so ``kill`` during a long table render never truncates a
    response mid-body.
    """
    import signal
    import threading
    from .api import StudyService
    study = _study(args)
    service = StudyService(study, host=args.host, port=args.port)
    print(f"serving http://{args.host}:{service.port}/ "
          "(endpoints: /healthz /experiments /scenarios /tables/<1-11> "
          "/influence /stages /metrics)")
    stop = threading.Event()
    previous = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(
                signum, lambda *_: stop.set())
    except ValueError:  # not the main thread (embedded use): no signals
        pass
    server = threading.Thread(target=service.serve_forever,
                              name="repro-serve", daemon=True)
    server.start()
    try:
        stop.wait()
    except KeyboardInterrupt:  # signal handler not installed
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("shutting down (draining in-flight requests)")
        drained = service.drain()
        server.join(timeout=5.0)
        if not drained:
            print("drain timed out; some requests were cut off",
                  file=sys.stderr)
    return 0 if drained else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Report run metrics from an artifact cache and/or a trace file."""
    if args.cache is None and args.trace is None:
        print("stats needs --cache DIR and/or --trace FILE",
              file=sys.stderr)
        return 2
    status = 0
    if args.cache is not None:
        from .api import ArtifactStore
        from .obs import METRICS_REF, render_text
        store = ArtifactStore(args.cache)
        key = store.get_ref(METRICS_REF)
        snapshot = store.get(key) if key is not None else None
        if snapshot is None:
            print(f"no metrics snapshot published under {args.cache!r} "
                  f"(ref {METRICS_REF!r}); run e.g. `repro report "
                  f"--cache {args.cache}` first", file=sys.stderr)
            status = 1
        elif args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(render_text(snapshot))
    if args.trace is not None:
        from .obs import summarize_trace
        from .reporting import render_table
        try:
            summary = summarize_trace(args.trace)
        except OSError as exc:
            print(f"cannot read trace {args.trace!r}: {exc}",
                  file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(summary, indent=2))
        elif not summary:
            print(f"trace {args.trace} holds no spans")
        else:
            print(render_table(
                ["Span", "Count", "Wall s", "CPU s", "Mean s", "Max s"],
                [[name, str(agg["count"]), f"{agg['wall_s']:.3f}",
                  f"{agg['cpu_s']:.3f}", f"{agg['mean_wall_s']:.4f}",
                  f"{agg['max_wall_s']:.4f}"]
                 for name, agg in summary.items()],
                title=f"Trace summary — {args.trace}"))
    return status


def cmd_experiments(args: argparse.Namespace) -> int:
    """Regenerate EXPERIMENTS.md from results/ artifacts."""
    from .reporting.experiments import write_experiments_md
    path = write_experiments_md(args.out, args.results)
    print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web Centipede reproduction toolkit")
    _add_verbose_arg(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    world = sub.add_parser("world", help=cmd_world.__doc__)
    _add_world_args(world)
    world.add_argument("--out", default="data")
    _add_cache_arg(world)
    world.set_defaults(func=cmd_world)

    live = sub.add_parser("live", help=cmd_live.__doc__)
    _add_world_args(live)
    _add_scenario_arg(live)
    live.add_argument("--replay", nargs="+", metavar="JSONL",
                      help="replay saved datasets instead of a new world")
    live.add_argument("--limit", type=int, default=None,
                      help="stop after this many records")
    live.add_argument("--summary-every", type=int, default=2000)
    live.add_argument("--checkpoint", default=None,
                      help="checkpoint file (JSON)")
    live.add_argument("--checkpoint-every", type=int, default=20000)
    live.add_argument("--checkpoint-format", default="json",
                      choices=("json", "binary"),
                      help="checkpoint encoding: human-readable JSON or "
                           "compact npz inside the store's sha256 frame "
                           "(restore reads either)")
    live.add_argument("--batch-size", type=int, default=None, metavar="N",
                      help="drain the bus as columnar chunks of N records "
                           "(vectorized aggregators, same results as the "
                           "default per-row drain)")
    live.add_argument("--resume", action="store_true",
                      help="restore from --checkpoint before streaming")
    live.add_argument("--skip-refit", action="store_true")
    live.add_argument("--refit-every", type=int, default=25000)
    live.add_argument("--refit-max-urls", type=int, default=50)
    live.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                      help="inject a seeded, reproducible fault schedule "
                           "(transient source errors + malformed records) "
                           "in front of every source; implies supervised "
                           "ingest")
    live.add_argument("--quarantine", default=None, metavar="JSONL",
                      help="supervise sources and append quarantined "
                           "records to this dead-letter sidecar")
    _add_jobs_arg(live)
    _add_engine_arg(live)
    _add_cache_arg(live)
    live.set_defaults(func=cmd_live)

    scenarios = sub.add_parser("scenarios", help=cmd_scenarios.__doc__)
    scenario_sub = scenarios.add_subparsers(dest="action", required=True)
    scenarios_list = scenario_sub.add_parser(
        "list", help="list registered scenario presets")
    scenarios_list.add_argument(
        "--json", action="store_true",
        help="machine-readable output (same serializer as /scenarios)")
    scenarios_list.set_defaults(func=cmd_scenarios)
    scenarios_run = scenario_sub.add_parser(
        "run", help="run one preset and print its KxK weight matrices")
    scenarios_run.add_argument("name", help='e.g. "gab" or "gab@v1"')
    scenarios_run.add_argument("--max-urls", type=int, default=120)
    scenarios_run.add_argument("--report", default=None, metavar="MD",
                               help="also write the full study report here")
    _add_jobs_arg(scenarios_run)
    _add_cache_arg(scenarios_run)
    scenarios_run.set_defaults(func=cmd_scenarios)

    listing = sub.add_parser("list", help=cmd_list.__doc__)
    listing.add_argument("--json", action="store_true",
                         help="machine-readable output (same serializer "
                              "as the /experiments endpoint)")
    listing.set_defaults(func=cmd_list)

    reproduce = sub.add_parser("reproduce", help=cmd_reproduce.__doc__)
    reproduce.add_argument("experiment",
                           help='e.g. "Table 4" or "Figure 10"')
    reproduce.set_defaults(func=cmd_reproduce)

    validate = sub.add_parser("validate", help=cmd_validate.__doc__)
    _add_world_args(validate)
    _add_scenario_arg(validate)
    validate.add_argument("--skip-influence", action="store_true")
    validate.add_argument("--max-urls", type=int, default=150)
    _add_jobs_arg(validate)
    _add_engine_arg(validate)
    _add_cache_arg(validate)
    validate.set_defaults(func=cmd_validate)

    report = sub.add_parser("report", help=cmd_report.__doc__)
    _add_world_args(report)
    _add_scenario_arg(report)
    report.add_argument("--out", default="STUDY_REPORT.md")
    report.add_argument("--skip-influence", action="store_true")
    report.add_argument("--max-urls", type=int, default=120)
    _add_jobs_arg(report)
    _add_engine_arg(report)
    _add_cache_arg(report)
    report.set_defaults(func=cmd_report)

    serve = sub.add_parser("serve", help=cmd_serve.__doc__)
    _add_world_args(serve)
    _add_scenario_arg(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731)
    serve.add_argument("--max-urls", type=int, default=120)
    _add_jobs_arg(serve)
    _add_engine_arg(serve)
    _add_cache_arg(serve)
    serve.set_defaults(func=cmd_serve)

    stats = sub.add_parser("stats", help=cmd_stats.__doc__)
    stats.add_argument("--cache", default=None, metavar="DIR",
                       help="artifact-cache directory a run published "
                            "its metrics snapshot into")
    stats.add_argument("--trace", default=None, metavar="FILE",
                       help="REPRO_TRACE JSONL file to aggregate")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable output")
    stats.set_defaults(func=cmd_stats)

    experiments = sub.add_parser("experiments",
                                 help=cmd_experiments.__doc__)
    experiments.add_argument("--out", default="EXPERIMENTS.md")
    experiments.add_argument("--results", default="results")
    experiments.set_defaults(func=cmd_experiments)

    for command in sub.choices.values():
        _add_verbose_arg(command, suppress_default=True)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    verbosity = getattr(args, "verbose", 0)
    _configure_logging(verbosity)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        # One-line diagnosis for operators; the full traceback is a
        # debugging tool, available on request via -vv.
        if verbosity >= 2:
            raise
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
