"""Time utilities shared across the reproduction.

All timestamps in the library are POSIX epoch seconds stored as plain
``int``/``float``.  The study window and crawler gap windows from the
paper are expressed as half-open intervals ``[start, end)`` of epoch
seconds; this module provides the conversions and interval arithmetic
used everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, Iterator, Sequence

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400


def utc(year: int, month: int, day: int, hour: int = 0, minute: int = 0,
        second: int = 0) -> int:
    """Return the epoch second for a UTC calendar timestamp."""
    dt = datetime(year, month, day, hour, minute, second, tzinfo=timezone.utc)
    return int(dt.timestamp())


def to_datetime(epoch: float) -> datetime:
    """Convert an epoch second to an aware UTC :class:`datetime`."""
    return datetime.fromtimestamp(epoch, tz=timezone.utc)


def day_index(epoch: float, origin: float) -> int:
    """Return the zero-based day bucket of ``epoch`` relative to ``origin``."""
    return int((epoch - origin) // SECONDS_PER_DAY)


def minute_index(epoch: float, origin: float) -> int:
    """Return the zero-based minute bucket of ``epoch`` relative to ``origin``."""
    return int((epoch - origin) // SECONDS_PER_MINUTE)


@dataclass(frozen=True)
class Interval:
    """A half-open time interval ``[start, end)`` in epoch seconds."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def contains(self, epoch: float) -> bool:
        return self.start <= epoch < self.end

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Interval") -> "Interval | None":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def iter_days(self) -> Iterator[int]:
        """Yield the epoch second at midnight UTC of each day touched."""
        day = self.start - (self.start % SECONDS_PER_DAY)
        while day < self.end:
            yield day
            day += SECONDS_PER_DAY


def in_any_interval(epoch: float, intervals: Sequence[Interval]) -> bool:
    """True if ``epoch`` falls inside any of ``intervals``."""
    return any(iv.contains(epoch) for iv in intervals)


def total_overlap(interval: Interval, others: Iterable[Interval]) -> int:
    """Total seconds of ``interval`` covered by ``others`` (assumed disjoint)."""
    covered = 0
    for other in others:
        cut = interval.intersect(other)
        if cut is not None:
            covered += cut.duration
    return covered


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge overlapping/adjacent intervals into a minimal disjoint list."""
    ordered = sorted(intervals, key=lambda iv: iv.start)
    merged: list[Interval] = []
    for iv in ordered:
        if merged and iv.start <= merged[-1].end:
            last = merged[-1]
            merged[-1] = Interval(last.start, max(last.end, iv.end))
        else:
            merged.append(iv)
    return merged
