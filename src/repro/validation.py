"""Shape validation: the paper's qualitative claims as runnable checks.

A reproduction on synthetic (or future re-collected) data cannot match
absolute counts, but the paper's *claims* are checkable predicates:
who dominates which ranking, which direction each asymmetry points,
where distributions sit relative to each other.  This module encodes
them; :func:`validate_collected` and :func:`validate_influence` run all
applicable checks and return structured results (also available via
``python -m repro`` benchmarks, which assert the same predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .analysis import characterization as chz
from .analysis import sequences, temporal
from .config import HAWKES_PROCESSES
from .core.influence import InfluenceResult, aggregate_weights, influence_percentages
from .news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one claim check."""

    claim: str
    source: str       # where in the paper the claim lives
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim} ({self.detail})"


def _check(claim: str, source: str, fn: Callable[[], tuple[bool, str]],
           ) -> ShapeCheck:
    try:
        passed, detail = fn()
    except Exception as exc:  # checks must never crash the report
        return ShapeCheck(claim=claim, source=source, passed=False,
                          detail=f"error: {exc}")
    return ShapeCheck(claim=claim, source=source, passed=passed,
                      detail=detail)


# ---------------------------------------------------------------------------
# Section 3-4 claims over collected datasets
# ---------------------------------------------------------------------------

def validate_collected(data) -> list[ShapeCheck]:
    """Run every Section 3-4 claim against a :class:`CollectedData`."""
    checks: list[ShapeCheck] = []

    def mainstream_dominates() -> tuple[bool, str]:
        values = []
        for dataset in (data.twitter, data.reddit, data.fourchan):
            alt = dataset.url_post_count(ALT)
            main = dataset.url_post_count(MAIN)
            values.append((alt, main))
        passed = all(main > alt for alt, main in values)
        return passed, f"alt/main post counts: {values}"
    checks.append(_check(
        "mainstream news URLs outnumber alternative on every platform",
        "Table 1", mainstream_dominates))

    def breitbart_everywhere() -> tuple[bool, str]:
        tops = []
        for dataset in (data.twitter, data.reddit_six, data.pol):
            ranked = chz.top_domains(dataset, ALT, 1)
            tops.append(ranked[0].name if ranked else "none")
        return (all(t == "breitbart.com" for t in tops),
                f"top alt domains: {tops}")
    checks.append(_check(
        "breitbart.com is the top alternative domain on every platform",
        "Tables 5-7", breitbart_everywhere))

    def the_donald_tops_alt() -> tuple[bool, str]:
        ranked = chz.top_subreddits(data.reddit, ALT, 1)
        top = ranked[0].name if ranked else "none"
        return top == "The_Donald", f"top alt subreddit: {top}"
    checks.append(_check(
        "The_Donald leads subreddits on alternative URL occurrences",
        "Table 4", the_donald_tops_alt))

    def users_mostly_mainstream() -> tuple[bool, str]:
        twitter = chz.user_alternative_fraction(data.twitter)
        reddit = chz.user_alternative_fraction(data.reddit_six)
        passed = (twitter.pct_mainstream_only > 50
                  and reddit.pct_mainstream_only > 50)
        return passed, (f"main-only: twitter "
                        f"{twitter.pct_mainstream_only:.0f}%, reddit6 "
                        f"{reddit.pct_mainstream_only:.0f}%")
    checks.append(_check(
        "most users share only mainstream news",
        "Figure 3", users_mostly_mainstream))

    def twitter_bots_exist() -> tuple[bool, str]:
        twitter = chz.user_alternative_fraction(data.twitter)
        reddit = chz.user_alternative_fraction(data.reddit_six)
        passed = (twitter.pct_alternative_only
                  > reddit.pct_alternative_only)
        return passed, (f"alt-only: twitter "
                        f"{twitter.pct_alternative_only:.1f}% vs reddit6 "
                        f"{reddit.pct_alternative_only:.1f}%")
    checks.append(_check(
        "Twitter has more alternative-only (bot-like) users than Reddit",
        "Figure 3 / Section 3", twitter_bots_exist))

    def singles_dominate() -> tuple[bool, str]:
        slices = data.sequence_slices()
        shares = []
        for category in (ALT, MAIN):
            rows = sequences.first_hop_distribution(slices, category)
            single = sum(r.percentage for r in rows
                         if "only" in r.sequence)
            shares.append(single)
        return (all(s > 55 for s in shares),
                f"single-platform shares: {shares[0]:.0f}% alt, "
                f"{shares[1]:.0f}% main")
    checks.append(_check(
        "most URLs appear on a single platform",
        "Table 9", singles_dominate))

    def pol_rarely_first() -> tuple[bool, str]:
        slices = data.sequence_slices()
        ok = True
        details = []
        for category in (ALT, MAIN):
            rows = sequences.first_hop_distribution(slices, category)
            from_pol = sum(r.percentage for r in rows
                           if r.sequence.startswith("4→"))
            from_reddit = sum(r.percentage for r in rows
                              if r.sequence.startswith("R→"))
            ok = ok and from_reddit > from_pol
            details.append(f"{category.value}: R-headed "
                           f"{from_reddit:.1f}% vs 4-headed "
                           f"{from_pol:.1f}%")
        return ok, "; ".join(details)
    checks.append(_check(
        "/pol/ rarely originates cross-platform URLs",
        "Tables 9-10 / Figure 8", pol_rarely_first))

    def reddit_sees_urls_first() -> tuple[bool, str]:
        lags = temporal.cross_platform_lags(
            data.reddit_six, data.twitter, "R", "T", MAIN)
        passed = lags.n_a_first > 0.8 * lags.n_b_first
        return passed, (f"mainstream first on Reddit {lags.n_a_first} vs "
                        f"Twitter {lags.n_b_first}")
    checks.append(_check(
        "the six subreddits tend to see shared mainstream URLs first",
        "Table 8", reddit_sees_urls_first))

    def recrawl_asymmetry() -> tuple[bool, str]:
        alt = data.recrawl.alternative.retrieved_fraction
        main = data.recrawl.mainstream.retrieved_fraction
        return (alt <= main + 0.02,
                f"retrieved: alt {100 * alt:.1f}% vs main "
                f"{100 * main:.1f}%")
    checks.append(_check(
        "alternative tweets are more often unavailable on re-crawl",
        "Table 3", recrawl_asymmetry))

    return checks


# ---------------------------------------------------------------------------
# Section 5 claims over influence results
# ---------------------------------------------------------------------------

def validate_influence(result: InfluenceResult) -> list[ShapeCheck]:
    """Run every Section 5 claim against fitted influence results."""
    checks: list[ShapeCheck] = []
    agg = aggregate_weights(result)
    pct_alt = influence_percentages(result, ALT)
    pct_main = influence_percentages(result, MAIN)
    twitter = HAWKES_PROCESSES.index("Twitter")
    td = HAWKES_PROCESSES.index("The_Donald")
    pol = HAWKES_PROCESSES.index("/pol/")

    def twitter_self_max() -> tuple[bool, str]:
        passed = (agg.mean_alternative.argmax() == twitter * 8 + twitter
                  and agg.mean_mainstream.argmax()
                  == twitter * 8 + twitter)
        return passed, (f"W(T→T) = {agg.mean_alternative[twitter, twitter]:.4f} alt / "
                        f"{agg.mean_mainstream[twitter, twitter]:.4f} main")
    checks.append(_check(
        "W(Twitter→Twitter) is the largest weight in both categories",
        "Figure 10", twitter_self_max))

    def twitter_alt_self_stronger() -> tuple[bool, str]:
        alt = agg.mean_alternative[twitter, twitter]
        main = agg.mean_mainstream[twitter, twitter]
        return alt > main, f"{alt:.4f} vs {main:.4f}"
    checks.append(_check(
        "Twitter self-excitation is stronger for alternative URLs",
        "Figure 10 (paper: +41.9%, p<0.01)", twitter_alt_self_stronger))

    def fringe_influences_twitter() -> tuple[bool, str]:
        fringe = pct_alt[td, twitter] + pct_alt[pol, twitter]
        return fringe > 1.0, (f"The_Donald {pct_alt[td, twitter]:.2f}% + "
                              f"/pol/ {pct_alt[pol, twitter]:.2f}%")
    checks.append(_check(
        "The_Donald and /pol/ measurably influence Twitter's "
        "alternative news",
        "Figure 11 / Section 5.4", fringe_influences_twitter))

    def twitter_dominant_source() -> tuple[bool, str]:
        wins = 0
        for j in range(8):
            if j == twitter:
                continue
            sources = [pct_alt[i, j] for i in range(8) if i != j]
            if pct_alt[twitter, j] == max(sources):
                wins += 1
        return wins >= 4, f"Twitter top source for {wins}/7 destinations"
    checks.append(_check(
        "Twitter is the most influential single source for most "
        "destinations",
        "Figure 11", twitter_dominant_source))

    def asymmetry_td_pol() -> tuple[bool, str]:
        alt_dir = pct_alt[twitter, pol] > pct_alt[pol, twitter]
        return alt_dir, (f"T→pol {pct_alt[twitter, pol]:.2f}% vs pol→T "
                         f"{pct_alt[pol, twitter]:.2f}% (alt)")
    checks.append(_check(
        "Twitter influences /pol/ more than /pol/ influences Twitter",
        "Figure 11", asymmetry_td_pol))

    def background_rates_sane() -> tuple[bool, str]:
        from .core.influence import corpus_background_rates
        summary = corpus_background_rates(result)
        passed = bool(summary.mean_background[ALT].argmax() == twitter)
        return passed, (f"argmax λ0 alt = "
                        f"{HAWKES_PROCESSES[summary.mean_background[ALT].argmax()]}")
    checks.append(_check(
        "Twitter has the highest mean background rate",
        "Table 11", background_rates_sane))

    return checks


def summarize_checks(checks: list[ShapeCheck]) -> str:
    """Render a pass/fail report."""
    lines = []
    n_passed = sum(c.passed for c in checks)
    lines.append(f"{n_passed}/{len(checks)} claims reproduced")
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"  [{status}] {check.source}: {check.claim}")
        lines.append(f"         {check.detail}")
    return "\n".join(lines)
