"""``repro.obs`` — the stdlib-only metrics and tracing spine.

Every hot layer of the reproduction records into one ambient
:class:`MetricsRegistry` (:func:`get_registry`), and any long block of
work can be wrapped in a :func:`span` that lands in a JSONL trace when
``REPRO_TRACE=/path.jsonl`` is set.  Instrumentation never draws
randomness and the disabled registry (``REPRO_METRICS=0``) is a true
no-op, so instrumented code paths stay bit-identical — pinned by
golden-equivalence tests against untraced fits.

Metrics catalog, stage by stage
===============================

**Live ingest** (:mod:`repro.live`) ::

    repro_live_records_total{source}        counter    records drained from the bus
    repro_live_ingest_records_per_second    gauge      rolling ingest throughput
    repro_live_stream_time_seconds          gauge      stream-time high-water mark
    repro_live_merge_depth                  gauge      k-way merge heap size
    repro_live_batch_records                histogram  records per columnar batch
    repro_live_refit_seconds                histogram  windowed Hawkes refit wall time
    repro_live_refit_corpus_urls            gauge      URLs in the last refit window
    repro_live_checkpoint_seconds           histogram  checkpoint save wall time

**Hawkes fitters** (:mod:`repro.core.hawkes.inference`) ::

    repro_fit_total{method}                 counter    completed per-URL fits
    repro_fit_seconds{method}               histogram  one fit, wall time
    repro_fit_em_iterations                 histogram  EM iterations to convergence
    repro_fit_em_convergence_delta          histogram  final relative log-likelihood delta
    repro_fit_phase_seconds{method,phase}   histogram  kernel time per phase
                                                       (attribution / updates / likelihood)

**Parallel fan-out** (:mod:`repro.parallel`) — per-worker metrics are
collected in the worker (:func:`collecting`), shipped back with the
chunk results, and merged deterministically ::

    repro_parallel_tasks_total              counter    tasks mapped
    repro_parallel_chunks_total             counter    chunks dispatched to workers
    repro_parallel_task_seconds             histogram  per-task duration (workers included)
    repro_parallel_map_seconds              histogram  whole-map wall time
    repro_parallel_worker_utilization       gauge      busy / (n_jobs x wall), last map

**Artifact cache** (:mod:`repro.api.store` / :mod:`repro.api.study`) ::

    repro_store_hits_total{layer}           counter    cache hits (memory | disk)
    repro_store_misses_total                counter    cache misses
    repro_store_bytes_written_total         counter    pickled bytes written to disk
    repro_store_bytes_read_total            counter    pickled bytes read from disk
    repro_store_load_seconds                histogram  disk artifact load time
    repro_store_hit_ratio                   gauge      hits / (hits+misses), set on scrape
    repro_stage_requests_total{stage,result} counter   stage resolutions
                                                       (memo | store | computed)
    repro_stage_compute_seconds{stage}      histogram  cold stage compute time
    repro_stage_load_seconds{stage}         histogram  store fetch time on hit

**HTTP serving** (:mod:`repro.api.service`) ::

    repro_http_requests_total{route,status} counter    requests per route template
    repro_http_request_seconds{route}       histogram  per-route request latency
    repro_http_not_modified_ratio           gauge      304s / requests, set on scrape

**Fault tolerance** (:mod:`repro.resilience` and the layers it
hardens) ::

    repro_faults_injected_total{site,kind}  counter    deterministic injected faults
    repro_ingest_quarantined_total{source,reason} counter  dead-lettered records
    repro_ingest_malformed_total{source,reason} counter  JSONL lines skipped on parse failure
    repro_source_restarts_total{source}     counter    supervised source restarts
    repro_source_dead_total{source}         counter    sources abandoned after retries
    repro_retry_attempts_total{site}        counter    retry_call re-invocations
    repro_parallel_chunk_retries_total      counter    chunk re-dispatches (transient faults)
    repro_parallel_pool_respawns_total      counter    pools respawned after breakage
    repro_parallel_serial_fallback_total    counter    maps finished serially after
                                                       repeated pool breakage
    repro_store_corrupt_total               counter    corrupt artifacts quarantined
    repro_serve_stale_total{component}      counter    responses served from last-good

Access
======

``GET /metrics`` on a :class:`repro.api.StudyService` serves the
registry in Prometheus text format (``?format=json`` for the raw
snapshot); ``repro stats --cache DIR`` pretty-prints the snapshot a
live engine or service last published into an artifact store (ref
``obs/metrics``); ``repro stats --trace FILE`` aggregates a
``REPRO_TRACE`` JSONL by span name.
"""

from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_DELTA_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    METRICS_REF,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    collecting,
    get_registry,
    log_bucket_edges,
    merge_snapshots,
    publish_snapshot,
    set_registry,
    snapshot_key,
)
from .render import CONTENT_TYPE_PROMETHEUS, render_prometheus, render_text
from .trace import (
    TRACE_ENV,
    Span,
    TraceSink,
    span,
    start_trace,
    stop_trace,
    summarize_trace,
)

__all__ = [
    "CONTENT_TYPE_PROMETHEUS",
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_DELTA_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_REF",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "TRACE_ENV",
    "TraceSink",
    "collecting",
    "get_registry",
    "log_bucket_edges",
    "merge_snapshots",
    "publish_snapshot",
    "render_prometheus",
    "render_text",
    "set_registry",
    "snapshot_key",
    "span",
    "start_trace",
    "stop_trace",
    "summarize_trace",
]
