"""Thread-safe metric primitives with snapshot/merge semantics.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotone sum (``inc``);
* :class:`Gauge` — last-set value plus an update count, so merges
  across processes are deterministic (see below);
* :class:`Histogram` — log-bucketed distribution (``observe``) with
  per-bucket counts, sum, count, min, and max.

Every instrument lives in a :class:`MetricsRegistry` under a family
name plus a label set.  A registry reduces to a plain-JSON
:meth:`~MetricsRegistry.snapshot`, and snapshots **merge**: counters
and histograms add, gauges resolve to the sample with the
lexicographically greatest ``(updates, value)`` pair.  Addition and
max are associative and commutative, so merging worker snapshots in
*any* order — the completion order of a process pool is nondeterministic
— always produces the same totals.  That is how per-worker metrics from
:mod:`repro.parallel` shards travel back with task results.

The module is deliberately stdlib-only (no numpy): worker processes,
the HTTP service, and the CLI can all import it without touching the
numerical stack, and instruments never draw randomness, so
instrumented code paths stay bit-identical.

Disabling: ``REPRO_METRICS=0`` (or :data:`NULL_REGISTRY` injected
explicitly) swaps every instrument for a shared no-op singleton whose
``inc``/``set``/``observe`` do nothing — a true no-op, so hot loops
pay only an attribute call.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator

#: Snapshot schema version (bump when the snapshot shape changes).
SNAPSHOT_VERSION = 1

#: Ref name under which registry snapshots are published into an
#: artifact store (see :func:`publish_snapshot` / ``repro stats``).
METRICS_REF = "obs/metrics"


def _decade_edges(lo_exp: int, hi_exp: int,
                  mantissas: tuple[float, ...] = (1.0, 2.5, 5.0),
                  ) -> tuple[float, ...]:
    """1-2.5-5 log-spaced bucket edges spanning ``10**lo .. 10**hi``."""
    edges = [m * 10.0 ** e for e in range(lo_exp, hi_exp)
             for m in mantissas]
    edges.append(10.0 ** hi_exp)
    return tuple(edges)


#: Durations in seconds: 10 microseconds up to 100 seconds.
DEFAULT_TIME_BUCKETS = _decade_edges(-5, 2)
#: Small counts (iterations, corpus sizes): 1 up to 1000.
DEFAULT_COUNT_BUCKETS = _decade_edges(0, 3)
#: Convergence deltas and other tiny ratios: 1e-12 up to 1.
DEFAULT_DELTA_BUCKETS = _decade_edges(-12, 0, mantissas=(1.0,))


def log_bucket_edges(lo: float, hi: float,
                     per_decade: int = 3) -> tuple[float, ...]:
    """Uniform-in-log bucket edges from ``lo`` to at least ``hi``."""
    import math
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError("need 0 < lo < hi and per_decade >= 1")
    n = math.ceil(round(math.log10(hi / lo) * per_decade, 9))
    return tuple(lo * 10.0 ** (i / per_decade) for i in range(n + 1))


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

class Counter:
    """Monotone counter; merge = sum."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> dict:
        with self._lock:
            return {"value": self._value}

    def _merge(self, sample: dict) -> None:
        self.inc(float(sample["value"]))


class Gauge:
    """Last-set value; merge keeps the greatest ``(updates, value)``.

    The update count makes cross-process merging deterministic: the
    sample that was written to most often wins, with the larger value
    breaking ties.  Both comparisons are max-operations, so the merge
    is associative and commutative.
    """

    kind = "gauge"
    __slots__ = ("_lock", "_value", "_updates")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._updates = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._updates += 1

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._updates += 1

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> dict:
        with self._lock:
            return {"value": self._value, "updates": self._updates}

    def _merge(self, sample: dict) -> None:
        updates, value = int(sample["updates"]), float(sample["value"])
        with self._lock:
            if (updates, value) > (self._updates, self._value):
                self._updates, self._value = updates, value


class Histogram:
    """Log-bucketed distribution; merge = per-bucket sum.

    ``edges`` are the inclusive upper bounds of each bucket
    (Prometheus ``le`` semantics: a value equal to an edge falls in
    that edge's bucket); one implicit overflow bucket catches
    everything above the last edge.
    """

    kind = "histogram"
    __slots__ = ("edges", "_lock", "_counts", "_sum", "_count",
                 "_min", "_max")

    def __init__(self, edges: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
                 ) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("edges must be non-empty and increasing")
        self.edges = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float | None:
        """Upper-edge estimate of the ``q`` quantile (0..1)."""
        if not 0 <= q <= 1:
            raise ValueError("q must be within [0, 1]")
        with self._lock:
            if not self._count:
                return None
            rank = q * self._count
            running = 0
            for index, count in enumerate(self._counts):
                running += count
                if running >= rank and count:
                    if index >= len(self.edges):
                        return self._max
                    return min(self.edges[index],
                               self._max if self._max is not None
                               else self.edges[index])
            return self._max

    def _sample(self) -> dict:
        with self._lock:
            return {
                "edges": list(self.edges),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def _merge(self, sample: dict) -> None:
        if tuple(float(e) for e in sample["edges"]) != self.edges:
            raise ValueError("cannot merge histograms with different "
                             "bucket edges")
        with self._lock:
            for index, count in enumerate(sample["counts"]):
                self._counts[index] += int(count)
            self._count += int(sample["count"])
            self._sum += float(sample["sum"])
            for bound, pick in (("min", min), ("max", max)):
                other = sample.get(bound)
                if other is None:
                    continue
                mine = getattr(self, f"_{bound}")
                setattr(self, f"_{bound}",
                        float(other) if mine is None
                        else pick(mine, float(other)))


class _NullInstrument:
    """Shared no-op standing in for every instrument when disabled."""

    kind = "null"
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All children of one metric name (same kind, help, edges)."""

    __slots__ = ("kind", "help", "edges", "children")

    def __init__(self, kind: str, help: str,
                 edges: tuple[float, ...] | None) -> None:
        self.kind = kind
        self.help = help
        self.edges = edges
        self.children: dict[tuple[tuple[str, str], ...], Any] = {}


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labeled instruments plus snapshot/merge plumbing."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- instrument access ---------------------------------------------------

    def _instrument(self, kind: str, name: str, help: str,
                    labels: dict[str, Any],
                    edges: tuple[float, ...] | None = None):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, help, edges)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}")
            else:
                if help and not family.help:
                    family.help = help
                if (kind == "histogram" and edges is not None
                        and family.edges is not None
                        and tuple(edges) != tuple(family.edges)):
                    raise ValueError(
                        f"metric {name!r} already has bucket edges "
                        f"{family.edges}")
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                if kind == "histogram":
                    child = Histogram(family.edges
                                      if family.edges is not None
                                      else DEFAULT_TIME_BUCKETS)
                else:
                    child = _KINDS[kind]()
                family.children[key] = child
            return child

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._instrument("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._instrument("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  edges: tuple[float, ...] | None = None,
                  **labels) -> Histogram:
        return self._instrument("histogram", name, help, labels,
                                edges=tuple(edges) if edges else None)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """Reduce every instrument to plain JSON-serializable data.

        Families and samples are emitted in sorted order, so two
        registries holding the same values snapshot identically.
        """
        with self._lock:
            families = {name: (family, dict(family.children))
                        for name, family in self._families.items()}
        metrics: dict[str, dict] = {}
        for name in sorted(families):
            family, children = families[name]
            samples = []
            for key in sorted(children):
                sample = children[key]._sample()
                sample["labels"] = dict(key)
                samples.append(sample)
            metrics[name] = {"type": family.kind, "help": family.help,
                             "samples": samples}
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def merge_snapshot(self, snapshot: dict | None) -> None:
        """Fold a snapshot into this registry (sum/max per kind)."""
        if not snapshot:
            return
        for name in sorted(snapshot.get("metrics", {})):
            family = snapshot["metrics"][name]
            kind = family["type"]
            if kind not in _KINDS:
                raise ValueError(f"unknown metric type {kind!r}")
            for sample in family["samples"]:
                labels = sample.get("labels", {})
                if kind == "histogram":
                    child = self.histogram(
                        name, family.get("help", ""),
                        edges=tuple(sample["edges"]), **labels)
                elif kind == "counter":
                    child = self.counter(name, family.get("help", ""),
                                         **labels)
                else:
                    child = self.gauge(name, family.get("help", ""),
                                       **labels)
                child._merge(sample)


class NullRegistry(MetricsRegistry):
    """A registry whose instruments are shared no-ops.

    Instrumented code paths become plain method calls that touch no
    state: bit-identical behavior, near-zero cost.
    """

    enabled = False

    def _instrument(self, kind, name, help, labels, edges=None):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"version": SNAPSHOT_VERSION, "metrics": {}}

    def merge_snapshot(self, snapshot: dict | None) -> None:
        pass


NULL_REGISTRY = NullRegistry()


def merge_snapshots(*snapshots: dict | None) -> dict:
    """Merge snapshots into one (associative and commutative)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


# ---------------------------------------------------------------------------
# The ambient (default) registry
# ---------------------------------------------------------------------------

def _env_disabled() -> bool:
    return os.environ.get("REPRO_METRICS", "").strip().lower() in (
        "0", "off", "false", "no")


_default: MetricsRegistry = (NULL_REGISTRY if _env_disabled()
                             else MetricsRegistry())


def get_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code records into."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the ambient registry; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous


@contextmanager
def collecting() -> Iterator[MetricsRegistry]:
    """Collect ambient metrics into a fresh registry within a block.

    Used by :mod:`repro.parallel` workers so each chunk's metrics are
    isolated, snapshotted, and shipped back with the results.  If
    metrics are disabled (``REPRO_METRICS=0``), the null registry is
    yielded unchanged and nothing is collected.
    """
    current = get_registry()
    if not current.enabled:
        yield current
        return
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ---------------------------------------------------------------------------
# Publishing snapshots through an artifact store
# ---------------------------------------------------------------------------

def snapshot_key(snapshot: dict) -> str:
    """Content key of a snapshot: SHA-256 of its canonical JSON."""
    canonical = json.dumps(snapshot, sort_keys=True,
                           separators=(",", ":"), allow_nan=False,
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def publish_snapshot(store, snapshot: dict, ref: str = METRICS_REF) -> str:
    """Publish a snapshot content-addressed into an artifact store.

    ``store`` is duck-typed (``put``/``set_ref``, i.e. a
    :class:`repro.api.ArtifactStore`), keeping this module stdlib-only.
    ``repro stats --cache DIR`` reads the ref back.
    """
    key = snapshot_key(snapshot)
    store.put(key, snapshot)
    store.set_ref(ref, key)
    return key
