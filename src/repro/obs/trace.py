"""Nested tracing spans with JSONL export.

A :func:`span` measures wall time (``perf_counter``) and CPU time
(``process_time``) around a block, tracks nesting through a
thread-local stack, and — when tracing is enabled — appends one JSON
line per completed span to the trace file::

    with span("fit_corpus", urls=len(corpus)):
        ...

Enable by exporting ``REPRO_TRACE=/path/to/trace.jsonl`` (worker
processes forked by :mod:`repro.parallel` inherit the variable and
append to the same file; every line carries its ``pid``), or
programmatically with :func:`start_trace`.  Each line holds ``name``,
``span``/``parent`` ids, ``depth``, ``pid``/``tid``, the epoch start
time ``t0``, ``wall_s``, ``cpu_s``, and the caller's ``attrs``.

Spans are **guaranteed side-effect-free on RNG streams**: nothing here
draws randomness (ids come from a process-local counter), so code
under tracing produces bit-identical numerical results — a property
the obs test suite pins against golden fits.  When tracing is
disabled a span still measures (two clock reads at entry and exit, a
few microseconds) but writes nothing.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import threading
import time
from pathlib import Path

#: Environment variable naming the JSONL trace file.
TRACE_ENV = "REPRO_TRACE"

_ids = itertools.count(1)
_tls = threading.local()


class TraceSink:
    """Appends span records to a JSONL file, one line per span."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file: io.TextIOBase | None = None

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=str)
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: Sentinel meaning "environment not consulted yet".
_UNSET = object()
_sink: TraceSink | None | object = _UNSET
_sink_lock = threading.Lock()


def _active_sink() -> TraceSink | None:
    """The configured sink, resolving ``REPRO_TRACE`` lazily once."""
    global _sink
    if _sink is _UNSET:
        with _sink_lock:
            if _sink is _UNSET:
                path = os.environ.get(TRACE_ENV)
                _sink = TraceSink(path) if path else None
    return _sink  # type: ignore[return-value]


def start_trace(path: str | Path) -> TraceSink:
    """Start writing spans to ``path`` (overrides ``REPRO_TRACE``)."""
    global _sink
    with _sink_lock:
        if isinstance(_sink, TraceSink):
            _sink.close()
        _sink = TraceSink(path)
        return _sink


def stop_trace() -> None:
    """Stop tracing (the environment is not re-consulted afterwards)."""
    global _sink
    with _sink_lock:
        if isinstance(_sink, TraceSink):
            _sink.close()
        _sink = None


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class Span:
    """One timed block; use via the :func:`span` factory."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "wall", "cpu", "_t0", "_wall0", "_cpu0")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.wall = 0.0
        self.cpu = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        self.span_id = next(_ids)
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._t0 = time.time()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.process_time() - self._cpu0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        sink = _active_sink()
        if sink is not None:
            sink.write({
                "name": self.name,
                "span": self.span_id,
                "parent": self.parent_id,
                "depth": self.depth,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "t0": self._t0,
                "wall_s": self.wall,
                "cpu_s": self.cpu,
                "error": exc_type.__name__ if exc_type else None,
                "attrs": self.attrs,
            })
        return False


def span(name: str, **attrs) -> Span:
    """A context manager timing one named block (see module docs)."""
    return Span(name, attrs)


def summarize_trace(path: str | Path) -> dict[str, dict]:
    """Aggregate a trace JSONL per span name.

    Returns ``{name: {count, wall_s, cpu_s, max_wall_s, mean_wall_s}}``
    sorted by descending total wall time — the shape ``repro stats
    --trace`` renders.
    """
    totals: dict[str, dict] = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            agg = totals.setdefault(record["name"], {
                "count": 0, "wall_s": 0.0, "cpu_s": 0.0,
                "max_wall_s": 0.0})
            agg["count"] += 1
            agg["wall_s"] += record["wall_s"]
            agg["cpu_s"] += record["cpu_s"]
            agg["max_wall_s"] = max(agg["max_wall_s"], record["wall_s"])
    for agg in totals.values():
        agg["mean_wall_s"] = agg["wall_s"] / agg["count"]
    return dict(sorted(totals.items(),
                       key=lambda item: -item[1]["wall_s"]))
