"""Render registry snapshots: Prometheus text exposition and plain text.

:func:`render_prometheus` emits the Prometheus text format (version
0.0.4) the ``/metrics`` endpoint serves: ``# HELP``/``# TYPE`` headers,
cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count`` for
histograms.  Families and samples are rendered in sorted order, so a
snapshot always renders to the same bytes (pinned by a golden test).

:func:`render_text` is the human-facing formatting behind
``repro stats``.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(labels: dict, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _value(value: float | int | None) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number != number:
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot as Prometheus text exposition format."""
    lines: list[str] = []
    for name, family in snapshot.get("metrics", {}).items():
        kind = family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_labels(labels)} {_value(sample['value'])}")
                continue
            cumulative = 0
            for edge, count in zip(sample["edges"], sample["counts"]):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_labels(labels, (('le', _value(edge)),))}"
                    f" {cumulative}")
            lines.append(f"{name}_bucket"
                         f"{_labels(labels, (('le', '+Inf'),))}"
                         f" {sample['count']}")
            lines.append(f"{name}_sum{_labels(labels)} "
                         f"{_value(sample['sum'])}")
            lines.append(f"{name}_count{_labels(labels)} "
                         f"{sample['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_quantile(sample: dict, q: float) -> float | None:
    """Upper-edge quantile estimate from a histogram sample."""
    count = sample["count"]
    if not count:
        return None
    rank = q * count
    running = 0
    edges = sample["edges"]
    for index, bucket in enumerate(sample["counts"]):
        running += bucket
        if running >= rank and bucket:
            if index >= len(edges):
                return sample["max"]
            edge = edges[index]
            return min(edge, sample["max"]) if sample["max"] is not None \
                else edge
    return sample["max"]


def render_text(snapshot: dict) -> str:
    """Human-readable snapshot summary (the ``repro stats`` output)."""
    metrics = snapshot.get("metrics", {})
    if not metrics:
        return "(no metrics recorded)"
    sections: list[str] = []
    for name, family in metrics.items():
        kind = family["type"]
        header = f"{name}  [{kind}]"
        if family.get("help"):
            header += f"  — {family['help']}"
        lines = [header]
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            tag = _labels(labels) or "{}"
            if kind in ("counter", "gauge"):
                lines.append(f"  {tag:<48} {_value(sample['value'])}")
                continue
            mean = sample["sum"] / sample["count"] if sample["count"] else 0
            parts = [f"count={sample['count']}", f"mean={mean:.6g}"]
            for q in (0.5, 0.95, 0.99):
                estimate = _histogram_quantile(sample, q)
                if estimate is not None:
                    parts.append(f"p{int(q * 100)}<={estimate:.6g}")
            if sample["max"] is not None:
                parts.append(f"max={sample['max']:.6g}")
            lines.append(f"  {tag:<48} " + " ".join(parts))
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"
