"""repro — a reproduction of "The Web Centipede" (Zannettou et al., IMC 2017).

A complete measurement stack for cross-platform news influence:
platform simulators (Twitter, Reddit, 4chan), a paper-calibrated
synthetic world generator, collection infrastructure (streaming sample,
crawlers with outage gaps, re-crawls), the Section 3-4 characterization
and temporal analyses, and the Section 5 discrete-time Hawkes influence
estimator with Gibbs-sampling inference.

The stable public surface is the :class:`Study` session
(:mod:`repro.api`): one configuration object exposing every pipeline
product as a cached, dependency-tracked artifact, servable over HTTP.

Quickstart::

    from repro import Study

    study = Study(seed=7)
    print(study.table(4).render())   # Table 4, computed once, cached
    result = study.influence()       # Section-5 per-URL Hawkes fits

    study = Study(scenario="gab")    # a K=4 preset (repro.scenarios)
    study.influence()                # 4x4 influence matrices
"""

from importlib import metadata as _metadata

try:
    __version__ = _metadata.version("repro-web-centipede")
except _metadata.PackageNotFoundError:  # running from a source checkout
    __version__ = "1.4.0"

from . import (
    analysis,
    api,
    collection,
    config,
    core,
    live,
    news,
    obs,
    parallel,
    platforms,
    scenarios,
    synthesis,
)
from .api import ArtifactStore, Study, StudyService, TableArtifact
from .scenarios import Scenario, get_scenario, scenario_names
from .config import HawkesConfig, StudyConfig
from .core import InfluenceResult, UrlCascade, fit_corpus
from .core.influence import CorpusSummary, UrlFit, WeightAggregate
from .news.domains import NewsCategory
from .pipeline import (
    CollectedData,
    collect,
    fit_influence,
    generate_and_collect,
    influence_cascades,
    influence_corpus,
)
from .synthesis.world import World, WorldConfig

__all__ = [
    # subpackages
    "analysis",
    "api",
    "collection",
    "config",
    "core",
    "live",
    "news",
    "obs",
    "parallel",
    "platforms",
    "scenarios",
    "synthesis",
    # the session surface
    "ArtifactStore",
    "Scenario",
    "Study",
    "StudyService",
    "TableArtifact",
    "get_scenario",
    "scenario_names",
    # key dataclasses
    "CollectedData",
    "CorpusSummary",
    "HawkesConfig",
    "InfluenceResult",
    "NewsCategory",
    "StudyConfig",
    "UrlCascade",
    "UrlFit",
    "WeightAggregate",
    "World",
    "WorldConfig",
    # legacy pipeline functions (deprecation shims / compute helpers)
    "collect",
    "fit_corpus",
    "fit_influence",
    "generate_and_collect",
    "influence_cascades",
    "influence_corpus",
    # metadata
    "__version__",
]
