"""repro — a reproduction of "The Web Centipede" (Zannettou et al., IMC 2017).

A complete measurement stack for cross-platform news influence:
platform simulators (Twitter, Reddit, 4chan), a paper-calibrated
synthetic world generator, collection infrastructure (streaming sample,
crawlers with outage gaps, re-crawls), the Section 3-4 characterization
and temporal analyses, and the Section 5 discrete-time Hawkes influence
estimator with Gibbs-sampling inference.

Quickstart::

    from repro.pipeline import generate_and_collect, influence_cascades
    from repro.synthesis import WorldConfig

    data = generate_and_collect(WorldConfig(seed=1))
    cascades = influence_cascades(data)
"""

from . import (
    analysis,
    collection,
    config,
    core,
    live,
    news,
    parallel,
    platforms,
    synthesis,
)
from .pipeline import (
    CollectedData,
    collect,
    fit_influence,
    generate_and_collect,
    influence_cascades,
    influence_corpus,
)

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "collection",
    "config",
    "core",
    "live",
    "news",
    "parallel",
    "platforms",
    "synthesis",
    "CollectedData",
    "collect",
    "fit_influence",
    "generate_and_collect",
    "influence_cascades",
    "influence_corpus",
    "__version__",
]
