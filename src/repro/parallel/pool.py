"""Process-pool map with ordered reassembly and chunked dispatch.

Tasks are grouped into chunks several times smaller than a worker's
fair share and pushed through one shared queue, so an idle worker
steals the next chunk instead of waiting on a static partition —
balancing load when task costs vary (corpus URLs differ by orders of
magnitude in event count).  Results are reassembled by input index, so
the output order never depends on completion order.

``n_jobs=1`` (the default everywhere) runs a plain in-process loop:
no pool, no pickling, closures allowed — the exact code path the
parallel branch must match bit-for-bit.

Fault tolerance: a chunk that fails with a *transient* fault
(:class:`repro.resilience.TransientFault`) is re-dispatched with its
original items — task seeds were spawned before dispatch, so the retry
is bit-identical — up to :data:`TRANSIENT_RETRIES` times.  A worker
crash that kills the pool (``BrokenProcessPool``) triggers a pool
respawn for the unfinished chunks, and if the pool breaks repeatedly
the survivors run serially in-process.  Non-transient task exceptions
keep the historical fail-fast contract: they propagate immediately and
cancel not-yet-started chunks.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from ..obs import DEFAULT_TIME_BUCKETS, collecting, get_registry
from ..resilience.faults import WORKER_FAULTS_ENV, maybe_inject_worker_fault
from ..resilience.retry import TransientFault

T = TypeVar("T")
R = TypeVar("R")

#: Chunks per worker the corpus is split into; >1 lets fast workers
#: steal work from the shared queue, at slightly higher dispatch cost.
OVERSUBSCRIPTION = 4

#: Re-dispatches of a chunk that failed with a transient fault.
TRANSIENT_RETRIES = 2

#: Pool respawns after a BrokenProcessPool before falling back to
#: running the unfinished chunks serially in-process.
MAX_POOL_RESPAWNS = 1


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize a worker-count request (joblib conventions).

    ``None`` means serial; ``-1`` means every core, ``-2`` all but
    one, and so on; positive counts pass through (they may exceed the
    core count).  ``0`` is an error.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must be positive or negative, not 0")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def auto_chunk_size(n_tasks: int, n_jobs: int) -> int:
    """Chunk size giving each worker ~``OVERSUBSCRIPTION`` chunks."""
    if n_tasks <= 0:
        return 1
    return max(1, -(-n_tasks // (n_jobs * OVERSUBSCRIPTION)))


def iter_chunks(n_tasks: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` index ranges covering ``0..n_tasks``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    for start in range(0, n_tasks, chunk_size):
        yield start, min(start + chunk_size, n_tasks)


def _task_seconds(registry):
    return registry.histogram(
        "repro_parallel_task_seconds",
        "Per-task duration inside parallel_map, workers included.",
        edges=DEFAULT_TIME_BUCKETS)


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T],
               ) -> tuple[list[R], float, dict]:
    """Worker-side loop (module-level so it pickles by reference).

    Runs the chunk under a fresh collecting registry so anything the
    task function records (fitter metrics, per-task durations) is
    isolated per chunk and shipped back as a snapshot alongside the
    results; the dispatcher merges snapshots into the parent registry.
    Merging is order-independent, so the nondeterministic completion
    order of the pool never changes the totals.
    """
    if os.environ.get(WORKER_FAULTS_ENV):
        maybe_inject_worker_fault()
    with collecting() as registry:
        histogram = _task_seconds(registry)
        chunk_start = perf_counter()
        results = []
        for item in chunk:
            task_start = perf_counter()
            results.append(fn(item))
            histogram.observe(perf_counter() - task_start)
        busy = perf_counter() - chunk_start
    return results, busy, registry.snapshot()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork on Linux: no re-import, millisecond startup.

    Elsewhere the platform default stands — fork is unsafe on macOS
    (Objective-C runtime, Accelerate threads) and absent on Windows.
    """
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _retry_serial(fn: Callable[[T], R], item: T, exc: TransientFault,
                  retries: int, registry) -> R:
    """In-process transient-fault retry: re-invoke up to ``retries`` times."""
    last = exc
    for _ in range(retries):
        registry.counter(
            "repro_parallel_chunk_retries_total",
            "Chunk (or serial task) re-dispatches after transient "
            "faults.").inc()
        try:
            return fn(item)
        except TransientFault as again:
            last = again
    raise last


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 n_jobs: int | None = 1,
                 chunk_size: int | None = None,
                 progress: Callable[[int, int], None] | None = None,
                 retries: int = TRANSIENT_RETRIES,
                 ) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Guarantees, for a pure ``fn``:

    * the result equals ``[fn(x) for x in items]`` for every
      ``n_jobs``/``chunk_size`` combination (ordered reassembly);
    * ``fn`` is called once per item, except that a chunk failing with
      a :class:`~repro.resilience.TransientFault` (or losing its
      worker) is re-dispatched whole — for a pure ``fn`` the retry is
      bit-identical, since each task's seed was fixed before dispatch;
    * any other task exception propagates to the caller and cancels
      not-yet-started chunks.

    ``retries`` bounds transient re-dispatches per chunk (``0``
    restores strict fail-fast even for transient faults).  A
    ``BrokenProcessPool`` — a worker died without raising — is handled
    separately: the pool is respawned for the unfinished chunks, and
    after :data:`MAX_POOL_RESPAWNS` breakages the survivors run
    serially in-process, where the underlying error (if deterministic)
    finally surfaces.

    ``progress(done, total)`` is invoked after each completed item
    (serial) or chunk (parallel); ``done`` is monotone and reaches
    ``total``.  With ``n_jobs != 1``, ``fn`` and the items must be
    picklable and ``fn`` must be importable from the worker (a
    module-level function or a :func:`functools.partial` over one).
    """
    items = list(items)
    total = len(items)
    n_jobs = min(resolve_n_jobs(n_jobs), max(total, 1))
    registry = get_registry()
    if n_jobs == 1:
        histogram = _task_seconds(registry)
        map_start = perf_counter()
        results: list[R] = []
        for done, item in enumerate(items, start=1):
            task_start = perf_counter()
            try:
                results.append(fn(item))
            except TransientFault as exc:
                if retries <= 0:
                    raise
                results.append(
                    _retry_serial(fn, item, exc, retries, registry))
            histogram.observe(perf_counter() - task_start)
            if progress is not None:
                progress(done, total)
        registry.counter("repro_parallel_tasks_total").inc(total)
        registry.histogram("repro_parallel_map_seconds").observe(
            perf_counter() - map_start)
        return results

    if chunk_size is None:
        chunk_size = auto_chunk_size(total, n_jobs)
    out: list[R | None] = [None] * total
    done = 0
    busy_total = 0.0
    map_start = perf_counter()
    #: Chunks not yet completed, with their transient-failure counts.
    unfinished: dict[tuple[int, int], int] = {
        span: 0 for span in iter_chunks(total, chunk_size)}
    respawns = 0
    while unfinished:
        try:
            with ProcessPoolExecutor(max_workers=n_jobs,
                                     mp_context=_pool_context()) as pool:
                pending = {
                    pool.submit(_run_chunk, fn, items[start:stop]):
                        (start, stop)
                    for start, stop in unfinished
                }
                try:
                    while pending:
                        completed, _ = wait(pending,
                                            return_when=FIRST_COMPLETED)
                        for future in completed:
                            start, stop = span = pending.pop(future)
                            try:
                                chunk_out, busy, worker_snapshot = (
                                    future.result())
                            except BrokenProcessPool:
                                raise  # respawn loop below
                            except TransientFault:
                                attempts = unfinished[span] + 1
                                if attempts > retries:
                                    raise
                                unfinished[span] = attempts
                                registry.counter(
                                    "repro_parallel_chunk_retries_total",
                                    "Chunk (or serial task) re-dispatches "
                                    "after transient faults.").inc()
                                pending[pool.submit(
                                    _run_chunk, fn,
                                    items[start:stop])] = span
                                continue
                            out[start:stop] = chunk_out
                            busy_total += busy
                            registry.merge_snapshot(worker_snapshot)
                            registry.counter(
                                "repro_parallel_chunks_total").inc()
                            del unfinished[span]
                            done += stop - start
                            if progress is not None:
                                progress(done, total)
                except BrokenProcessPool:
                    raise
                except BaseException:
                    for future in pending:
                        future.cancel()
                    raise
        except BrokenProcessPool:
            respawns += 1
            registry.counter(
                "repro_parallel_pool_respawns_total",
                "Worker pools respawned after a BrokenProcessPool.").inc()
            if respawns > MAX_POOL_RESPAWNS:
                # The pool keeps dying: finish in-process.  A chunk
                # whose task deterministically fails now raises its
                # real exception instead of BrokenProcessPool.
                registry.counter(
                    "repro_parallel_serial_fallback_total",
                    "parallel_map calls that finished chunks serially "
                    "after repeated pool breakage.").inc()
                for start, stop in sorted(unfinished):
                    attempts = unfinished[(start, stop)]
                    while True:
                        try:
                            chunk_out, busy, worker_snapshot = _run_chunk(
                                fn, items[start:stop])
                            break
                        except TransientFault:
                            attempts += 1
                            if attempts > retries:
                                raise
                            registry.counter(
                                "repro_parallel_chunk_retries_total",
                                "Chunk (or serial task) re-dispatches "
                                "after transient faults.").inc()
                    out[start:stop] = chunk_out
                    busy_total += busy
                    registry.merge_snapshot(worker_snapshot)
                    registry.counter("repro_parallel_chunks_total").inc()
                    done += stop - start
                    if progress is not None:
                        progress(done, total)
                unfinished.clear()
    wall = perf_counter() - map_start
    registry.counter("repro_parallel_tasks_total").inc(total)
    registry.histogram("repro_parallel_map_seconds").observe(wall)
    if wall > 0:
        registry.gauge(
            "repro_parallel_worker_utilization",
            "Worker busy time over n_jobs x wall for the last map.",
        ).set(min(1.0, busy_total / (n_jobs * wall)))
    return out  # type: ignore[return-value]
