"""Process-pool map with ordered reassembly and chunked dispatch.

Tasks are grouped into chunks several times smaller than a worker's
fair share and pushed through one shared queue, so an idle worker
steals the next chunk instead of waiting on a static partition —
balancing load when task costs vary (corpus URLs differ by orders of
magnitude in event count).  Results are reassembled by input index, so
the output order never depends on completion order.

``n_jobs=1`` (the default everywhere) runs a plain in-process loop:
no pool, no pickling, closures allowed — the exact code path the
parallel branch must match bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from time import perf_counter
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from ..obs import DEFAULT_TIME_BUCKETS, collecting, get_registry

T = TypeVar("T")
R = TypeVar("R")

#: Chunks per worker the corpus is split into; >1 lets fast workers
#: steal work from the shared queue, at slightly higher dispatch cost.
OVERSUBSCRIPTION = 4


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize a worker-count request (joblib conventions).

    ``None`` means serial; ``-1`` means every core, ``-2`` all but
    one, and so on; positive counts pass through (they may exceed the
    core count).  ``0`` is an error.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must be positive or negative, not 0")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def auto_chunk_size(n_tasks: int, n_jobs: int) -> int:
    """Chunk size giving each worker ~``OVERSUBSCRIPTION`` chunks."""
    if n_tasks <= 0:
        return 1
    return max(1, -(-n_tasks // (n_jobs * OVERSUBSCRIPTION)))


def iter_chunks(n_tasks: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` index ranges covering ``0..n_tasks``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    for start in range(0, n_tasks, chunk_size):
        yield start, min(start + chunk_size, n_tasks)


def _task_seconds(registry):
    return registry.histogram(
        "repro_parallel_task_seconds",
        "Per-task duration inside parallel_map, workers included.",
        edges=DEFAULT_TIME_BUCKETS)


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T],
               ) -> tuple[list[R], float, dict]:
    """Worker-side loop (module-level so it pickles by reference).

    Runs the chunk under a fresh collecting registry so anything the
    task function records (fitter metrics, per-task durations) is
    isolated per chunk and shipped back as a snapshot alongside the
    results; the dispatcher merges snapshots into the parent registry.
    Merging is order-independent, so the nondeterministic completion
    order of the pool never changes the totals.
    """
    with collecting() as registry:
        histogram = _task_seconds(registry)
        chunk_start = perf_counter()
        results = []
        for item in chunk:
            task_start = perf_counter()
            results.append(fn(item))
            histogram.observe(perf_counter() - task_start)
        busy = perf_counter() - chunk_start
    return results, busy, registry.snapshot()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork on Linux: no re-import, millisecond startup.

    Elsewhere the platform default stands — fork is unsafe on macOS
    (Objective-C runtime, Accelerate threads) and absent on Windows.
    """
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 n_jobs: int | None = 1,
                 chunk_size: int | None = None,
                 progress: Callable[[int, int], None] | None = None,
                 ) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Guarantees, for a pure ``fn``:

    * the result equals ``[fn(x) for x in items]`` for every
      ``n_jobs``/``chunk_size`` combination (ordered reassembly);
    * ``fn`` is called exactly once per item;
    * a task exception propagates to the caller and cancels
      not-yet-started chunks.

    ``progress(done, total)`` is invoked after each completed item
    (serial) or chunk (parallel); ``done`` is monotone and reaches
    ``total``.  With ``n_jobs != 1``, ``fn`` and the items must be
    picklable and ``fn`` must be importable from the worker (a
    module-level function or a :func:`functools.partial` over one).
    """
    items = list(items)
    total = len(items)
    n_jobs = min(resolve_n_jobs(n_jobs), max(total, 1))
    registry = get_registry()
    if n_jobs == 1:
        histogram = _task_seconds(registry)
        map_start = perf_counter()
        results: list[R] = []
        for done, item in enumerate(items, start=1):
            task_start = perf_counter()
            results.append(fn(item))
            histogram.observe(perf_counter() - task_start)
            if progress is not None:
                progress(done, total)
        registry.counter("repro_parallel_tasks_total").inc(total)
        registry.histogram("repro_parallel_map_seconds").observe(
            perf_counter() - map_start)
        return results

    if chunk_size is None:
        chunk_size = auto_chunk_size(total, n_jobs)
    out: list[R | None] = [None] * total
    done = 0
    busy_total = 0.0
    map_start = perf_counter()
    with ProcessPoolExecutor(max_workers=n_jobs,
                             mp_context=_pool_context()) as pool:
        future_spans = {
            pool.submit(_run_chunk, fn, items[start:stop]): (start, stop)
            for start, stop in iter_chunks(total, chunk_size)
        }
        try:
            for future in as_completed(future_spans):
                start, stop = future_spans[future]
                out[start:stop], busy, worker_snapshot = future.result()
                busy_total += busy
                registry.merge_snapshot(worker_snapshot)
                registry.counter("repro_parallel_chunks_total").inc()
                done += stop - start
                if progress is not None:
                    progress(done, total)
        except BaseException:
            for future in future_spans:
                future.cancel()
            raise
    wall = perf_counter() - map_start
    registry.counter("repro_parallel_tasks_total").inc(total)
    registry.histogram("repro_parallel_map_seconds").observe(wall)
    if wall > 0:
        registry.gauge(
            "repro_parallel_worker_utilization",
            "Worker busy time over n_jobs x wall for the last map.",
        ).set(min(1.0, busy_total / (n_jobs * wall)))
    return out  # type: ignore[return-value]
