"""Deterministic per-task seeding.

A serial corpus fit that threads one generator through every URL can
never be reproduced by a parallel one: the stream consumed by URL ``i``
depends on how much randomness URLs ``0..i-1`` drew.  Instead, every
task gets its own :class:`numpy.random.SeedSequence` spawned from a
single root, keyed by task index via the spawn key.  Spawning happens
once, in the calling process, before any dispatch — so the stream seen
by task ``i`` depends only on the root seed and ``i``, never on worker
count, chunking, or completion order.
"""

from __future__ import annotations

import numpy as np

SeedLike = (np.random.Generator | np.random.SeedSequence
            | int | np.integer | None)


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce the seeds callers already hold into a root ``SeedSequence``.

    Accepts an integer entropy, an existing ``SeedSequence``, a
    ``Generator`` (its bit generator's own seed sequence is reused, so
    ``default_rng(s)`` and ``s`` derive identical task streams), or
    ``None`` for fresh OS entropy.
    """
    if seed is None:
        return np.random.SeedSequence()
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(int(seed))
    if isinstance(seed, np.random.Generator):
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if isinstance(seed_seq, np.random.SeedSequence):
            return seed_seq
        # Exotic bit generator without an inspectable seed sequence:
        # derive entropy from the stream itself.
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    raise TypeError(
        f"cannot derive a SeedSequence from {type(seed).__name__}")


def spawn_task_seeds(seed: SeedLike,
                     n_tasks: int) -> list[np.random.SeedSequence]:
    """Spawn one child seed per task, keyed by task index.

    Child ``i`` carries spawn key ``(i,)`` appended to the root's, so
    the derived stream is a pure function of ``(root, i)``: stable
    across runs, identical for any worker count or chunk size, distinct
    across tasks, and prefix-stable (the first ``m`` seeds of an
    ``n``-task spawn equal an ``m``-task spawn from the same fresh
    root).

    Note that spawning advances the root's child counter: spawning
    twice from the *same* ``SeedSequence`` object yields disjoint
    seed sets, exactly like drawing twice from a shared generator.
    """
    if n_tasks < 0:
        raise ValueError("n_tasks must be non-negative")
    return as_seed_sequence(seed).spawn(n_tasks)
