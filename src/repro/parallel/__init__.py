"""Deterministic parallel execution for embarrassingly parallel maps.

The corpus experiment fits one Hawkes model per URL — thousands of
independent tasks — and every sweep/refit multiplies that.  This package
provides the fan-out machinery all of them share:

* :func:`parallel_map` — a process-pool map with chunked work-stealing
  dispatch and ordered result reassembly, falling back to a plain
  in-process loop for one job.
* :func:`spawn_task_seeds` / :func:`as_seed_sequence` — per-task random
  streams derived with :meth:`numpy.random.SeedSequence.spawn`, keyed by
  task index so results are bit-for-bit identical no matter how many
  workers run or how the tasks are chunked.

The contract callers rely on (and tests enforce): for a pure task
function, ``parallel_map(fn, items, n_jobs=k)`` equals
``[fn(x) for x in items]`` for every ``k``.
"""

from .pool import (
    auto_chunk_size,
    iter_chunks,
    parallel_map,
    resolve_n_jobs,
)
from .seeding import as_seed_sequence, spawn_task_seeds

__all__ = [
    "auto_chunk_size",
    "iter_chunks",
    "parallel_map",
    "resolve_n_jobs",
    "as_seed_sequence",
    "spawn_task_seeds",
]
