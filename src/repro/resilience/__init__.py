"""``repro.resilience`` — deterministic fault injection + the hardening it exercises.

The reproduction's core discipline is that results are bit-identical
under any *execution plan* (worker count, chunking, batching).  This
package extends the same discipline to *failure*: results are
bit-identical under transient faults, because every recovery path
replays deterministic work rather than improvising.

Two halves:

**Fault injection** (:mod:`~repro.resilience.faults`) — a seeded
:class:`FaultPlan` derives reproducible fault schedules for collector
streams (transient errors, malformed records), parallel workers
(chunk crashes, pool-killing exits), artifact-store objects (byte
corruption), and service handlers (failing calls).  Chaos tests replay
exactly.

**Hardening** — the layers the injectors exercise:

* :func:`supervised_source` restarts transiently failed sources with
  exponential backoff and bounded retries, skipping already-delivered
  records (deterministic replay), and diverts malformed or
  out-of-order records into a :class:`Quarantine` dead-letter sidecar
  instead of killing the run.
* :func:`repro.parallel.parallel_map` retries failed chunks with their
  original seeds (bit-identical re-dispatch), respawns a broken pool,
  and falls back to in-process execution as a last resort.
* :class:`repro.api.ArtifactStore` sha-verifies every object read from
  disk, quarantining corrupt files and transparently recomputing.
* :class:`repro.api.StudyService` serves the last-good body with a
  ``Warning`` header when a recompute raises, reports degraded
  components on ``/healthz``, and drains in-flight requests on
  shutdown.

Metric families: ``repro_faults_injected_total{site,kind}``,
``repro_ingest_quarantined_total{source,reason}``,
``repro_source_restarts_total`` / ``repro_source_dead_total``,
``repro_retry_attempts_total{site}``,
``repro_parallel_chunk_retries_total`` /
``repro_parallel_pool_respawns_total`` /
``repro_parallel_serial_fallback_total``,
``repro_store_corrupt_total``, ``repro_serve_stale_total{component}``.
"""

from .faults import (
    WORKER_FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    SourceFaults,
    clear_worker_faults,
    corrupt_object,
    install_worker_faults,
    maybe_inject_worker_fault,
)
from .quarantine import Quarantine, count_quarantined
from .retry import (
    RetryPolicy,
    SimulatedWorkerCrash,
    TransientFault,
    TransientSourceError,
    retry_call,
)
from .supervise import supervised_source, validate_record

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "Quarantine",
    "RetryPolicy",
    "SimulatedWorkerCrash",
    "SourceFaults",
    "TransientFault",
    "TransientSourceError",
    "WORKER_FAULTS_ENV",
    "clear_worker_faults",
    "corrupt_object",
    "count_quarantined",
    "install_worker_faults",
    "maybe_inject_worker_fault",
    "retry_call",
    "supervised_source",
    "validate_record",
]
