"""Bounded, deterministic retry with exponential backoff.

The reproduction's determinism discipline extends to failure handling:
a retry changes *when* work happens, never *what* it computes, so the
backoff schedule is a pure function of the policy and the attempt
index — no jitter, no wall-clock reads.  Sleeping is injected
(``sleep=``) so tests run the schedule instantly and chaos suites stay
fast.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..obs import get_registry

logger = logging.getLogger("repro.resilience")

T = TypeVar("T")


class TransientFault(Exception):
    """Base class for faults that are safe to retry.

    Raised by the deterministic fault injectors
    (:mod:`repro.resilience.faults`) and usable by real collectors for
    errors known to be transient (network hiccups, rate limits).  The
    retry machinery in :func:`retry_call`, the supervised sources, and
    :func:`repro.parallel.parallel_map` only ever auto-retries
    exceptions of this family — anything else keeps the historical
    fail-fast behavior.
    """


class TransientSourceError(TransientFault):
    """A source stream failed in a way a restart can heal."""


class SimulatedWorkerCrash(TransientFault):
    """An injected parallel-worker failure (chunk-level, retryable)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient failure."""

    #: Retries after the initial attempt; 0 disables retrying.
    max_retries: int = 3
    #: Delay before the first retry, seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per subsequent retry.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay, seconds.
    backoff_max: float = 5.0

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based), seconds."""
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** retry_index)

    def delays(self) -> tuple[float, ...]:
        """The full deterministic backoff schedule."""
        return tuple(self.delay(i) for i in range(self.max_retries))


def retry_call(fn: Callable[[], T], *,
               policy: RetryPolicy | None = None,
               transient: tuple[type[BaseException], ...] = (TransientFault,),
               site: str = "call",
               sleep: Callable[[float], None] = time.sleep) -> T:
    """Call ``fn`` with bounded retries on transient failures.

    Non-transient exceptions propagate immediately.  Transient ones are
    retried up to ``policy.max_retries`` times with exponential
    backoff; the final failure re-raises the last exception.  Each
    retry increments ``repro_retry_attempts_total{site}``.
    """
    policy = policy or RetryPolicy()
    attempts = 0
    while True:
        try:
            return fn()
        except transient as exc:
            if attempts >= policy.max_retries:
                raise
            delay = policy.delay(attempts)
            attempts += 1
            get_registry().counter(
                "repro_retry_attempts_total",
                "Retries of transient failures, by call site.",
                site=site).inc()
            logger.warning("%s: transient failure (%s: %s); retry %d/%d "
                           "in %.3fs", site, type(exc).__name__, exc,
                           attempts, policy.max_retries, delay)
            if delay > 0:
                sleep(delay)
