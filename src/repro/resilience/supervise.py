"""Per-source supervision: restart transient failures, quarantine poison.

A supervised source sits between a collector stream and the
:class:`~repro.live.bus.EventBus`.  It guarantees the bus only ever
sees well-formed, timestamp-ordered records, and that a transient
source failure costs a bounded restart instead of the whole run:

* **Malformed records** (wrong type, missing fields, non-finite or
  out-of-order timestamps) are diverted to the
  :class:`~repro.resilience.quarantine.Quarantine` dead-letter sink
  and the stream continues.
* **Transient errors** (:class:`~repro.resilience.retry.TransientFault`
  and ``OSError`` by default) trigger an exponential-backoff restart:
  the supervisor rebuilds the stream from its factory and skips the
  records it already emitted — the same deterministic-replay
  assumption checkpoint resume relies on, so the downstream record
  sequence is bit-identical to a fault-free run.
* **Exhausted retries** end the source (dead-letter log entry +
  ``repro_source_dead_total``) without killing the other sources.
"""

from __future__ import annotations

import logging
import math
import time
from typing import Callable, Iterator

from ..collection.store import DatasetRecord
from ..obs import get_registry
from .quarantine import Quarantine
from .retry import RetryPolicy, TransientFault

logger = logging.getLogger("repro.resilience")

#: Exception families a supervised restart may heal.
DEFAULT_TRANSIENT = (TransientFault, OSError)


def validate_record(record: object) -> str | None:
    """Why ``record`` must not reach the bus, or ``None`` if it may.

    Checks the invariants the downstream layers assume: the record is
    a :class:`DatasetRecord` whose ``created_at`` is a finite number —
    a NaN timestamp would silently poison the k-way merge ordering and
    every aggregate downstream.
    """
    if not isinstance(record, DatasetRecord):
        return f"not a DatasetRecord ({type(record).__name__})"
    created_at = record.created_at
    if not isinstance(created_at, (int, float)):
        return f"created_at is {type(created_at).__name__}, not a number"
    if not math.isfinite(created_at):
        return f"non-finite created_at ({created_at!r})"
    return None


def supervised_source(name: str,
                      factory: Callable[[], Iterator],
                      *,
                      policy: RetryPolicy | None = None,
                      quarantine: Quarantine | None = None,
                      transient: tuple[type[BaseException], ...]
                      = DEFAULT_TRANSIENT,
                      sleep: Callable[[float], None] = time.sleep,
                      ) -> Iterator[DatasetRecord]:
    """A validated, restartable view of one record source.

    ``factory`` must rebuild the stream from the beginning on each
    call and replay deterministically — every collector ``stream()``
    and :func:`~repro.live.bus.jsonl_source` does.  After a transient
    failure the supervisor restarts the stream, silently skips the
    valid records it already emitted (invalid ones were quarantined on
    first sight and do not count), and continues.  Out-of-order
    records are quarantined rather than forwarded, since the bus
    treats ordering violations as fatal.
    """
    policy = policy or RetryPolicy()
    sink = quarantine if quarantine is not None else Quarantine()
    registry = get_registry()
    emitted = 0
    last_time = -math.inf
    restarts = 0
    while True:
        stream = factory()
        # Number of records to fast-forward past: everything delivered
        # before this (re)start.  Captured up front — ``emitted`` keeps
        # growing as the stream progresses, so comparing against it
        # live would skip records that were never delivered.
        replay_target = emitted
        try:
            skipped = 0
            for record in stream:
                reason = validate_record(record)
                if skipped < replay_target:
                    # Replay of already-delivered records after a
                    # restart: invalid ones were quarantined when first
                    # seen, so only valid records advance the skip.
                    if reason is None:
                        skipped += 1
                    continue
                if reason is None and record.created_at < last_time:
                    reason = (f"out of order ({record.created_at} after "
                              f"{last_time})")
                if reason is not None:
                    sink.add(name, reason, record)
                    continue
                yield record
                emitted += 1
                last_time = record.created_at
            return  # stream ran dry cleanly
        except transient as exc:
            # ``max_retries`` bounds restarts here: supervision is the
            # stream-shaped instance of the same retry discipline.
            if restarts >= policy.max_retries:
                registry.counter(
                    "repro_source_dead_total",
                    "Supervised sources abandoned after exhausting "
                    "restarts.", source=name).inc()
                sink.add(name, f"source dead after {restarts} restarts: "
                               f"{type(exc).__name__}: {exc}")
                logger.error(
                    "source %r dead after %d restarts (%s: %s); "
                    "%d records were delivered before the failure",
                    name, restarts, type(exc).__name__, exc, emitted)
                return
            delay = policy.delay(restarts)
            restarts += 1
            registry.counter(
                "repro_source_restarts_total",
                "Supervised source restarts after transient failures.",
                source=name).inc()
            logger.warning(
                "source %r transient failure (%s: %s); restart %d/%d "
                "in %.3fs, replaying past %d records",
                name, type(exc).__name__, exc, restarts,
                policy.max_retries, delay, emitted)
            if delay > 0:
                sleep(delay)
