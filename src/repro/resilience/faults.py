"""Seeded, deterministic fault injection.

Chaos testing is only trustworthy when the chaos replays: a
:class:`FaultPlan` derives every fault site's schedule from one seed,
so a fault-injected run is exactly reproducible — same transient
errors at the same stream positions, same malformed records, same
worker-crash count.  The headline property the chaos suites pin is
that a faulted run's *results* are bit-identical to the fault-free
run's once the hardening layers (supervised sources, chunk retry,
store verification, stale serving) absorb the injected failures.

Injection surfaces:

* **Collector streams** — :meth:`FaultPlan.source` yields a
  :class:`SourceFaults` whose :meth:`~SourceFaults.wrap` raises
  :class:`~repro.resilience.retry.TransientSourceError` and inserts
  malformed records at seeded stream positions.  Each fault fires
  once: after a supervised restart the replayed stream is clean, which
  is exactly how a real transient behaves.
* **Parallel workers** — :func:`install_worker_faults` arms a bounded
  number of chunk-level crashes via the environment (worker processes
  inherit it); :func:`repro.parallel.parallel_map` consults
  :func:`maybe_inject_worker_fault` at each chunk start.  ``raise``
  mode throws a retryable :class:`SimulatedWorkerCrash`; ``exit`` mode
  hard-kills the worker process, exercising pool respawn.
* **Artifact-store IO** — :func:`corrupt_object` flips bytes in one
  stored object file, exercising sha-verification + quarantine.
* **Service handlers** — :meth:`FaultPlan.failing_calls` returns a
  deterministic predicate usable to fail the first N calls of a
  handler, exercising stale-while-revalidate.

Every injected fault increments
``repro_faults_injected_total{site,kind}``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..obs import get_registry
from .retry import SimulatedWorkerCrash, TransientSourceError

#: Environment variable arming worker-crash injection:
#: ``<state_dir>:<crashes>:<raise|exit>``.
WORKER_FAULTS_ENV = "REPRO_FAULT_WORKER"

#: Exit code used by ``exit``-mode worker crashes (visible in pool logs).
WORKER_CRASH_EXIT_CODE = 77


@dataclass(frozen=True)
class FaultSpec:
    """How many faults of each kind a source site injects.

    Positions are drawn without replacement from ``[1, horizon)`` of
    the upstream stream; a stream shorter than the drawn positions
    simply sees fewer faults.
    """

    transient_errors: int = 2
    malformed_records: int = 2
    horizon: int = 1000


def _site_rng(seed: int, name: str) -> np.random.Generator:
    """A per-site generator: pure function of ``(seed, name)``.

    Stable across runs and independent across sites — two sites never
    share a stream, so adding a site never perturbs another's schedule.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def _count_fault(site: str, kind: str) -> None:
    get_registry().counter(
        "repro_faults_injected_total",
        "Deterministic faults injected, by site and kind.",
        site=site, kind=kind).inc()


class SourceFaults:
    """Seeded fault schedule for one record source.

    The schedule is fixed at construction; the fired-set is mutable
    state that persists across :meth:`wrap` calls, so a supervised
    restart (which re-wraps the same :class:`SourceFaults`) replays the
    stream *without* re-firing already-delivered faults.
    """

    def __init__(self, name: str, seed: int,
                 spec: FaultSpec | None = None) -> None:
        self.name = name
        self.spec = spec = spec or FaultSpec()
        n_faults = spec.transient_errors + spec.malformed_records
        if n_faults > max(spec.horizon - 1, 0):
            raise ValueError("horizon too small for the requested faults")
        rng = _site_rng(seed, name)
        positions = rng.choice(np.arange(1, spec.horizon), size=n_faults,
                               replace=False)
        self.error_positions = frozenset(
            int(p) for p in positions[:spec.transient_errors])
        self.malformed_positions = frozenset(
            int(p) for p in positions[spec.transient_errors:])
        self._fired: set[tuple[str, int]] = set()

    def wrap(self, records: Iterator) -> Iterator:
        """Interleave the scheduled faults into ``records``.

        A transient error is raised *before* the record at its position
        is yielded (the record is delivered on the restarted replay); a
        malformed record is yielded immediately before the real record
        at its position.
        """
        for position, record in enumerate(records):
            if (position in self.error_positions
                    and ("error", position) not in self._fired):
                self._fired.add(("error", position))
                _count_fault(self.name, "transient_error")
                raise TransientSourceError(
                    f"injected transient error in {self.name!r} "
                    f"at position {position}")
            if (position in self.malformed_positions
                    and ("malformed", position) not in self._fired):
                self._fired.add(("malformed", position))
                _count_fault(self.name, "malformed_record")
                yield {"__injected_malformed__": position,
                       "source": self.name}
            yield record


class FaultPlan:
    """One seed, every injector — the root of a reproducible chaos run."""

    def __init__(self, seed: int, spec: FaultSpec | None = None) -> None:
        self.seed = int(seed)
        self.spec = spec or FaultSpec()
        self._sources: dict[str, SourceFaults] = {}

    def source(self, name: str,
               spec: FaultSpec | None = None) -> SourceFaults:
        """The (memoized) fault schedule for source ``name``.

        Memoization is what lets a supervised restart reuse the same
        fired-set: ask the plan again, get the same object.
        """
        if name not in self._sources:
            self._sources[name] = SourceFaults(
                name, self.seed, spec or self.spec)
        return self._sources[name]

    def failing_calls(self, name: str, failures: int = 1):
        """A predicate failing the first ``failures`` calls of a site.

        Returns a zero-argument callable that is ``True`` (and counts a
        ``repro_faults_injected_total{kind="handler_error"}``) for the
        first ``failures`` invocations and ``False`` afterwards — the
        minimal deterministic way to make a service handler raise N
        times and then recover.
        """
        state = {"calls": 0}

        def should_fail() -> bool:
            state["calls"] += 1
            if state["calls"] <= failures:
                _count_fault(name, "handler_error")
                return True
            return False

        return should_fail


# ---------------------------------------------------------------------------
# Worker-crash injection (crosses process boundaries via the environment)
# ---------------------------------------------------------------------------

def install_worker_faults(state_dir: str | Path, crashes: int = 1,
                          mode: str = "raise") -> None:
    """Arm ``crashes`` chunk-level worker faults for this process tree.

    ``state_dir`` holds one claim file per fired crash, so the budget
    is shared across all workers (they inherit the environment and
    race on ``O_EXCL`` claim creation — exactly one winner per slot).
    ``mode="raise"`` throws :class:`SimulatedWorkerCrash` (a retryable
    chunk failure); ``mode="exit"`` kills the worker process outright,
    breaking the pool.
    """
    if mode not in ("raise", "exit"):
        raise ValueError(f"unknown worker-fault mode {mode!r}")
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    os.environ[WORKER_FAULTS_ENV] = f"{state_dir}:{int(crashes)}:{mode}"


def clear_worker_faults() -> None:
    """Disarm worker-crash injection."""
    os.environ.pop(WORKER_FAULTS_ENV, None)


def maybe_inject_worker_fault() -> None:
    """Fire one armed worker fault, if any budget remains.

    Called by :func:`repro.parallel.parallel_map` workers at chunk
    start; a no-op unless :func:`install_worker_faults` armed the
    environment.  Claiming is atomic (``open(..., "x")``), so the
    total number of fired crashes never exceeds the budget no matter
    how many workers race.
    """
    armed = os.environ.get(WORKER_FAULTS_ENV)
    if not armed:
        return
    state_dir, crashes, mode = armed.rsplit(":", 2)
    for slot in range(int(crashes)):
        claim = Path(state_dir) / f"crash-{slot}"
        try:
            with open(claim, "x"):
                pass
        except FileExistsError:
            continue
        _count_fault("parallel", f"worker_{mode}")
        if mode == "exit":
            import multiprocessing
            if multiprocessing.parent_process() is not None:
                os._exit(WORKER_CRASH_EXIT_CODE)
            # In the dispatching process itself (serial fallback runs
            # chunks in-process): never hard-kill the caller — degrade
            # to a retryable crash instead.
        raise SimulatedWorkerCrash(
            f"injected worker crash (slot {slot})")


# ---------------------------------------------------------------------------
# Artifact-store corruption
# ---------------------------------------------------------------------------

def corrupt_object(store, key: str) -> Path:
    """Flip bytes of one stored object file (disk layer only).

    Returns the corrupted path.  The store's sha-verification must
    detect the damage on next load, quarantine the file, and recompute.
    """
    if store.root is None:
        raise ValueError("corrupt_object needs an on-disk store")
    path = store._object_path(key)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"object {key} is empty")
    # Flip a byte near the middle: lands in the payload, not just the
    # header, so verification (not framing) is what must catch it.
    position = len(data) // 2
    data[position] ^= 0xFF
    path.write_bytes(bytes(data))
    _count_fault("store", "corrupt_object")
    return path
