"""Dead-letter quarantine: poison records leave the stream, not the run.

A :class:`Quarantine` is the sink supervised sources route malformed
or out-of-order records into.  Each entry becomes one JSONL line in a
sidecar file (append-only, flushed per record so a crash loses at most
nothing) plus a ``repro_ingest_quarantined_total{source,reason}``
counter increment — the run keeps going, and the operator can replay
or inspect the sidecar afterwards.
"""

from __future__ import annotations

import json
import logging
import threading
from pathlib import Path
from typing import Any

from ..obs import get_registry

logger = logging.getLogger("repro.resilience")


def _describe(payload: Any) -> Any:
    """A JSON-safe rendering of a quarantined payload.

    Records are stored via their own canonical JSON when they have one
    (``DatasetRecord.to_json``); anything else falls back to ``repr``,
    which always serializes — the sidecar must never itself raise.
    """
    if payload is None:
        return None
    to_json = getattr(payload, "to_json", None)
    if callable(to_json):
        try:
            return json.loads(to_json())
        except Exception:  # pragma: no cover - defensive
            pass
    try:
        json.dumps(payload, allow_nan=False)
        return payload
    except (TypeError, ValueError):
        return repr(payload)


class Quarantine:
    """Append-only dead-letter sink with a JSONL sidecar.

    ``path=None`` keeps entries in memory only (counting still works);
    with a path every entry is appended and flushed immediately.
    Thread-safe: sources supervised on different threads may share one
    sink.
    """

    def __init__(self, path: str | Path | None = None, *,
                 registry=None) -> None:
        self.path = Path(path) if path is not None else None
        self.metrics = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._count = 0
        self._by_reason: dict[str, int] = {}
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    @property
    def count(self) -> int:
        return self._count

    def by_reason(self) -> dict[str, int]:
        with self._lock:
            return dict(self._by_reason)

    def add(self, source: str, reason: str, payload: Any = None) -> None:
        """Quarantine one poison record (never raises).

        The full ``reason`` (which may embed record-specific detail,
        e.g. the offending timestamps) goes to the sidecar; the counter
        and :meth:`by_reason` use only the part before any ``" ("`` —
        a stable family like ``"out of order"`` — so metric label
        cardinality stays bounded.
        """
        family = reason.split(" (", 1)[0]
        entry = {"source": source, "reason": reason,
                 "payload": _describe(payload)}
        with self._lock:
            self._count += 1
            self._by_reason[family] = self._by_reason.get(family, 0) + 1
            if self._handle is not None:
                try:
                    self._handle.write(json.dumps(entry, sort_keys=True))
                    self._handle.write("\n")
                    self._handle.flush()
                except OSError as exc:  # pragma: no cover - disk full etc.
                    logger.error("quarantine sidecar write failed: %s", exc)
        self.metrics.counter(
            "repro_ingest_quarantined_total",
            "Records diverted to the dead-letter quarantine.",
            source=source, reason=family).inc()
        logger.warning("quarantined record from %s (%s)", source, reason)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Quarantine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def count_quarantined(path: str | Path) -> int:
    """Entries in a quarantine sidecar (0 for a missing file)."""
    path = Path(path)
    if not path.exists():
        return 0
    with path.open("r", encoding="utf-8") as handle:
        return sum(1 for line in handle if line.strip())
