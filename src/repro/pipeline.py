"""End-to-end pipeline: world -> collection -> analysis inputs.

This module wires the pieces together the way the paper's study ran:
generate (or obtain) the platforms, crawl them into datasets, slice the
datasets into the community splits every table uses, and assemble the
per-URL cascades for the Hawkes influence experiment.

.. note::
   The preferred public surface is :class:`repro.Study`
   (:mod:`repro.api`), which wraps these functions with dependency
   tracking and a content-addressed artifact cache.  The pure
   compute helpers here (:func:`collect`, :func:`influence_cascades`,
   :func:`influence_corpus`, :func:`stream_sources`) remain the
   canonical implementations the session delegates to; the one-shot
   entry points (:func:`generate_and_collect`, :func:`fit_influence`)
   are deprecation shims that now delegate *to* the session.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterator

from .analysis import characterization as chz
from .collection import (
    Dataset,
    DatasetRecord,
    FourchanCrawler,
    GenericCollector,
    RedditDumpReader,
    RecrawlStats,
    TweetRecrawler,
    TwitterStreamCollector,
)
from .platforms.registry import Ecosystem
from .config import (
    HAWKES_PROCESSES,
    HawkesConfig,
    PLATFORM_POL,
    PLATFORM_REDDIT,
    PLATFORM_TWITTER,
    SELECTED_SUBREDDITS,
    TWITTER_GAPS,
)
from .core.influence import (
    FitMethod,
    InfluenceResult,
    UrlCascade,
    fit_corpus,
    select_urls,
    trim_gap_urls,
)
from .news.domains import NewsCategory
from .parallel.seeding import SeedLike
from .synthesis.world import World, WorldConfig, build_world


@dataclass
class CollectedData:
    """Everything the analyses consume, post-collection."""

    world: World
    twitter: Dataset
    reddit: Dataset
    fourchan: Dataset
    recrawl: RecrawlStats
    #: Datasets of scenario-declared generic platforms, keyed by spec key.
    extras: dict[str, Dataset] = field(default_factory=dict)

    # -- canonical slices ---------------------------------------------------

    @property
    def reddit_six(self) -> Dataset:
        return chz.slice_six_subreddits(self.reddit)

    @property
    def reddit_other(self) -> Dataset:
        return chz.slice_other_subreddits(self.reddit)

    @property
    def pol(self) -> Dataset:
        return chz.slice_board(self.fourchan, "/pol/")

    @property
    def fourchan_other(self) -> Dataset:
        return chz.slice_other_boards(self.fourchan, "/pol/")

    def extra_slices(self) -> dict[str, Dataset]:
        """Extra-platform datasets keyed by their process/slice name."""
        slices: dict[str, Dataset] = {}
        for spec in self.world.config.extra_platforms:
            if spec.key in self.extras:
                slices[spec.process] = self.extras[spec.key]
        return slices

    def sequence_slices(self) -> dict[str, Dataset]:
        """The coarse platforms of Tables 8-10 / Figures 7-8.

        The paper's three, plus one slice per scenario-declared extra
        platform (keyed by the extra's process name).
        """
        slices = {
            PLATFORM_POL: self.pol,
            PLATFORM_REDDIT: self.reddit_six,
            PLATFORM_TWITTER: self.twitter,
        }
        slices.update(self.extra_slices())
        return slices

    def merged(self) -> Dataset:
        return Dataset([*self.twitter.records, *self.reddit.records,
                        *self.fourchan.records,
                        *(record for dataset in self.extras.values()
                          for record in dataset.records)])

    def url_domains(self) -> dict[str, str]:
        domains: dict[str, str] = {}
        for dataset in (self.twitter, self.reddit, self.fourchan,
                        *self.extras.values()):
            for record in dataset:
                for occurrence in record.urls:
                    domains.setdefault(occurrence.url, occurrence.domain)
        return domains


def collect(world: World, stream_seed: int = 0) -> CollectedData:
    """Run all collectors against a world (Section 2.2)."""
    twitter = TwitterStreamCollector(
        registry=world.registry, seed=stream_seed).collect(world.twitter)
    reddit = RedditDumpReader(registry=world.registry).collect(world.reddit)
    fourchan = FourchanCrawler(registry=world.registry).collect(
        world.fourchan)
    recrawl = TweetRecrawler().recrawl(twitter, world.twitter)
    extras = {
        key: GenericCollector(registry=world.registry).collect(platform)
        for key, platform in world.extras.items()
    }
    return CollectedData(world=world, twitter=twitter, reddit=reddit,
                         fourchan=fourchan, recrawl=recrawl, extras=extras)


def generate_and_collect(config: WorldConfig | None = None) -> CollectedData:
    """Build a world and crawl it.

    .. deprecated:: 1.2
       Use ``repro.Study(world=config).data`` — same result, plus
       artifact caching and access to every downstream stage.
    """
    warnings.warn(
        "generate_and_collect() is deprecated; use "
        "repro.Study(world=config).data", DeprecationWarning, stacklevel=2)
    from .api.study import Study
    return Study(world=config).data


def stream_source_factories(world: World, stream_seed: int = 0,
                            ) -> list[tuple[str,
                                            Callable[[],
                                                     Iterator[DatasetRecord]]]]:
    """Restartable per-platform stream builders for the live event bus.

    Each factory rebuilds its stream from the beginning and replays
    deterministically (every ``stream()`` call re-sorts with a fresh
    seeded RNG), which is exactly the contract
    :func:`repro.resilience.supervised_source` needs to restart a
    transiently failed source and skip already-delivered records.
    """
    factories: list[tuple[str, Callable[[], Iterator[DatasetRecord]]]] = [
        ("twitter", lambda: TwitterStreamCollector(
            registry=world.registry,
            seed=stream_seed).stream(world.twitter)),
        ("reddit", lambda: RedditDumpReader(
            registry=world.registry).stream(world.reddit)),
        ("4chan", lambda: FourchanCrawler(
            registry=world.registry).stream(world.fourchan)),
    ]
    for key, platform in world.extras.items():
        factories.append((key, lambda platform=platform: GenericCollector(
            registry=world.registry).stream(platform)))
    return factories


def stream_sources(world: World, stream_seed: int = 0,
                   ) -> list[tuple[str, Iterator[DatasetRecord]]]:
    """Per-platform record generators for the live event bus.

    The exact collectors :func:`collect` runs, exposed as generators:
    feeding these through :class:`repro.live.EventBus` yields the same
    records batch collection produces, one at a time.
    """
    return [(name, factory()) for name, factory
            in stream_source_factories(world, stream_seed)]


def influence_cascades(data: CollectedData,
                       ecosystem: Ecosystem | None = None,
                       ) -> list[UrlCascade]:
    """Assemble per-URL cascades over the ecosystem's K processes.

    Communities the ecosystem maps to no process (other subreddits,
    other boards) are ignored, matching Section 5.2.  Without an
    ecosystem, the paper's eight processes apply (each community is its
    own process); a scenario ecosystem may merge communities into
    platform-level processes (e.g. the six subreddits into ``Reddit``).
    """
    if ecosystem is None:
        allowed = set(HAWKES_PROCESSES)
        process_of = (lambda community:
                      community if community in allowed else None)
    else:
        process_of = ecosystem.process_of
    merged = data.merged()
    categories = merged.url_categories()
    cascades: list[UrlCascade] = []
    for url, times in merged.url_timestamps().items():
        events = tuple((t, process)
                       for t, community in times
                       if (process := process_of(community)) is not None)
        if not events:
            continue
        cascades.append(UrlCascade(
            url=url,
            category=categories[url],
            events=events,
        ))
    return cascades


def influence_corpus(data: CollectedData,
                     gaps: tuple = TWITTER_GAPS,
                     trim_fraction: float = 0.10,
                     max_urls: int | None = None) -> list[UrlCascade]:
    """Assemble, select, and gap-trim the Hawkes corpus (Section 5.2)."""
    corpus = trim_gap_urls(select_urls(influence_cascades(data)),
                           gaps, trim_fraction)
    return corpus if max_urls is None else corpus[:max_urls]


def fit_influence(data: CollectedData,
                  config: HawkesConfig | None = None,
                  method: FitMethod = "gibbs",
                  rng: SeedLike = 0,
                  max_urls: int | None = None,
                  n_jobs: int | None = 1) -> InfluenceResult:
    """Corpus selection + per-URL fitting in one call.

    .. deprecated:: 1.2
       Use ``repro.Study.from_data(data, ...).influence()`` — the shim
       delegates there (bit-identical results; ``n_jobs`` fans the
       per-URL fits out without changing them, see
       :mod:`repro.parallel`).
    """
    warnings.warn(
        "fit_influence() is deprecated; use "
        "repro.Study.from_data(data, ...).influence()",
        DeprecationWarning, stacklevel=2)
    from .api.study import Study
    study = Study.from_data(data, hawkes=config, method=method,
                            fit_seed=rng, max_urls=max_urls, n_jobs=n_jobs)
    return study.influence()
