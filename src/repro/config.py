"""Study configuration: the paper's window, gaps, and community registry.

The constants here mirror Section 2.2 of the paper: the data covers
June 30 2016 through February 28 2017, with crawler-failure gaps on
Twitter and 4chan.  The eight Hawkes processes of Section 5 are Twitter,
4chan's /pol/, and the six selected subreddits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timeutil import Interval, utc

# ---------------------------------------------------------------------------
# Study window (Section 2.2)
# ---------------------------------------------------------------------------

STUDY_START = utc(2016, 6, 30)
STUDY_END = utc(2017, 2, 28, 23, 59, 59) + 1
STUDY_WINDOW = Interval(STUDY_START, STUDY_END)

#: Twitter collection-infrastructure failures (Section 2.2).
TWITTER_GAPS: tuple[Interval, ...] = (
    Interval(utc(2016, 10, 28), utc(2016, 11, 3)),   # Oct 28 - Nov 2
    Interval(utc(2016, 11, 5), utc(2016, 11, 17)),   # Nov 5 - Nov 16
    Interval(utc(2016, 11, 22), utc(2017, 1, 14)),   # Nov 22 - Jan 13
    Interval(utc(2017, 2, 24), STUDY_END),           # Feb 24 - Feb 28
)

#: 4chan crawler failures (Section 2.2).
FOURCHAN_GAPS: tuple[Interval, ...] = (
    Interval(utc(2016, 10, 15), utc(2016, 10, 17)),  # Oct 15 - 16
    Interval(utc(2016, 12, 16), utc(2016, 12, 26)),  # Dec 16 - 25
    Interval(utc(2017, 1, 10), utc(2017, 1, 14)),    # Jan 10 - 13
)

# ---------------------------------------------------------------------------
# Communities (the Hawkes processes of Section 5, plus baselines)
# ---------------------------------------------------------------------------
# The community literals now live on the platform registry
# (:mod:`repro.platforms.registry`), where ecosystems beyond the paper's
# fixed triple are declared.  The names below are deprecated aliases kept
# for the wide legacy surface; new code should read them from the registry
# or from an :class:`~repro.platforms.registry.Ecosystem`.

from .platforms.registry import (  # noqa: E402  (re-exported aliases)
    FOURCHAN_BASELINE_BOARDS,
    FOURCHAN_BOARDS,
    HAWKES_PROCESSES,
    PLATFORM_CODES,
    PLATFORM_POL,
    PLATFORM_REDDIT,
    PLATFORM_TWITTER,
    SELECTED_SUBREDDITS,
    SEQUENCE_PLATFORMS,
)

__all_registry_aliases__ = (
    "SELECTED_SUBREDDITS", "FOURCHAN_BOARDS", "FOURCHAN_BASELINE_BOARDS",
    "HAWKES_PROCESSES", "PLATFORM_TWITTER", "PLATFORM_REDDIT",
    "PLATFORM_POL", "SEQUENCE_PLATFORMS", "PLATFORM_CODES",
)


@dataclass(frozen=True)
class HawkesConfig:
    """Parameters of the Section 5 influence-estimation experiment."""

    #: Time-bin width, seconds (paper: 1 minute).
    delta_t: int = 60
    #: Maximum lag an event can excite, in bins (paper: 720 min = 12 h).
    max_lag_bins: int = 720
    #: Gibbs sweeps and burn-in used when fitting each URL.
    gibbs_iterations: int = 120
    gibbs_burn_in: int = 40
    #: Fraction of gap-overlapping URLs removed, shortest-duration first
    #: (paper: 10%).
    gap_trim_fraction: float = 0.10
    #: Gamma prior hyper-parameters on background rates and weights.
    background_shape: float = 1.0
    background_rate: float = 100.0
    weight_shape: float = 1.0
    weight_rate: float = 18.0
    #: Dirichlet concentration of the lag PMF prior.
    impulse_concentration: float = 1.0


@dataclass(frozen=True)
class StudyConfig:
    """Bundle of all knobs a pipeline run needs."""

    window: Interval = STUDY_WINDOW
    twitter_gaps: tuple[Interval, ...] = TWITTER_GAPS
    fourchan_gaps: tuple[Interval, ...] = FOURCHAN_GAPS
    hawkes: HawkesConfig = field(default_factory=HawkesConfig)
    selected_subreddits: tuple[str, ...] = SELECTED_SUBREDDITS
