"""Study configuration: the paper's window, gaps, and community registry.

The constants here mirror Section 2.2 of the paper: the data covers
June 30 2016 through February 28 2017, with crawler-failure gaps on
Twitter and 4chan.  The eight Hawkes processes of Section 5 are Twitter,
4chan's /pol/, and the six selected subreddits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timeutil import Interval, utc

# ---------------------------------------------------------------------------
# Study window (Section 2.2)
# ---------------------------------------------------------------------------

STUDY_START = utc(2016, 6, 30)
STUDY_END = utc(2017, 2, 28, 23, 59, 59) + 1
STUDY_WINDOW = Interval(STUDY_START, STUDY_END)

#: Twitter collection-infrastructure failures (Section 2.2).
TWITTER_GAPS: tuple[Interval, ...] = (
    Interval(utc(2016, 10, 28), utc(2016, 11, 3)),   # Oct 28 - Nov 2
    Interval(utc(2016, 11, 5), utc(2016, 11, 17)),   # Nov 5 - Nov 16
    Interval(utc(2016, 11, 22), utc(2017, 1, 14)),   # Nov 22 - Jan 13
    Interval(utc(2017, 2, 24), STUDY_END),           # Feb 24 - Feb 28
)

#: 4chan crawler failures (Section 2.2).
FOURCHAN_GAPS: tuple[Interval, ...] = (
    Interval(utc(2016, 10, 15), utc(2016, 10, 17)),  # Oct 15 - 16
    Interval(utc(2016, 12, 16), utc(2016, 12, 26)),  # Dec 16 - 25
    Interval(utc(2017, 1, 10), utc(2017, 1, 14)),    # Jan 10 - 13
)

# ---------------------------------------------------------------------------
# Communities (the Hawkes processes of Section 5, plus baselines)
# ---------------------------------------------------------------------------

#: The six selected subreddits (Section 3).
SELECTED_SUBREDDITS: tuple[str, ...] = (
    "The_Donald",
    "worldnews",
    "politics",
    "news",
    "conspiracy",
    "AskReddit",
)

#: 4chan boards studied; /pol/ is primary, the rest are baselines.
FOURCHAN_BOARDS: tuple[str, ...] = ("pol", "sp", "int", "sci")
FOURCHAN_BASELINE_BOARDS: tuple[str, ...] = ("sp", "int", "sci")

#: Canonical ordering of the 8 Hawkes processes, matching Fig. 10/11 axes.
HAWKES_PROCESSES: tuple[str, ...] = SELECTED_SUBREDDITS + ("/pol/", "Twitter")

#: Display names for the coarse platform split used in Tables 8-10.
PLATFORM_TWITTER = "Twitter"
PLATFORM_REDDIT = "Reddit"       # six selected subreddits
PLATFORM_POL = "/pol/"
SEQUENCE_PLATFORMS: tuple[str, ...] = (PLATFORM_POL, PLATFORM_REDDIT,
                                       PLATFORM_TWITTER)
#: Single-letter codes used by the paper's sequence tables.
PLATFORM_CODES = {PLATFORM_POL: "4", PLATFORM_REDDIT: "R",
                  PLATFORM_TWITTER: "T"}


@dataclass(frozen=True)
class HawkesConfig:
    """Parameters of the Section 5 influence-estimation experiment."""

    #: Time-bin width, seconds (paper: 1 minute).
    delta_t: int = 60
    #: Maximum lag an event can excite, in bins (paper: 720 min = 12 h).
    max_lag_bins: int = 720
    #: Gibbs sweeps and burn-in used when fitting each URL.
    gibbs_iterations: int = 120
    gibbs_burn_in: int = 40
    #: Fraction of gap-overlapping URLs removed, shortest-duration first
    #: (paper: 10%).
    gap_trim_fraction: float = 0.10
    #: Gamma prior hyper-parameters on background rates and weights.
    background_shape: float = 1.0
    background_rate: float = 100.0
    weight_shape: float = 1.0
    weight_rate: float = 18.0
    #: Dirichlet concentration of the lag PMF prior.
    impulse_concentration: float = 1.0


@dataclass(frozen=True)
class StudyConfig:
    """Bundle of all knobs a pipeline run needs."""

    window: Interval = STUDY_WINDOW
    twitter_gaps: tuple[Interval, ...] = TWITTER_GAPS
    fourchan_gaps: tuple[Interval, ...] = FOURCHAN_GAPS
    hawkes: HawkesConfig = field(default_factory=HawkesConfig)
    selected_subreddits: tuple[str, ...] = SELECTED_SUBREDDITS
