"""News-source substrate: the 99-site registry, articles, and classification.

The paper (Section 2.1) studies 45 mainstream news sites drawn from the
Alexa top-100 and 54 alternative sites drawn from Wikipedia's list of
fake-news websites and FakeNewsWatch, plus two state-sponsored outlets
(rt.com, sputniknews.com).  This package reconstructs that registry from
the domains named in the paper's Tables 5-7 and Figure 8, provides a
synthetic article/URL generator for the simulator, and implements the
URL -> domain -> category classification step used by every analysis.
"""

from .domains import (
    ALTERNATIVE_DOMAINS,
    MAINSTREAM_DOMAINS,
    NewsCategory,
    NewsDomain,
    NewsRegistry,
    default_registry,
)
from .articles import Article, ArticleGenerator
from .classify import classify_url, extract_news_urls
from .urls import canonicalize_url, extract_urls, registered_domain

__all__ = [
    "ALTERNATIVE_DOMAINS",
    "MAINSTREAM_DOMAINS",
    "NewsCategory",
    "NewsDomain",
    "NewsRegistry",
    "default_registry",
    "Article",
    "ArticleGenerator",
    "classify_url",
    "extract_news_urls",
    "canonicalize_url",
    "extract_urls",
    "registered_domain",
]
