"""Synthetic news-article generation.

The world simulator needs a stream of articles (stories), each with a
canonical URL on one of the 99 domains, a headline, and a publication
time.  Headlines are assembled from era-appropriate topic vocabulary so
downstream text processing (URL extraction from post bodies, hashtag
synthesis) has realistic material to chew on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .domains import NewsCategory, NewsDomain, NewsRegistry, default_registry
from .urls import canonicalize_url

_TOPICS_POLITICS = (
    "election", "debate", "campaign", "congress", "senate", "white-house",
    "voters", "polls", "primary", "swing-state", "ballot", "recount",
)
_TOPICS_WORLD = (
    "syria", "brexit", "russia", "china", "nato", "refugees", "sanctions",
    "summit", "treaty", "border", "trade-deal", "peace-talks",
)
_TOPICS_CONSPIRACY = (
    "false-flag", "cover-up", "deep-state", "leaked-emails", "globalists",
    "secret-memo", "shadow-government", "media-blackout", "crisis-actors",
    "vaccines", "chemtrails", "pizzagate",
)
_VERBS = (
    "slams", "exposes", "reveals", "denies", "confirms", "warns",
    "destroys", "backs", "blasts", "questions", "defends", "probes",
)
_SUBJECTS = (
    "trump", "clinton", "fbi", "cia", "media", "establishment", "insider",
    "whistleblower", "official", "report", "study", "source",
)


@dataclass(frozen=True)
class Article:
    """A single news story living at a canonical URL."""

    url: str
    domain: str
    category: NewsCategory
    headline: str
    published_at: int
    article_id: int

    @property
    def is_alternative(self) -> bool:
        return self.category == NewsCategory.ALTERNATIVE


@dataclass
class ArticleGenerator:
    """Deterministic (seeded) generator of :class:`Article` objects.

    ``domain_weights`` optionally biases which domain publishes each
    article; by default all domains of the requested category are equally
    likely.  URL slugs are unique per generator instance, so two articles
    never collide on canonical URL.
    """

    registry: NewsRegistry = field(default_factory=default_registry)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._next_id = 0

    def _slug(self, category: NewsCategory) -> str:
        if category == NewsCategory.ALTERNATIVE:
            pool = _TOPICS_CONSPIRACY + _TOPICS_POLITICS
        else:
            pool = _TOPICS_POLITICS + _TOPICS_WORLD
        words = [
            self._rng.choice(_SUBJECTS),
            self._rng.choice(_VERBS),
            self._rng.choice(pool),
        ]
        return "-".join(words)

    def _headline(self, slug: str) -> str:
        return slug.replace("-", " ").title()

    def generate(self, category: NewsCategory, published_at: int,
                 domain: NewsDomain | None = None,
                 domain_weights: dict[str, float] | None = None) -> Article:
        """Create one article of ``category`` published at ``published_at``."""
        if domain is None:
            members = self.registry.of_category(category)
            if domain_weights:
                weights = [domain_weights.get(d.name, 0.0) for d in members]
                if sum(weights) <= 0:
                    weights = [1.0] * len(members)
                domain = self._rng.choices(members, weights=weights, k=1)[0]
            else:
                domain = self._rng.choice(members)
        elif domain.category != category:
            raise ValueError(
                f"domain {domain.name} is {domain.category}, not {category}")
        article_id = self._next_id
        self._next_id += 1
        slug = self._slug(category)
        path_style = self._rng.randrange(3)
        if path_style == 0:
            path = f"/news/{slug}-{article_id}"
        elif path_style == 1:
            path = f"/2016/{self._rng.randrange(1, 13):02d}/{slug}-{article_id}.html"
        else:
            path = f"/article/{article_id}/{slug}"
        url = canonicalize_url(f"http://{domain.name}{path}")
        return Article(
            url=url,
            domain=domain.name,
            category=category,
            headline=self._headline(slug),
            published_at=int(published_at),
            article_id=article_id,
        )

    def generate_batch(self, category: NewsCategory, times: list[int],
                       domain_weights: dict[str, float] | None = None,
                       ) -> list[Article]:
        """Create one article per timestamp in ``times``."""
        return [self.generate(category, t, domain_weights=domain_weights)
                for t in times]
