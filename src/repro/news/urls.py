"""URL extraction and canonicalization.

The measurement pipeline keys everything on URLs, so two posts sharing
"the same" article must canonicalize to one string.  We reproduce the
usual normalization steps a crawler pipeline performs: scheme and host
lowercasing, ``www.``/mobile-subdomain stripping, tracker-parameter
removal, fragment removal, and trailing-slash normalization.
"""

from __future__ import annotations

import re
from urllib.parse import parse_qsl, urlencode, urlsplit, urlunsplit

#: Matches http(s) URLs embedded in free text (post bodies, tweets).
_URL_RE = re.compile(
    r"""https?://              # scheme
        [\w.-]+                # host
        (?:\:\d+)?             # optional port
        (?:/[^\s<>"'\)\]]*)?   # optional path/query/fragment
    """,
    re.VERBOSE | re.IGNORECASE,
)

#: Query parameters dropped during canonicalization (analytics trackers).
_TRACKER_PARAMS = frozenset({
    "utm_source", "utm_medium", "utm_campaign", "utm_term", "utm_content",
    "fbclid", "gclid", "ref", "ref_src", "smid", "smtyp", "ncid", "cmpid",
    "feedtype", "mc_cid", "mc_eid", "s",
})

#: Subdomains that serve the same content as the apex domain.
_ALIAS_SUBDOMAINS = ("www.", "m.", "mobile.", "amp.", "edition.")

#: Characters commonly glued onto URLs by surrounding prose.
_TRAILING_PUNCT = ".,;:!?'\""


def extract_urls(text: str) -> list[str]:
    """Return all http(s) URLs found in ``text``, in order of appearance."""
    found = []
    for match in _URL_RE.finditer(text):
        url = match.group(0).rstrip(_TRAILING_PUNCT)
        # Strip a balanced-looking close paren, as in "(see http://x.com/a)".
        if url.endswith(")") and url.count("(") < url.count(")"):
            url = url[:-1].rstrip(_TRAILING_PUNCT)
        if url:
            found.append(url)
    return found


def _strip_alias_subdomain(host: str) -> str:
    for prefix in _ALIAS_SUBDOMAINS:
        if host.startswith(prefix) and host.count(".") >= 2:
            return host[len(prefix):]
    return host


def canonicalize_url(url: str) -> str:
    """Return the canonical form of ``url``.

    Canonicalization is idempotent: ``canonicalize_url(canonicalize_url(u))
    == canonicalize_url(u)`` for any input (property-tested).
    """
    url = url.strip()
    parts = urlsplit(url)
    scheme = (parts.scheme or "http").lower()
    if scheme == "https":
        scheme = "http"  # collapse scheme variants of the same article
    host = _strip_alias_subdomain(parts.netloc.lower())
    if host.endswith(":80") or host.endswith(":443"):
        host = host.rsplit(":", 1)[0]
    path = parts.path or "/"
    # Collapse duplicate slashes and a trailing slash (but keep root "/").
    path = re.sub(r"/{2,}", "/", path)
    if len(path) > 1 and path.endswith("/"):
        path = path[:-1]
    query_pairs = [(k, v) for k, v in parse_qsl(parts.query, keep_blank_values=True)
                   if k.lower() not in _TRACKER_PARAMS]
    query_pairs.sort()
    query = urlencode(query_pairs)
    return urlunsplit((scheme, host, path, query, ""))


def registered_domain(url: str) -> str:
    """Return the hostname of ``url`` with alias subdomains stripped.

    This is *not* a full public-suffix computation; the registry's
    longest-suffix :meth:`~repro.news.domains.NewsRegistry.lookup` handles
    multi-label registered domains such as ``abcnews.go.com``.
    """
    host = urlsplit(url).netloc.lower()
    if ":" in host:
        host = host.rsplit(":", 1)[0]
    return _strip_alias_subdomain(host)
