"""URL -> news-category classification.

This is the filtering step of Section 2.2: given raw post text, find the
URLs that point at one of the 99 news sites and label each mainstream or
alternative.  Non-news URLs are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from .domains import NewsCategory, NewsRegistry, default_registry
from .urls import canonicalize_url, extract_urls, registered_domain


@dataclass(frozen=True)
class ClassifiedUrl:
    """A canonical news URL with its registry labels."""

    url: str
    domain: str
    category: NewsCategory

    @property
    def is_alternative(self) -> bool:
        return self.category == NewsCategory.ALTERNATIVE


def classify_url(url: str,
                 registry: NewsRegistry | None = None) -> ClassifiedUrl | None:
    """Classify a single URL; returns ``None`` for non-news URLs."""
    registry = registry or default_registry()
    host = registered_domain(url)
    if not host:
        return None
    entry = registry.lookup(host)
    if entry is None:
        return None
    return ClassifiedUrl(
        url=canonicalize_url(url),
        domain=entry.name,
        category=entry.category,
    )


def extract_news_urls(text: str,
                      registry: NewsRegistry | None = None,
                      ) -> list[ClassifiedUrl]:
    """Extract and classify every news URL in ``text``.

    Duplicate canonical URLs within one text are collapsed to a single
    entry (a post linking the same article twice is one occurrence).
    """
    registry = registry or default_registry()
    seen: dict[str, ClassifiedUrl] = {}
    for raw in extract_urls(text):
        classified = classify_url(raw, registry)
        if classified is not None and classified.url not in seen:
            seen[classified.url] = classified
    return list(seen.values())
