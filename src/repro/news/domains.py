"""The 99-site news registry (45 mainstream + 54 alternative).

Domain names are taken from the paper itself: Tables 5, 6 and 7 list the
top-20 domains per platform and Figure 8 names the remainder.  Sites the
paper mentions but does not rank carry small default popularity weights.

Each platform has its own popularity profile, seeded from the measured
percentages in Tables 5 (six selected subreddits), 6 (Twitter) and
7 (/pol/), so the synthetic corpus reproduces the paper's domain mixes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NewsCategory(enum.Enum):
    """Coarse news-source label used throughout the paper."""

    MAINSTREAM = "mainstream"
    ALTERNATIVE = "alternative"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NewsDomain:
    """One entry in the 99-site list."""

    name: str
    category: NewsCategory
    #: True for the two state-sponsored outlets called out in Section 2.1.
    state_sponsored: bool = False

    def __post_init__(self) -> None:
        if "/" in self.name or "://" in self.name:
            raise ValueError(f"domain name must be bare, got {self.name!r}")


def _alt(name: str, state: bool = False) -> NewsDomain:
    return NewsDomain(name, NewsCategory.ALTERNATIVE, state_sponsored=state)


def _main(name: str) -> NewsDomain:
    return NewsDomain(name, NewsCategory.MAINSTREAM)


#: 54 alternative news sites (Tables 5-7 + Figure 8a + era-appropriate fill).
ALTERNATIVE_DOMAINS: tuple[NewsDomain, ...] = (
    _alt("breitbart.com"),
    _alt("rt.com", state=True),
    _alt("infowars.com"),
    _alt("sputniknews.com", state=True),
    _alt("beforeitsnews.com"),
    _alt("lifezette.com"),
    _alt("naturalnews.com"),
    _alt("activistpost.com"),
    _alt("veteranstoday.com"),
    _alt("redflagnews.com"),
    _alt("prntly.com"),
    _alt("dcclothesline.com"),
    _alt("worldnewsdailyreport.com"),
    _alt("therealstrategy.com"),
    _alt("disclose.tv"),
    _alt("clickhole.com"),
    _alt("libertywritersnews.com"),
    _alt("worldtruth.tv"),
    _alt("thelastlineofdefense.org"),
    _alt("nodisinfo.com"),
    _alt("mediamass.net"),
    _alt("newsbiscuit.com"),
    _alt("react365.com"),
    _alt("the-daily.buzz"),
    _alt("now8news.com"),
    _alt("firebrandleft.com"),
    # Remaining Figure 8a nodes.
    _alt("newsexaminer.net"),
    _alt("huzlers.com"),
    _alt("witscience.org"),
    _alt("realnewsrightnow.com"),
    _alt("thedcgazette.com"),
    _alt("newsbreakshere.com"),
    _alt("private-eye.co.uk"),
    _alt("thenewsnerd.com"),
    _alt("creambmp.com"),
    _alt("empirenews.net"),
    _alt("christwire.org"),
    _alt("dailybuzzlive.com"),
    _alt("newshounds.us"),
    _alt("politicalears.com"),
    _alt("linkbeef.com"),
    _alt("politicops.com"),
    _alt("derfmagazine.com"),
    _alt("stuppid.com"),
    _alt("theuspatriot.com"),
    _alt("usapoliticszone.com"),
    _alt("duhprogressive.com"),
    # Era-appropriate fake-news-list members to reach the paper's 54.
    _alt("abcnews.com.co"),
    _alt("denverguardian.com"),
    _alt("nationalreport.net"),
    _alt("worldpoliticus.com"),
    _alt("departed.co"),
    _alt("empireherald.com"),
    _alt("christiantimesnewspaper.com"),
)

#: 45 mainstream news sites (Tables 5-7 + Figure 8b).
MAINSTREAM_DOMAINS: tuple[NewsDomain, ...] = (
    _main("nytimes.com"),
    _main("cnn.com"),
    _main("theguardian.com"),
    _main("reuters.com"),
    _main("huffingtonpost.com"),
    _main("thehill.com"),
    _main("foxnews.com"),
    _main("bbc.com"),
    _main("abcnews.go.com"),
    _main("usatoday.com"),
    _main("nbcnews.com"),
    _main("time.com"),
    _main("washingtontimes.com"),
    _main("bloomberg.com"),
    _main("wsj.com"),
    _main("cbsnews.com"),
    _main("thedailybeast.com"),
    _main("forbes.com"),
    _main("nypost.com"),
    _main("cnbc.com"),
    _main("cbc.ca"),
    _main("washingtonexaminer.com"),
    # Remaining Figure 8b nodes.
    _main("chicagotribune.com"),
    _main("chron.com"),
    _main("azcentral.com"),
    _main("voanews.com"),
    _main("nationalpost.com"),
    _main("usnews.com"),
    _main("theglobeandmail.com"),
    _main("thestar.com"),
    _main("startribune.com"),
    _main("bostonglobe.com"),
    _main("euronews.com"),
    _main("mercurynews.com"),
    _main("dallasnews.com"),
    _main("denverpost.com"),
    _main("miamiherald.com"),
    _main("theage.com.au"),
    _main("seattletimes.com"),
    _main("ctvnews.ca"),
    _main("dw.com"),
    _main("aljazeera.com"),
    _main("economist.com"),
    _main("thetimes.co.uk"),
    _main("news.com.au"),
)

# ---------------------------------------------------------------------------
# Per-platform popularity profiles (percent of that platform's URLs of the
# category), transcribed from Tables 5, 6 and 7.  Unlisted registry domains
# share the leftover mass uniformly.
# ---------------------------------------------------------------------------

#: Table 5 - six selected subreddits.
REDDIT_ALT_SHARES: dict[str, float] = {
    "breitbart.com": 55.58, "rt.com": 19.18, "infowars.com": 8.99,
    "sputniknews.com": 3.95, "beforeitsnews.com": 2.34, "lifezette.com": 2.28,
    "naturalnews.com": 1.54, "activistpost.com": 1.45,
    "veteranstoday.com": 1.11, "redflagnews.com": 0.63, "prntly.com": 0.49,
    "dcclothesline.com": 0.40, "worldnewsdailyreport.com": 0.36,
    "therealstrategy.com": 0.30, "disclose.tv": 0.23, "clickhole.com": 0.20,
    "libertywritersnews.com": 0.20, "worldtruth.tv": 0.14,
    "thelastlineofdefense.org": 0.07, "nodisinfo.com": 0.05,
}
REDDIT_MAIN_SHARES: dict[str, float] = {
    "nytimes.com": 14.07, "cnn.com": 11.23, "theguardian.com": 8.86,
    "reuters.com": 6.67, "huffingtonpost.com": 5.67, "thehill.com": 5.15,
    "foxnews.com": 4.89, "bbc.com": 4.76, "abcnews.go.com": 2.94,
    "usatoday.com": 2.87, "nbcnews.com": 2.86, "time.com": 2.57,
    "washingtontimes.com": 2.52, "bloomberg.com": 2.50, "wsj.com": 2.31,
    "cbsnews.com": 2.26, "thedailybeast.com": 2.05, "forbes.com": 1.87,
    "nypost.com": 1.85, "cnbc.com": 1.54,
}

#: Table 6 - Twitter.
TWITTER_ALT_SHARES: dict[str, float] = {
    "breitbart.com": 46.04, "rt.com": 17.56, "infowars.com": 17.25,
    "therealstrategy.com": 5.63, "sputniknews.com": 4.11,
    "beforeitsnews.com": 2.26, "redflagnews.com": 2.04,
    "dcclothesline.com": 1.37, "naturalnews.com": 1.29, "clickhole.com": 0.53,
    "activistpost.com": 0.41, "disclose.tv": 0.39, "prntly.com": 0.26,
    "worldtruth.tv": 0.25, "libertywritersnews.com": 0.15,
    "worldnewsdailyreport.com": 0.06, "mediamass.net": 0.04,
    "newsbiscuit.com": 0.03, "react365.com": 0.02, "the-daily.buzz": 0.02,
}
TWITTER_MAIN_SHARES: dict[str, float] = {
    "theguardian.com": 19.04, "nytimes.com": 10.07, "bbc.com": 8.99,
    "forbes.com": 6.24, "thehill.com": 4.95, "cbc.ca": 4.82,
    "foxnews.com": 4.79, "wsj.com": 4.04, "bloomberg.com": 3.48,
    "reuters.com": 2.85, "usatoday.com": 2.02, "thedailybeast.com": 2.02,
    "nbcnews.com": 1.96, "nypost.com": 1.95, "cbsnews.com": 1.89,
    "abcnews.go.com": 1.78, "time.com": 1.71, "cnbc.com": 1.40,
    "washingtontimes.com": 1.34, "washingtonexaminer.com": 1.33,
}

#: Table 7 - /pol/.
POL_ALT_SHARES: dict[str, float] = {
    "breitbart.com": 53.00, "rt.com": 28.22, "infowars.com": 9.12,
    "sputniknews.com": 3.36, "veteranstoday.com": 1.07,
    "beforeitsnews.com": 0.91, "lifezette.com": 0.86, "naturalnews.com": 0.61,
    "worldnewsdailyreport.com": 0.46, "prntly.com": 0.41,
    "activistpost.com": 0.38, "dcclothesline.com": 0.29,
    "redflagnews.com": 0.20, "libertywritersnews.com": 0.16,
    "therealstrategy.com": 0.16, "clickhole.com": 0.11, "disclose.tv": 0.10,
    "now8news.com": 0.06, "firebrandleft.com": 0.05, "nodisinfo.com": 0.05,
}
POL_MAIN_SHARES: dict[str, float] = {
    "theguardian.com": 14.10, "nytimes.com": 10.07, "cnn.com": 9.90,
    "bbc.com": 5.45, "foxnews.com": 5.35, "reuters.com": 5.10,
    "time.com": 3.42, "abcnews.go.com": 3.40, "huffingtonpost.com": 3.29,
    "thehill.com": 3.04, "wsj.com": 2.82, "washingtontimes.com": 2.77,
    "bloomberg.com": 2.75, "cbc.ca": 2.66, "nypost.com": 2.65,
    "cbsnews.com": 2.44, "nbcnews.com": 2.32, "usatoday.com": 2.25,
    "cnbc.com": 2.13, "forbes.com": 1.68,
}


@dataclass
class NewsRegistry:
    """Lookup structure over the 99-site list.

    Provides domain -> :class:`NewsDomain` resolution (including subdomain
    matching) and per-platform popularity profiles used by the synthetic
    world generator.
    """

    domains: tuple[NewsDomain, ...] = field(
        default=MAINSTREAM_DOMAINS + ALTERNATIVE_DOMAINS)

    def __post_init__(self) -> None:
        self._by_name = {d.name.lower(): d for d in self.domains}
        if len(self._by_name) != len(self.domains):
            raise ValueError("duplicate domain names in registry")

    # -- lookups ----------------------------------------------------------

    def lookup(self, host: str) -> NewsDomain | None:
        """Resolve a hostname (possibly with subdomains) to a registry entry.

        ``abcnews.go.com`` must match exactly while ``www.breitbart.com``
        should match ``breitbart.com``, so we strip leading labels one at a
        time and take the longest-suffix match.
        """
        host = host.lower().rstrip(".")
        labels = host.split(".")
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            entry = self._by_name.get(candidate)
            if entry is not None:
                return entry
        return None

    def category_of(self, host: str) -> NewsCategory | None:
        entry = self.lookup(host)
        return entry.category if entry else None

    def of_category(self, category: NewsCategory) -> tuple[NewsDomain, ...]:
        return tuple(d for d in self.domains if d.category == category)

    @property
    def mainstream(self) -> tuple[NewsDomain, ...]:
        return self.of_category(NewsCategory.MAINSTREAM)

    @property
    def alternative(self) -> tuple[NewsDomain, ...]:
        return self.of_category(NewsCategory.ALTERNATIVE)

    # -- popularity profiles ----------------------------------------------

    def popularity_profile(self, platform: str,
                           category: NewsCategory) -> dict[str, float]:
        """Return a full probability distribution over registry domains.

        ``platform`` is one of ``"reddit"``, ``"twitter"``, ``"pol"``.
        Domains listed in the corresponding paper table get their measured
        share; the remaining registry domains split the leftover mass.
        """
        table = _PROFILE_TABLES.get((platform.lower(), category))
        if table is None:
            raise KeyError(f"no popularity profile for {platform!r}/{category}")
        members = self.of_category(category)
        named_total = sum(table.values())
        leftover = max(0.0, 100.0 - named_total)
        unlisted = [d.name for d in members if d.name not in table]
        weights: dict[str, float] = {}
        for domain in members:
            if domain.name in table:
                weights[domain.name] = table[domain.name]
            elif unlisted:
                weights[domain.name] = leftover / len(unlisted)
        total = sum(weights.values())
        return {name: w / total for name, w in weights.items()}


_PROFILE_TABLES: dict[tuple[str, NewsCategory], dict[str, float]] = {
    ("reddit", NewsCategory.ALTERNATIVE): REDDIT_ALT_SHARES,
    ("reddit", NewsCategory.MAINSTREAM): REDDIT_MAIN_SHARES,
    ("twitter", NewsCategory.ALTERNATIVE): TWITTER_ALT_SHARES,
    ("twitter", NewsCategory.MAINSTREAM): TWITTER_MAIN_SHARES,
    ("pol", NewsCategory.ALTERNATIVE): POL_ALT_SHARES,
    ("pol", NewsCategory.MAINSTREAM): POL_MAIN_SHARES,
}

_DEFAULT_REGISTRY: NewsRegistry | None = None


def default_registry() -> NewsRegistry:
    """Return the shared, lazily-built 99-site registry."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = NewsRegistry()
    return _DEFAULT_REGISTRY
