"""Paper-reported values, structured for paper-vs-measured comparison.

Every table and figure in the evaluation carries an entry here: the
experiment id, what the paper reports (headline numbers transcribed
from the text), the *shape* expectations a reproduction must satisfy,
and the artifact the benchmark harness writes under ``results/``.
EXPERIMENTS.md is generated from this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Experiment:
    """One table or figure of the paper's evaluation."""

    exp_id: str
    title: str
    paper_values: tuple[str, ...]
    shape_checks: tuple[str, ...]
    artifact: str
    bench: str
    modules: tuple[str, ...]


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        exp_id="Table 1",
        title="Total posts crawled and share containing news URLs",
        paper_values=(
            "Twitter: 587M posts, 0.022% alt / 0.070% main",
            "Reddit: 332M posts+comments, 0.023% / 0.181%",
            "4chan: 42M posts, 0.050% / 0.197%",
        ),
        shape_checks=(
            "mainstream share exceeds alternative on every platform",
            "4chan has the largest alternative share",
            "Twitter has by far the most total posts",
        ),
        artifact="table01_post_shares.txt",
        bench="benchmarks/bench_table01_post_shares.py",
        modules=("repro.analysis.characterization.total_post_shares",
                 "repro.platforms"),
    ),
    Experiment(
        exp_id="Table 2",
        title="Dataset overview: posts with URLs and unique URL counts",
        paper_values=(
            "Twitter 486,700 posts; 42,550 alt / 236,480 main URLs",
            "Six subreddits 620,530; 40,046 / 301,840",
            "Other subreddits 1,228,105; 24,027 / 726,948",
            "/pol/ 90,537; 8,963 / 40,164",
            "Other boards 7,131; 615 / 5,513",
        ),
        shape_checks=(
            "mainstream uniques dominate every split",
            "/pol/ dwarfs the baseline boards",
            "other-Reddit: more mainstream, fewer alternative uniques "
            "than the six subreddits",
        ),
        artifact="table02_dataset_overview.txt",
        bench="benchmarks/bench_table02_dataset_overview.py",
        modules=("repro.analysis.characterization.dataset_overview",
                 "repro.collection"),
    ),
    Experiment(
        exp_id="Table 3",
        title="Twitter re-crawl: retrieval and engagement",
        paper_values=(
            "alternative: 83.2% retrieved, 341±1,228 RTs, 0.82±15.6 likes",
            "mainstream: 87.7% retrieved, 404±2,146 RTs, 0.96±55.6 likes",
        ),
        shape_checks=(
            "alternative tweets vanish more often than mainstream",
            "retweet counts heavy-tailed (std > mean)",
            "mean likes below one",
        ),
        artifact="table03_twitter_stats.txt",
        bench="benchmarks/bench_table03_twitter_stats.py",
        modules=("repro.collection.recrawl",
                 "repro.analysis.characterization.twitter_recrawl_stats"),
    ),
    Experiment(
        exp_id="Table 4",
        title="Top-20 subreddits by news-URL occurrence",
        paper_values=(
            "The_Donald heads alternative with 35.37%",
            "politics heads mainstream with 12.9%",
        ),
        shape_checks=(
            "The_Donald tops the alternative column",
            "politics/worldnews/news top the mainstream column",
            "at least four of the six selected subreddits in the "
            "alternative top-20",
        ),
        artifact="table04_top_subreddits.txt",
        bench="benchmarks/bench_table04_top_subreddits.py",
        modules=("repro.analysis.characterization.top_subreddits",),
    ),
    Experiment(
        exp_id="Table 5",
        title="Top-20 domains, six selected subreddits",
        paper_values=(
            "breitbart.com 55.58% alt; nytimes.com 14.07% main",
            "top-20 cover 99% (alt) / 89% (main)",
        ),
        shape_checks=(
            "breitbart.com dominates alternative",
            "nytimes/cnn near the top of mainstream",
            "top-20 coverage >90% alt / >70% main",
        ),
        artifact="table05_domains_reddit.txt",
        bench="benchmarks/bench_table05_domains_reddit.py",
        modules=("repro.analysis.characterization.top_domains",),
    ),
    Experiment(
        exp_id="Table 6",
        title="Top-20 domains, Twitter",
        paper_values=(
            "breitbart.com 46.04% alt; theguardian.com 19.04% main",
            "therealstrategy.com 5.63% — popular only on Twitter",
        ),
        shape_checks=(
            "breitbart.com tops alternative, theguardian.com mainstream",
            "therealstrategy.com in Twitter's alternative top-10",
        ),
        artifact="table06_domains_twitter.txt",
        bench="benchmarks/bench_table06_domains_twitter.py",
        modules=("repro.analysis.characterization.top_domains",),
    ),
    Experiment(
        exp_id="Table 7",
        title="Top-20 domains, /pol/",
        paper_values=(
            "breitbart.com 53.00%, rt.com 28.22% alt",
            "theguardian.com 14.10% main",
        ),
        shape_checks=(
            "breitbart.com tops alternative with rt.com in the top-4",
            "guardian/nytimes/cnn lead mainstream",
        ),
        artifact="table07_domains_pol.txt",
        bench="benchmarks/bench_table07_domains_pol.py",
        modules=("repro.analysis.characterization.top_domains",),
    ),
    Experiment(
        exp_id="Figure 1",
        title="CDF of per-URL appearance counts per platform",
        paper_values=(
            "substantial single-appearance mass on all platforms",
            "Twitter: alternative URLs repost more than mainstream",
        ),
        shape_checks=(
            "P(count=1) > 0.25 everywhere",
            "Twitter alternative mean appearance count exceeds mainstream",
        ),
        artifact="fig01_summary.txt",
        bench="benchmarks/bench_fig01_url_appearance.py",
        modules=("repro.analysis.characterization.url_appearance_cdf",),
    ),
    Experiment(
        exp_id="Figure 2",
        title="Per-domain platform fractions, top-20 domains",
        paper_values=(
            "top-4 alternative domains spread over all three platforms",
            "therealstrategy.com essentially Twitter-only",
            "lifezette/veteranstoday popular off-Twitter",
        ),
        shape_checks=(
            "breitbart/rt in the overall alternative top-4",
            "therealstrategy.com Twitter share > 0.5",
            "per-domain fractions sum to 1",
        ),
        artifact="fig02_domain_fractions.txt",
        bench="benchmarks/bench_fig02_domain_fractions.py",
        modules=("repro.analysis.characterization"
                 ".domain_platform_fractions",),
    ),
    Experiment(
        exp_id="Figure 3",
        title="CDF of per-user alternative-news fraction",
        paper_values=(
            "~80% of users on both platforms share only mainstream",
            "13% of Twitter users share only alternative (likely bots)",
        ),
        shape_checks=(
            "mainstream-only majority on both platforms",
            "Twitter alt-only share exceeds Reddit's",
            "mixed users span the preference range",
        ),
        artifact="fig03_summary.txt",
        bench="benchmarks/bench_fig03_user_fraction.py",
        modules=("repro.analysis.characterization"
                 ".user_alternative_fraction", "repro.synthesis.users"),
    ),
    Experiment(
        exp_id="Figure 4",
        title="Normalized daily occurrence of news URLs",
        paper_values=(
            "/pol/ and the six subreddits lead alternative occurrence",
            "spikes at the first debate and election day",
            "mainstream sharing similar across platforms",
        ),
        shape_checks=(
            "/pol/ normalized alternative share above other-Reddit's",
            "election-day spike present",
            "Twitter gap windows show zero collected activity",
        ),
        artifact="fig04_summary.txt",
        bench="benchmarks/bench_fig04_daily_occurrence.py",
        modules=("repro.analysis.temporal.daily_occurrence",
                 "repro.synthesis.stories"),
    ),
    Experiment(
        exp_id="Figure 5",
        title="CDF of first-post-to-repost lags",
        paper_values=(
            "URLs recycled for months on all platforms",
            "Twitter lags shorter than Reddit/4chan",
            "inflection near the 24-hour mark",
        ),
        shape_checks=(
            "repost tails beyond 1,000 hours",
            "meaningful CDF mass within 24 h on every platform",
        ),
        artifact="fig05_summary.txt",
        bench="benchmarks/bench_fig05_repost_lags.py",
        modules=("repro.analysis.temporal.repost_lag_cdf",),
    ),
    Experiment(
        exp_id="Figure 6",
        title="CDF of per-URL mean inter-arrival times",
        paper_values=(
            "platforms differ significantly (two-sample KS, p < 0.01)",
            "Twitter has the smallest inter-arrival times",
            "six subreddits show a dual fast/slow regime",
        ),
        shape_checks=(
            "KS Twitter-vs-Reddit significant at p < 0.01",
            "Twitter median below the six subreddits' (all URLs)",
        ),
        artifact="fig06_summary.txt",
        bench="benchmarks/bench_fig06_interarrival.py",
        modules=("repro.analysis.temporal.interarrival_cdf",
                 "repro.analysis.stats.ks_two_sample"),
    ),
    Experiment(
        exp_id="Figure 7",
        title="Cross-platform first-occurrence delay CDFs",
        paper_values=(
            "alternative news crosses platforms faster than mainstream",
            "turning points near 24 h; pair-specific cross points "
            "(~1 h to ~2 days)",
            "alt appears on Twitter before the six subreddits 80% of "
            "the time",
        ),
        shape_checks=(
            "mass near the day boundary for every populated pair",
            "alternative deltas not slower than ~3x mainstream",
        ),
        artifact="fig07_summary.txt",
        bench="benchmarks/bench_fig07_cross_platform.py",
        modules=("repro.analysis.temporal.cross_platform_lags",),
    ),
    Experiment(
        exp_id="Table 8",
        title="URLs faster on platform 1 vs platform 2",
        paper_values=(
            "Reddit vs Twitter: 18,762/11,416 main, 5,232/4,301 alt",
            "/pol/ vs Twitter: 2,938/4,700 main, 778/2,099 alt",
            "/pol/ vs Reddit: 5,382/14,662 main, 1,455/3,695 alt",
        ),
        shape_checks=(
            "Reddit ahead of Twitter on mainstream",
            "/pol/ behind Reddit in both categories",
        ),
        artifact="table08_faster_counts.txt",
        bench="benchmarks/bench_table08_faster_counts.py",
        modules=("repro.analysis.temporal.faster_platform_counts",),
    ),
    Experiment(
        exp_id="Table 9",
        title="First-hop appearance-sequence distribution",
        paper_values=(
            "single-platform URLs dominate: 82% alt / 89% main",
            "T only 44.5%/41%, R only 33.3%/46.1%, 4 only 4.4%/3.7%",
            "R→T 6.5%/3.35% is the biggest hop",
        ),
        shape_checks=(
            "singles above 55% in both categories",
            "Reddit-headed hops outnumber /pol/-headed hops",
            "T-only beats 4-only",
        ),
        artifact="table09_first_hop.txt",
        bench="benchmarks/bench_table09_first_hop.py",
        modules=("repro.analysis.sequences.first_hop_distribution",),
    ),
    Experiment(
        exp_id="Table 10",
        title="Triple-platform sequence distribution",
        paper_values=(
            "R→T→4 36.3% alt / 35.3% main; T→R→4 29% / 18.8%",
            "six subreddits head 51% (alt) / 59% (main) of sequences",
        ),
        shape_checks=(
            "sequences ending at /pol/ outnumber those starting there",
            "Reddit heads a substantial share of triplets",
        ),
        artifact="table10_triplets.txt",
        bench="benchmarks/bench_table10_triplets.py",
        modules=("repro.analysis.sequences.triplet_distribution",),
    ),
    Experiment(
        exp_id="Figure 8",
        title="News-ecosystem graphs (domain → first platform)",
        paper_values=(
            "breitbart.com URLs appear first on the six subreddits",
            "infowars/rt/sputniknews appear first on Twitter",
            "/pol/ is never the dominant first platform",
        ),
        shape_checks=(
            "no major domain has /pol/ as dominant first platform",
            "platform-to-platform first-hop edges present",
        ),
        artifact="fig08_ecosystem_graph.txt",
        bench="benchmarks/bench_fig08_ecosystem_graph.py",
        modules=("repro.analysis.graphs.build_ecosystem_graph",),
    ),
    Experiment(
        exp_id="Figure 9",
        title="Illustrative Hawkes cascade (3 processes)",
        paper_values=(
            "conceptual figure: background events trigger impulse "
            "responses and child events across communities",
        ),
        shape_checks=(
            "simulated totals match the analytic branching expectation",
            "events over-dispersed relative to Poisson",
        ),
        artifact="fig09_hawkes_demo.txt",
        bench="benchmarks/bench_fig09_hawkes_demo.py",
        modules=("repro.core.hawkes.simulation",),
    ),
    Experiment(
        exp_id="Table 11",
        title="Hawkes corpus: URLs, events, mean background rates",
        paper_values=(
            "2,136 alt / 5,589 main URLs after selection",
            "Twitter: 23,172 alt / 36,250 main events; λ0 0.0028/0.00233",
            "The_Donald's alternative λ0 exceeds its mainstream λ0",
        ),
        shape_checks=(
            "every selected URL has Twitter and /pol/ events",
            "Twitter holds the most events and highest λ0",
            "mainstream corpus larger than alternative",
        ),
        artifact="table11_hawkes_corpus.txt",
        bench="benchmarks/bench_table11_hawkes_corpus.py",
        modules=("repro.core.influence",),
    ),
    Experiment(
        exp_id="Figure 10",
        title="Mean Hawkes weights, alternative vs mainstream",
        paper_values=(
            "W(Twitter→Twitter) largest: 0.1554 alt vs 0.1096 main "
            "(+41.9%, p<0.01)",
            "The_Donald the only community with all-alt-dominant inputs",
            "Twitter-source rows mostly significant",
        ),
        shape_checks=(
            "W(T→T) the global max in both categories, alt > main",
            "recovered weights correlate with the generating Fig-10 "
            "ground truth",
        ),
        artifact="fig10_mean_weights.txt",
        bench="benchmarks/bench_fig10_mean_weights.py",
        modules=("repro.core.influence.aggregate_weights",
                 "repro.core.hawkes.inference"),
    ),
    Experiment(
        exp_id="Figure 11",
        title="Estimated percentage of events caused, per source",
        paper_values=(
            "Twitter the top single influence for most destinations",
            "The_Donald causes 2.72% of Twitter's alt events, 8% of "
            "/pol/'s",
            "The_Donald + /pol/ >4.5% of Twitter's alternative URLs",
        ),
        shape_checks=(
            "Twitter wins most off-diagonal destination columns",
            "The_Donald + /pol/ influence on Twitter's alt events >1%",
            "Twitter→/pol/ exceeds /pol/→Twitter for alternative",
        ),
        artifact="fig11_influence_pct.txt",
        bench="benchmarks/bench_fig11_influence_pct.py",
        modules=("repro.core.influence.influence_percentages",),
    ),
)


def by_id(exp_id: str) -> Experiment:
    """Look up an experiment by its id (e.g. ``"Table 4"``)."""
    for experiment in EXPERIMENTS:
        if experiment.exp_id.lower() == exp_id.lower():
            return experiment
    raise KeyError(f"unknown experiment {exp_id!r}")
