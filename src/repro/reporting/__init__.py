"""Rendering: monospace tables and CSV figure series.

The paper's figures are CDFs, time series, and matrices; without a
plotting dependency we emit each figure as a data series (CSV) and each
table as aligned monospace text, which is what the benchmark harness
prints and what EXPERIMENTS.md quotes.
"""

from .tables import render_matrix_cells, render_table
from .figures import ecdf_series, write_series
from .study import generate_study_report, write_study_report

__all__ = [
    "render_matrix_cells",
    "render_table",
    "ecdf_series",
    "write_series",
    "generate_study_report",
    "write_study_report",
]
