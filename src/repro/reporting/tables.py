"""Monospace table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_matrix_cells(processes: Sequence[str], cell_lines,
                        title: str | None = None) -> str:
    """Render a K x K matrix whose cells are short multi-line strings.

    ``cell_lines[i][j]`` is a list of strings (e.g. ``["A: 0.0797",
    "M: 0.0700", "13.8% **"]``) — the Figure 10/11 cell format.
    """
    k = len(processes)
    depth = max(len(cell_lines[i][j]) for i in range(k) for j in range(k))
    width = max(
        max((len(line) for line in cell_lines[i][j]), default=0)
        for i in range(k) for j in range(k)
    )
    width = max(width, max(len(p) for p in processes))
    lines = []
    if title:
        lines.append(title)
    header = " " * 14 + "  ".join(p.center(width) for p in processes)
    lines.append(header)
    lines.append("-" * len(header))
    for i, source in enumerate(processes):
        for level in range(depth):
            label = source[:13].ljust(13) if level == 0 else " " * 13
            cells = []
            for j in range(k):
                cell = cell_lines[i][j]
                text = cell[level] if level < len(cell) else ""
                cells.append(text.center(width))
            lines.append(label + " " + "  ".join(cells))
        lines.append("")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.4g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
