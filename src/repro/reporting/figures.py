"""CSV figure-series writers.

Each figure is exported as one CSV whose columns are the plotted
series; any CSV reader or plotting tool can regenerate the picture.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..analysis.stats import Ecdf


def ecdf_series(ecdf: Ecdf, n_points: int = 64,
                log_grid: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) suitable for plotting one CDF curve."""
    if log_grid:
        return ecdf.on_log_grid(n_points)
    return ecdf.steps()


def write_series(path: str | Path,
                 columns: Mapping[str, Sequence]) -> Path:
    """Write named columns (possibly ragged) to a CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = list(columns)
    arrays = [list(columns[name]) for name in names]
    depth = max((len(a) for a in arrays), default=0)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(depth):
            writer.writerow([
                arrays[j][i] if i < len(arrays[j]) else ""
                for j in range(len(names))
            ])
    return path
