"""One-shot study report: every analysis over one collected dataset.

:func:`generate_study_report` walks the paper's structure — dataset
overview, characterization, temporal dynamics, sequences, influence —
and renders a single markdown report.  This is the "run the whole paper
on my data" entry point for downstream users (also available as
``python -m repro report``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..analysis import characterization as chz
from ..analysis import sequences, temporal
from ..config import (
    HAWKES_PROCESSES,
    HawkesConfig,
    STUDY_END,
    STUDY_START,
)
from ..news.domains import NewsCategory
from .tables import render_table

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def _section_overview(data) -> str:
    named = {
        "Twitter": data.twitter,
        "Reddit (six selected subreddits)": data.reddit_six,
        "Reddit (other subreddits)": data.reddit_other,
        "4chan (/pol/)": data.pol,
        "4chan (other boards)": data.fourchan_other,
    }
    named.update(data.extra_slices())
    rows = chz.dataset_overview(named)
    table = render_table(
        ["Community", "Posts w/ URLs", "Alt URLs", "Main URLs"],
        [[r.name, r.posts_with_urls, r.unique_alternative,
          r.unique_mainstream] for r in rows])
    return f"## Dataset overview (Table 2)\n\n```\n{table}\n```\n"


def _section_domains(data) -> str:
    parts = ["## Top domains (Tables 5-7)\n"]
    for name, dataset in (("Twitter", data.twitter),
                          ("six subreddits", data.reddit_six),
                          ("/pol/", data.pol)):
        alt = chz.top_domains(dataset, ALT, 5)
        main = chz.top_domains(dataset, MAIN, 5)
        parts.append(f"**{name}** — alternative: " + ", ".join(
            f"{r.name} ({r.percentage:.1f}%)" for r in alt))
        parts.append(f"mainstream: " + ", ".join(
            f"{r.name} ({r.percentage:.1f}%)" for r in main) + "\n")
    return "\n".join(parts)


def _section_users(data) -> str:
    parts = ["## Per-user behavior (Figure 3)\n"]
    for name, dataset in (("Twitter", data.twitter),
                          ("six subreddits", data.reddit_six)):
        fractions = chz.user_alternative_fraction(dataset)
        parts.append(
            f"- {name}: {fractions.n_users} users with news URLs; "
            f"{fractions.pct_mainstream_only:.1f}% mainstream-only, "
            f"{fractions.pct_alternative_only:.1f}% alternative-only")
    return "\n".join(parts) + "\n"


def _section_temporal(data) -> str:
    parts = ["## Temporal dynamics (Figures 5-7, Table 8)\n"]
    for name, dataset in (("Twitter", data.twitter),
                          ("six subreddits", data.reddit_six),
                          ("/pol/", data.pol)):
        ecdf = temporal.repost_lag_cdf(dataset, MAIN)
        if ecdf is not None:
            parts.append(
                f"- {name}: median repost lag {ecdf.median:.1f} h, "
                f"{100 * temporal.repost_lag_day_inflection(ecdf):.0f}% "
                "of reposts within 24 h")
    pairs = {
        "Reddit6 vs Twitter": (data.reddit_six, data.twitter),
        "/pol/ vs Twitter": (data.pol, data.twitter),
        "/pol/ vs Reddit6": (data.pol, data.reddit_six),
    }
    for process, dataset in data.extra_slices().items():
        pairs[f"{process} vs Twitter"] = (dataset, data.twitter)
    rows = temporal.faster_platform_counts(pairs)
    table = render_table(
        ["Comparison", "News type", "#1 faster", "#2 faster"],
        [[r.comparison, str(r.category), r.faster_on_1, r.faster_on_2]
         for r in rows])
    parts.append(f"\n```\n{table}\n```\n")
    return "\n".join(parts)


def _section_sequences(data) -> str:
    parts = ["## Appearance sequences (Tables 9-10)\n"]
    slices = data.sequence_slices()
    for category in (ALT, MAIN):
        hops = sequences.first_hop_distribution(slices, category)
        singles = sum(r.percentage for r in hops if "only" in r.sequence)
        triples = sequences.triplet_distribution(slices, category)
        top = sorted(triples, key=lambda r: -r.count)[:3]
        parts.append(
            f"- {category.value}: {singles:.0f}% single-platform; "
            "top triplets: " + ", ".join(
                f"{r.sequence} ({r.percentage:.0f}%)" for r in top))
    return "\n".join(parts) + "\n"


def _section_influence(data, max_urls: int, seed: int,
                       n_jobs: int = 1, corpus=None, result=None,
                       ecosystem=None) -> str:
    """Influence section; ``corpus``/``result`` skip recomputation.

    A :class:`~repro.api.study.Study` passes its cached corpus and fits
    so the report is a pure rendering step; the legacy path (both
    ``None``) selects and fits here, exactly as before.  The section
    adapts to the K processes of ``result`` (or of ``ecosystem`` when
    fitting here), so K-platform scenarios render correctly.
    """
    from ..core import aggregate_weights, fit_corpus, influence_percentages
    from ..core.influence import select_urls, trim_gap_urls
    from ..pipeline import influence_cascades, influence_corpus

    if corpus is None:
        if ecosystem is None:
            corpus = influence_corpus(data, max_urls=max_urls)
        else:
            from ..config import TWITTER_GAPS
            corpus = trim_gap_urls(
                select_urls(influence_cascades(data, ecosystem=ecosystem),
                            processes=ecosystem.processes,
                            require_all=ecosystem.require_all,
                            require_any=ecosystem.require_any),
                TWITTER_GAPS, 0.10)[:max_urls]
    if len(corpus) < 4:
        return ("## Influence estimation (Section 5)\n\n"
                "*Too few URLs qualify for the Hawkes corpus.*\n")
    if result is None:
        config = HawkesConfig(gibbs_iterations=30, gibbs_burn_in=10)
        processes = (ecosystem.processes if ecosystem is not None
                     else HAWKES_PROCESSES)
        result = fit_corpus(corpus, config, processes=processes,
                            rng=np.random.default_rng(seed), n_jobs=n_jobs)
    parts = [f"## Influence estimation (Section 5, {len(corpus)} URLs)\n"]
    try:
        agg = aggregate_weights(result)
    except ValueError:
        return parts[0] + "\n*Corpus lacks one of the news categories.*\n"
    processes = result.processes
    k = len(processes)
    twitter = (processes.index("Twitter") if "Twitter" in processes
               else k - 1)
    dest = processes[twitter]
    # The two highlighted sources: the paper's The_Donald and /pol/ when
    # present, otherwise the first two non-destination processes.
    sources = [name for name in ("The_Donald", "/pol/")
               if name in processes and name != dest]
    for name in processes:
        if len(sources) >= 2:
            break
        if name != dest and name not in sources:
            sources.append(name)
    change = agg.percent_change[twitter, twitter]
    # NaN marks cells where the mainstream mean is zero, so the percent
    # change is undefined — render "n/a", never "+nan%".
    change_text = f"{change:+.1f}%" if np.isfinite(change) else "n/a"
    parts.append(
        f"- W({dest}→{dest}): {agg.mean_alternative[twitter, twitter]:.4f} "
        f"alternative vs {agg.mean_mainstream[twitter, twitter]:.4f} "
        f"mainstream ({change_text})")
    pct = influence_percentages(result, ALT)
    parts.append(
        f"- influence on {dest}'s alternative events: " + ", ".join(
            f"{name} {pct[processes.index(name), twitter]:.2f}%"
            for name in sources))
    stars = agg.significance_stars()
    significant = int((stars != "").sum())
    parts.append(f"- {significant}/{k * k} weight cells differ "
                 "significantly between categories (KS)")
    return "\n".join(parts) + "\n"


def generate_study_report(data, include_influence: bool = True,
                          max_urls: int = 120, seed: int = 0,
                          n_jobs: int = 1, corpus=None,
                          influence_result=None, ecosystem=None) -> str:
    """Render the full study over one :class:`CollectedData`.

    ``corpus``/``influence_result`` inject precomputed Section-5
    artifacts (the :meth:`repro.Study.report` path); when omitted the
    influence section computes them itself with ``max_urls``/``seed``.
    ``ecosystem`` routes a K-platform scenario's processes and
    selection rule through that fallback; the paper's apply otherwise.
    """
    extra_counts = "".join(
        f", {len(dataset)} {process}"
        for process, dataset in data.extra_slices().items())
    sections = [
        "# Web Centipede study report\n",
        f"Window: {STUDY_START} .. {STUDY_END} (epoch seconds); "
        f"records: {len(data.twitter)} Twitter, {len(data.reddit)} "
        f"Reddit, {len(data.fourchan)} 4chan{extra_counts}.\n",
        _section_overview(data),
        _section_domains(data),
        _section_users(data),
        _section_temporal(data),
        _section_sequences(data),
    ]
    if include_influence:
        sections.append(_section_influence(data, max_urls, seed, n_jobs,
                                           corpus=corpus,
                                           result=influence_result,
                                           ecosystem=ecosystem))
    return "\n".join(sections)


def write_study_report(data, path: str | Path,
                       include_influence: bool = True,
                       max_urls: int = 120, seed: int = 0,
                       n_jobs: int = 1) -> Path:
    path = Path(path)
    path.write_text(generate_study_report(
        data, include_influence=include_influence, max_urls=max_urls,
        seed=seed, n_jobs=n_jobs), encoding="utf-8")
    return path
