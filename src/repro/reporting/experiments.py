"""EXPERIMENTS.md generation: paper-reported vs measured, per experiment.

Reads the artifacts the benchmark harness writes under ``results/`` and
the paper-value registry in :mod:`repro.paper`, and emits a single
markdown report.  Regenerate with::

    python -m repro experiments
"""

from __future__ import annotations

from pathlib import Path

from ..paper import EXPERIMENTS, Experiment

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation of
*The Web Centipede* (Zannettou et al., IMC 2017).

**How to read this file.**  The original datasets (1% Twitter stream,
Pushshift dumps, /pol/ crawl) are no longer obtainable, so all measured
numbers come from the paper-calibrated synthetic world described in
DESIGN.md — the ground truth of the Section-5 experiment *is* the
paper's own Figure-10/Table-11 parameters.  Absolute counts therefore
scale with the configured world size (~1/25 of the paper's corpus by
default); what must match is the *shape*: who wins, by roughly what
factor, and where crossovers fall.  Every shape expectation below is
asserted programmatically by the corresponding benchmark.

Regenerate all artifacts with::

    pytest benchmarks/ --benchmark-only

"""


def render_experiment(experiment: Experiment,
                      results_dir: Path) -> str:
    lines = [f"## {experiment.exp_id} — {experiment.title}", ""]
    lines.append(f"*Benchmark:* `{experiment.bench}`  ")
    lines.append("*Modules:* " + ", ".join(
        f"`{m}`" for m in experiment.modules))
    lines.append("")
    lines.append("**Paper reports:**")
    for value in experiment.paper_values:
        lines.append(f"- {value}")
    lines.append("")
    lines.append("**Shape checks (asserted by the bench):**")
    for check in experiment.shape_checks:
        lines.append(f"- {check}")
    lines.append("")
    artifact = results_dir / experiment.artifact
    if artifact.exists():
        content = artifact.read_text(encoding="utf-8").rstrip()
        lines.append(f"**Measured** (`results/{experiment.artifact}`):")
        lines.append("")
        lines.append("```")
        lines.append(content)
        lines.append("```")
    else:
        lines.append(f"**Measured:** artifact `results/"
                     f"{experiment.artifact}` not generated yet — run "
                     "the benchmark above.")
    lines.append("")
    return "\n".join(lines)


#: Ablation/extension artifacts beyond the paper's own evaluation.
EXTENSIONS: tuple[tuple[str, str, str], ...] = (
    ("Excitation window", "ablation_maxlag.txt",
     "the paper's unshown 6/12/24/48 h 'similar results' claim, checked"),
    ("Bin width", "ablation_binsize.txt",
     "Delta t in {30 s, 1 min, 5 min} plus the events-alone-in-bin "
     "statistic (paper: 92%)"),
    ("Gap trimming", "ablation_gap_trim.txt",
     "sensitivity to the 10% shortest-URL drop (0/10/20%)"),
    ("Estimators", "ablation_estimators.txt",
     "Gibbs vs discrete EM vs continuous-time EM on identical URLs"),
    ("Bot removal", "ablation_bots.txt",
     "the counterfactual the paper declined (Section 3)"),
    ("MCMC diagnostics", "diagnostics.txt",
     "Geweke/ESS convergence and posterior predictive checks the paper "
     "never reported"),
)


def render_extension(name: str, artifact: str, note: str,
                     results_dir: Path) -> str:
    lines = [f"### {name}", "", note, ""]
    path = results_dir / artifact
    if path.exists():
        lines.append("```")
        lines.append(path.read_text(encoding="utf-8").rstrip())
        lines.append("```")
    else:
        lines.append(f"*artifact `results/{artifact}` not generated "
                     "yet — run the ablation benchmarks*")
    lines.append("")
    return "\n".join(lines)


def generate_markdown(results_dir: str | Path = "results") -> str:
    results_dir = Path(results_dir)
    sections = [HEADER]
    sections.append("## Index\n")
    sections.append("| Experiment | Title | Benchmark | Artifact |")
    sections.append("|---|---|---|---|")
    for experiment in EXPERIMENTS:
        sections.append(
            f"| {experiment.exp_id} | {experiment.title} | "
            f"`{experiment.bench.split('/')[-1]}` | "
            f"`{experiment.artifact}` |")
    sections.append("")
    for experiment in EXPERIMENTS:
        sections.append(render_experiment(experiment, results_dir))
    sections.append("## Extensions beyond the paper\n")
    sections.append(
        "Ablations over the Section-5 design choices and quality gates "
        "the paper did not report (see `benchmarks/bench_ablation_*.py` "
        "and `benchmarks/bench_diagnostics.py`).\n")
    for name, artifact, note in EXTENSIONS:
        sections.append(render_extension(name, artifact, note,
                                         results_dir))
    return "\n".join(sections)


def write_experiments_md(path: str | Path = "EXPERIMENTS.md",
                         results_dir: str | Path = "results") -> Path:
    path = Path(path)
    path.write_text(generate_markdown(results_dir), encoding="utf-8")
    return path
