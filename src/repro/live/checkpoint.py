"""Checkpoint/restore for the live engine.

A checkpoint holds every aggregator's ``state_dict()`` plus the
engine's stream-position counters, in one of two on-disk formats:

* ``json`` (the default): one JSON document — human-inspectable, and
  what the chaos-equivalence pin diffs byte-for-byte.
* ``binary``: the bulky aggregator states packed as NumPy arrays in an
  ``.npz`` archive (keys/counts columns for the counters, CSR layouts
  for first-hops and cascades), wrapped in the ArtifactStore's
  sha256-verified object frame.  Small irregular state (stream
  counters, the refitter) rides along as an embedded JSON member.

``load_checkpoint`` sniffs the format from the file's leading bytes,
so the two formats are interchangeable at read time and a restored
engine cannot tell which one it was saved in — array order preserves
dict key order exactly, including ``Counter.most_common`` tie-breaks.

Writing goes through a temp file + atomic rename so a crash mid-write
never leaves a truncated checkpoint, and a restarted engine restored
from the file continues mid-stream as if it had never stopped.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import numpy as np

#: Format marker so later schema changes can migrate or reject cleanly.
CHECKPOINT_VERSION = 1

#: The aggregator states save_checkpoint packs as arrays; anything else
#: in the state dict travels in the embedded JSON manifest unchanged.
_PACKED_KEYS = ("domains", "appearances", "first_hops", "cascades")


def _str_column(values: list) -> np.ndarray:
    """A unicode array even when ``values`` is empty."""
    if not values:
        return np.empty(0, dtype="U1")
    return np.array(values)


def _finite_column(values: list, what: str) -> np.ndarray:
    """A float column, rejecting NaN/Inf like the JSON path does."""
    column = np.asarray(values, dtype=np.float64)
    if len(column) and not np.isfinite(column).all():
        raise ValueError(f"non-finite value in checkpoint {what}")
    return column


def _pack_state(state: dict) -> "tuple[dict, dict[str, np.ndarray]]":
    """Split a state dict into a JSON manifest + named array columns."""
    manifest = {key: value for key, value in state.items()
                if key not in _PACKED_KEYS}
    arrays: dict[str, np.ndarray] = {}

    for agg in ("domains", "appearances"):
        if agg not in state:
            continue
        layout = []
        for i, (name, per_category) in enumerate(state[agg].items()):
            layout.append({"slice": name,
                           "categories": list(per_category)})
            for j, counter in enumerate(per_category.values()):
                arrays[f"{agg}/{i}/{j}/keys"] = _str_column(list(counter))
                arrays[f"{agg}/{i}/{j}/counts"] = np.fromiter(
                    counter.values(), dtype=np.int64, count=len(counter))
        manifest[f"__{agg}__"] = layout

    if "first_hops" in state:
        layout = []
        for j, (value, firsts) in enumerate(state["first_hops"].items()):
            layout.append(value)
            offsets = [0]
            slices: list[str] = []
            times: list[float] = []
            for platform_firsts in firsts.values():
                slices.extend(platform_firsts)
                times.extend(platform_firsts.values())
                offsets.append(len(slices))
            arrays[f"first_hops/{j}/urls"] = _str_column(list(firsts))
            arrays[f"first_hops/{j}/offsets"] = np.asarray(
                offsets, dtype=np.int64)
            arrays[f"first_hops/{j}/slices"] = _str_column(slices)
            arrays[f"first_hops/{j}/times"] = _finite_column(
                times, "first_hops")
        manifest["__first_hops__"] = layout

    if "cascades" in state:
        events = state["cascades"]["events"]
        offsets = [0]
        times: list[float] = []
        procs: list[str] = []
        for per_url in events.values():
            for when, process in per_url:
                times.append(when)
                procs.append(process)
            offsets.append(len(times))
        arrays["cascades/urls"] = _str_column(list(events))
        arrays["cascades/offsets"] = np.asarray(offsets, dtype=np.int64)
        arrays["cascades/times"] = _finite_column(times, "cascades")
        arrays["cascades/procs"] = _str_column(procs)
        categories = state["cascades"]["categories"]
        arrays["cascades/cat_urls"] = _str_column(list(categories))
        arrays["cascades/cat_values"] = _str_column(
            list(categories.values()))
        manifest["__cascades__"] = True

    return manifest, arrays


def _unpack_state(manifest: dict, arrays) -> dict:
    """Inverse of :func:`_pack_state`; dict key order comes from the
    arrays, so the result is exactly the dict the JSON path loads."""
    state = {key: value for key, value in manifest.items()
             if not (key.startswith("__") and key.endswith("__"))}

    for agg in ("domains", "appearances"):
        layout = manifest.get(f"__{agg}__")
        if layout is None:
            continue
        state[agg] = {
            entry["slice"]: {
                value: dict(zip(arrays[f"{agg}/{i}/{j}/keys"].tolist(),
                                arrays[f"{agg}/{i}/{j}/counts"].tolist()))
                for j, value in enumerate(entry["categories"])
            }
            for i, entry in enumerate(layout)
        }

    layout = manifest.get("__first_hops__")
    if layout is not None:
        first_hops = {}
        for j, value in enumerate(layout):
            urls = arrays[f"first_hops/{j}/urls"].tolist()
            offsets = arrays[f"first_hops/{j}/offsets"].tolist()
            slices = arrays[f"first_hops/{j}/slices"].tolist()
            times = arrays[f"first_hops/{j}/times"].tolist()
            first_hops[value] = {
                url: dict(zip(slices[lo:hi], times[lo:hi]))
                for url, lo, hi in zip(urls, offsets, offsets[1:])
            }
        state["first_hops"] = first_hops

    if manifest.get("__cascades__"):
        urls = arrays["cascades/urls"].tolist()
        offsets = arrays["cascades/offsets"].tolist()
        times = arrays["cascades/times"].tolist()
        procs = arrays["cascades/procs"].tolist()
        state["cascades"] = {
            "events": {
                url: [[t, name] for t, name in
                      zip(times[lo:hi], procs[lo:hi])]
                for url, lo, hi in zip(urls, offsets, offsets[1:])
            },
            "categories": dict(zip(
                arrays["cascades/cat_urls"].tolist(),
                arrays["cascades/cat_values"].tolist())),
        }

    return state


def _binary_blob(state: dict) -> bytes:
    from ..api.store import frame_bytes  # lazy: api pulls in serving deps
    manifest, arrays = _pack_state(state)
    manifest_bytes = json.dumps(
        {"version": CHECKPOINT_VERSION, "state": manifest},
        allow_nan=False).encode("utf-8")
    arrays["__manifest__"] = np.frombuffer(manifest_bytes, dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return frame_bytes(buffer.getvalue())


def save_checkpoint(path: str | Path, state: dict, *,
                    fmt: str = "json") -> Path:
    """Atomically write an engine state dict (``fmt``: json|binary)."""
    if fmt not in ("json", "binary"):
        raise ValueError(f"unknown checkpoint format {fmt!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        if fmt == "binary":
            blob = _binary_blob(state)
            with tmp.open("wb") as handle:
                handle.write(blob)
        else:
            payload = {"version": CHECKPOINT_VERSION, "state": state}
            with tmp.open("w", encoding="utf-8") as handle:
                # allow_nan=False: a NaN/Inf smuggled into aggregator
                # state would otherwise serialize as non-standard JSON
                # that other parsers (and our own strict loads) reject —
                # fail at write time, while the previous good checkpoint
                # is still intact.
                json.dump(payload, handle, allow_nan=False)
    except ValueError:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint back, sniffing json vs binary from the bytes."""
    from ..api.store import OBJECT_MAGIC, unframe_bytes
    raw = Path(path).read_bytes()
    if raw.startswith(OBJECT_MAGIC):
        data = unframe_bytes(raw)
        with np.load(io.BytesIO(data)) as arrays:
            manifest_bytes = bytes(arrays["__manifest__"].tobytes())
            payload = json.loads(manifest_bytes.decode("utf-8"))
            version = payload.get("version")
            if version != CHECKPOINT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint version {version!r} "
                    f"(expected {CHECKPOINT_VERSION})")
            return _unpack_state(payload["state"], arrays)
    payload = json.loads(raw.decode("utf-8"))
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})")
    return payload["state"]
