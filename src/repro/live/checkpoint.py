"""Checkpoint/restore for the live engine.

A checkpoint is a single JSON document holding every aggregator's
``state_dict()`` plus the engine's stream-position counters.  Writing
goes through a temp file + atomic rename so a crash mid-write never
leaves a truncated checkpoint, and a restarted engine restored from the
file continues mid-stream as if it had never stopped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Format marker so later schema changes can migrate or reject cleanly.
CHECKPOINT_VERSION = 1


def save_checkpoint(path: str | Path, state: dict) -> Path:
    """Atomically write an engine state dict as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": CHECKPOINT_VERSION, "state": state}
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            # allow_nan=False: a NaN/Inf smuggled into aggregator state
            # would otherwise serialize as non-standard JSON that other
            # parsers (and our own strict loads) reject — fail at write
            # time, while the previous good checkpoint is still intact.
            json.dump(payload, handle, allow_nan=False)
    except ValueError:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint back into an engine state dict."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})")
    return payload["state"]
