"""The streaming event bus: many sources, one timestamp-ordered stream.

The paper's infrastructure consumed three live feeds at once — the
Twitter 1% sample, Reddit dumps, and a 4chan crawler.  The bus models
that: each source is a plain iterator of
:class:`~repro.collection.store.DatasetRecord` (internally timestamp
ordered, which every collector's ``stream()`` guarantees), and the bus
k-way merges them into one globally ordered stream with a bounded
heap — O(log S) per record for S sources, never materializing a feed.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterable, Iterator

from ..collection.store import Dataset, DatasetRecord, iter_jsonl
from ..obs import get_registry

#: A named feed of records: (source name, iterator).
Source = tuple[str, Iterator[DatasetRecord]]


class EventBus:
    """Merges named record sources into one timestamp-ordered stream.

    Ties are broken by source registration order, then by arrival order
    within the source, so the merge is fully deterministic.
    """

    def __init__(self, sources: Iterable[Source] = ()) -> None:
        self._sources: list[Source] = []
        for name, iterator in sources:
            self.add_source(name, iterator)

    def add_source(self, name: str,
                   records: Iterable[DatasetRecord]) -> None:
        if any(existing == name for existing, _ in self._sources):
            raise ValueError(f"duplicate source name {name!r}")
        self._sources.append((name, iter(records)))

    @property
    def source_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._sources)

    def __iter__(self) -> Iterator[DatasetRecord]:
        for _, record in self.events():
            yield record

    def events(self) -> Iterator[tuple[str, DatasetRecord]]:
        """Yield ``(source name, record)`` in global timestamp order."""
        depth = get_registry().gauge(
            "repro_live_merge_depth",
            "Sources currently alive in the k-way merge heap.")
        heap: list[tuple[float, int, int, DatasetRecord, str,
                         Iterator[DatasetRecord]]] = []
        for index, (name, iterator) in enumerate(self._sources):
            record = next(iterator, None)
            if record is not None:
                heapq.heappush(
                    heap, (record.created_at, index, 0, record, name,
                           iterator))
        depth.set(len(heap))
        while heap:
            when, index, seq, record, name, iterator = heapq.heappop(heap)
            yield name, record
            following = next(iterator, None)
            if following is not None:
                if following.created_at < when:
                    raise ValueError(
                        f"source {name!r} is not timestamp-ordered: "
                        f"{following.created_at} after {when}")
                heapq.heappush(
                    heap, (following.created_at, index, seq + 1, following,
                           name, iterator))
            else:  # a source ran dry: the merge narrowed
                depth.set(len(heap))


# ---------------------------------------------------------------------------
# Ready-made sources
# ---------------------------------------------------------------------------

def dataset_source(dataset: Dataset | Iterable[DatasetRecord],
                   ) -> Iterator[DatasetRecord]:
    """Replay an in-memory dataset in timestamp order."""
    return iter(sorted(dataset, key=lambda r: r.created_at))


def jsonl_source(path: str | Path) -> Iterator[DatasetRecord]:
    """Replay a saved JSONL dataset, line by line.

    Saved datasets are written in collection order (already timestamp
    ordered per platform), so the stream can feed the bus directly
    without loading the file into memory.
    """
    return iter_jsonl(path)
