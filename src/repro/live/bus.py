"""The streaming event bus: many sources, one timestamp-ordered stream.

The paper's infrastructure consumed three live feeds at once — the
Twitter 1% sample, Reddit dumps, and a 4chan crawler.  The bus models
that: each source is a plain iterator of
:class:`~repro.collection.store.DatasetRecord` (internally timestamp
ordered, which every collector's ``stream()`` guarantees), and the bus
k-way merges them into one globally ordered stream with a bounded
heap — O(log S) per record for S sources, never materializing a feed.

Two drain modes share the same sources and the same total order:

* :meth:`EventBus.events` — the per-row merge, one heap op per record;
* :meth:`EventBus.event_batches` — the columnar merge: sources are
  chunked into :class:`~repro.collection.columnar.RecordBatch` columns
  and the heap holds one *chunk head* per source, splicing whole
  timestamp runs out of the leading chunk with one ``searchsorted``
  per heap rotation.  Flattening its output reproduces
  :meth:`~EventBus.events` exactly, including tie-break order (ties go
  to source registration order, then arrival order within a source).
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..collection.columnar import RecordBatch, batch_records
from ..collection.store import Dataset, DatasetRecord, iter_jsonl
from ..obs import get_registry

#: A named feed of records: (source name, iterator).
Source = tuple[str, Iterator[DatasetRecord]]


def _flatten(batches: Iterator[RecordBatch]) -> Iterator[DatasetRecord]:
    """Row view of a batch stream (the batch-of-1 compatibility shim)."""
    for batch in batches:
        yield from batch.iter_records()


class EventBus:
    """Merges named record sources into one timestamp-ordered stream.

    Ties are broken by source registration order, then by arrival order
    within the source, so the merge is fully deterministic.  Sources
    may be row iterators (:meth:`add_source`) or columnar batch
    iterators (:meth:`add_batch_source`); either drain mode accepts
    both kinds.
    """

    def __init__(self, sources: Iterable[Source] = ()) -> None:
        #: (name, iterator, kind) with kind in {"rows", "batches"}.
        self._sources: list[tuple[str, Iterator, str]] = []
        for name, iterator in sources:
            self.add_source(name, iterator)

    def _add(self, name: str, iterator: Iterator, kind: str) -> None:
        if any(existing == name for existing, _, _ in self._sources):
            raise ValueError(f"duplicate source name {name!r}")
        self._sources.append((name, iterator, kind))

    def add_source(self, name: str,
                   records: Iterable[DatasetRecord]) -> None:
        self._add(name, iter(records), "rows")

    def add_batch_source(self, name: str,
                         batches: Iterable[RecordBatch]) -> None:
        """Register a feed that already arrives as columnar chunks."""
        self._add(name, iter(batches), "batches")

    @property
    def source_names(self) -> tuple[str, ...]:
        return tuple(name for name, _, _ in self._sources)

    def __iter__(self) -> Iterator[DatasetRecord]:
        for _, record in self.events():
            yield record

    def events(self) -> Iterator[tuple[str, DatasetRecord]]:
        """Yield ``(source name, record)`` in global timestamp order."""
        depth = get_registry().gauge(
            "repro_live_merge_depth",
            "Sources currently alive in the k-way merge heap.")
        heap: list[tuple[float, int, int, DatasetRecord, str,
                         Iterator[DatasetRecord]]] = []
        for index, (name, iterator, kind) in enumerate(self._sources):
            if kind == "batches":
                iterator = _flatten(iterator)
            record = next(iterator, None)
            if record is not None:
                heapq.heappush(
                    heap, (record.created_at, index, 0, record, name,
                           iterator))
        depth.set(len(heap))
        while heap:
            when, index, seq, record, name, iterator = heapq.heappop(heap)
            yield name, record
            following = next(iterator, None)
            if following is not None:
                if following.created_at < when:
                    raise ValueError(
                        f"source {name!r} is not timestamp-ordered: "
                        f"{following.created_at} after {when}")
                heapq.heappush(
                    heap, (following.created_at, index, seq + 1, following,
                           name, iterator))
            else:  # a source ran dry: the merge narrowed
                depth.set(len(heap))

    # -- columnar drain ------------------------------------------------------

    def event_batches(self, batch_size: int = 512,
                      ) -> Iterator[tuple[str, RecordBatch]]:
        """Yield ``(source name, chunk)`` covering the merged stream.

        Concatenating the chunks' records reproduces :meth:`events`
        record-for-record.  Each heap rotation splices the longest
        prefix of the leading source's chunk that sorts ahead of every
        other source's head — one ``searchsorted`` instead of one heap
        op per record — so a lone source streams through in whole
        chunks and S interleaved sources degrade gracefully toward the
        row merge.
        """
        depth = get_registry().gauge(
            "repro_live_merge_depth",
            "Sources currently alive in the k-way merge heap.")

        def pull(stream: Iterator[RecordBatch], name: str,
                 tail: float) -> "RecordBatch | None":
            """Next non-empty chunk, order-validated against ``tail``."""
            for chunk in stream:
                if not len(chunk):
                    continue
                times = chunk.created_at
                if float(times[0]) < tail:
                    raise ValueError(
                        f"source {name!r} is not timestamp-ordered: "
                        f"{float(times[0])} after {tail}")
                steps = np.diff(times)
                if len(steps) and float(steps.min()) < 0:
                    at = int(np.argmax(steps < 0))
                    raise ValueError(
                        f"source {name!r} is not timestamp-ordered: "
                        f"{float(times[at + 1])} after {float(times[at])}")
                return chunk
            return None

        # Heap entries: (head time, source index, seq, chunk, name,
        # stream).  One entry per source, so (time, index) is unique
        # and the seq counter only guards against ever comparing chunks.
        heap: list = []
        seq = 0
        for index, (name, iterator, kind) in enumerate(self._sources):
            stream = (iterator if kind == "batches"
                      else batch_records(iterator, batch_size))
            chunk = pull(stream, name, -np.inf)
            if chunk is not None:
                heapq.heappush(
                    heap, (float(chunk.created_at[0]), index, seq, chunk,
                           name, stream))
                seq += 1
        depth.set(len(heap))
        while heap:
            when, index, _, chunk, name, stream = heapq.heappop(heap)
            times = chunk.created_at
            if not heap:
                cut = len(chunk)
            else:
                # The run that sorts ahead of the next-best head: ties
                # go to the lower source index, exactly as the row
                # merge's (time, index, seq) heap key breaks them.
                head, index2 = heap[0][0], heap[0][1]
                side = "right" if index < index2 else "left"
                cut = int(np.searchsorted(times, head, side=side))
            yield name, (chunk if cut == len(chunk)
                         else chunk.slice(0, cut))
            if cut < len(chunk):
                rest = chunk.slice(cut, len(chunk))
                heapq.heappush(
                    heap, (float(rest.created_at[0]), index, seq, rest,
                           name, stream))
                seq += 1
                continue
            following = pull(stream, name, float(times[-1]))
            if following is not None:
                heapq.heappush(
                    heap, (float(following.created_at[0]), index, seq,
                           following, name, stream))
                seq += 1
            else:  # a source ran dry: the merge narrowed
                depth.set(len(heap))


# ---------------------------------------------------------------------------
# Ready-made sources
# ---------------------------------------------------------------------------

def dataset_source(dataset: Dataset | Iterable[DatasetRecord],
                   ) -> Iterator[DatasetRecord]:
    """Replay an in-memory dataset in timestamp order."""
    return iter(sorted(dataset, key=lambda r: r.created_at))


def jsonl_source(path: str | Path) -> Iterator[DatasetRecord]:
    """Replay a saved JSONL dataset, line by line.

    Saved datasets are written in collection order (already timestamp
    ordered per platform), so the stream can feed the bus directly
    without loading the file into memory.
    """
    return iter_jsonl(path)


def dataset_batch_source(dataset: Dataset | Iterable[DatasetRecord],
                         batch_size: int = 512,
                         ) -> Iterator[RecordBatch]:
    """Replay an in-memory dataset as timestamp-ordered column chunks."""
    return batch_records(dataset_source(dataset), batch_size)


def jsonl_batch_source(path: str | Path, batch_size: int = 512,
                       ) -> Iterator[RecordBatch]:
    """Replay a saved JSONL dataset as validated column chunks."""
    return iter_jsonl(path, batch_size=batch_size)
