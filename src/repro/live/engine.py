"""The live engine: bus in, rolling paper-measurement views out.

``LiveEngine`` drains an :class:`~repro.live.bus.EventBus`, feeds every
record to the incremental aggregators, periodically re-estimates Hawkes
influence over a sliding window, snapshots its state to a checkpoint
file, and emits rolling summaries.  Each record costs O(log n) work
(the cascade insertion dominates); no step rescans the stream.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterator

from ..obs import get_registry, publish_snapshot, span
from ..platforms.registry import Ecosystem
from .aggregators import (
    CascadeAssembler,
    DomainFractionAggregator,
    FirstHopAggregator,
    UrlAppearanceAggregator,
)
from .bus import EventBus
from .checkpoint import load_checkpoint, save_checkpoint
from .refit import WindowedHawkesRefitter

logger = logging.getLogger("repro.live")


@dataclass(frozen=True)
class RollingSummary:
    """One rolling progress line of the engine."""

    records: int
    by_source: dict[str, int]
    stream_time: float
    distinct_urls: int
    open_cascades: int
    n_refits: int

    def format(self) -> str:
        sources = " ".join(f"{name}={count}"
                           for name, count in sorted(self.by_source.items()))
        return (f"[t={self.stream_time:14.1f}] {self.records:8d} records "
                f"({sources}) urls={self.distinct_urls} "
                f"cascades={self.open_cascades} refits={self.n_refits}")


class LiveEngine:
    """Incremental analytics over a merged record stream."""

    def __init__(self, bus: EventBus | None = None, *,
                 refitter: WindowedHawkesRefitter | None = None,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 20000,
                 summary_every: int = 2000,
                 on_summary: Callable[[RollingSummary], None] | None = None,
                 publish_store=None,
                 registry=None,
                 ecosystem: Ecosystem | None = None,
                 batch_size: int | None = None,
                 checkpoint_format: str = "json",
                 ) -> None:
        self.bus = bus if bus is not None else EventBus()
        #: None = per-row drain; an int switches run() to the columnar
        #: drain (bus.event_batches) with chunks of this many records.
        #: Both drains leave bit-identical engine state.
        self.batch_size = batch_size
        #: "json" or "binary" (npz inside the sha256 object frame); see
        #: repro.live.checkpoint.  Either is readable by restore().
        self.checkpoint_format = checkpoint_format
        self.refitter = refitter
        #: Optional K-platform ecosystem; when set, every aggregator is
        #: built over its slices/processes instead of the paper's fixed
        #: triple, and a default-configured refitter inherits it too.
        self.ecosystem = ecosystem
        if refitter is not None and ecosystem is not None \
                and refitter.ecosystem is None:
            refitter.ecosystem = ecosystem
        #: Optional :class:`repro.api.ArtifactStore`; each windowed
        #: refit is published there so the HTTP query service serves
        #: live results next to batch ones (GET /influence?view=live).
        self.publish_store = publish_store
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self.summary_every = summary_every
        self.on_summary = on_summary

        if ecosystem is None:
            self.domains = DomainFractionAggregator()
            self.appearances = UrlAppearanceAggregator()
            self.first_hops = FirstHopAggregator()
            self.cascades = CascadeAssembler()
        else:
            slices, slice_of = ecosystem.slices, ecosystem.slice_of
            self.domains = DomainFractionAggregator(slices, slice_of)
            self.appearances = UrlAppearanceAggregator(slices, slice_of)
            self.first_hops = FirstHopAggregator(slices, slice_of)
            self.cascades = CascadeAssembler(ecosystem.processes,
                                             ecosystem.process_of)

        self.records_seen = 0
        self.by_source: Counter = Counter()
        self.stream_time = 0.0
        #: Metrics registry (ambient by default); per-source counter
        #: handles are cached so the per-record cost is one method call.
        self.metrics = registry if registry is not None else get_registry()
        self._record_counters: dict = {}
        self._batch_histogram = None
        self._wall_start: float | None = None
        self._wall_base = 0
        #: Records run() must skip to reach the stream position of a
        #: restored checkpoint (set by restore()).
        self._replay_skip = 0
        #: The bus merge, created once: repeated run(limit=...) calls
        #: continue the same iterator, so records a previous call pulled
        #: into the merge heap are never dropped.
        self._events: Iterator | None = None
        #: Unconsumed tail of a chunk a limit= stopped mid-batch, as
        #: (source, RecordBatch); the next run() drains it first.
        self._pending: "tuple[str, object] | None" = None

    # -- ingestion ----------------------------------------------------------

    def process(self, record, source: str = "replay") -> None:
        """Apply one record to every aggregator — the O(Δ) update."""
        self.records_seen += 1
        self.by_source[source] += 1
        counter = self._record_counters.get(source)
        if counter is None:
            counter = self._record_counters[source] = self.metrics.counter(
                "repro_live_records_total",
                "Records processed by the live engine.", source=source)
        counter.inc()
        if record.created_at > self.stream_time:
            self.stream_time = record.created_at
        self.domains.update(record)
        self.appearances.update(record)
        self.first_hops.update(record)
        self.cascades.update(record)

    def process_batch(self, batch, source: str = "replay") -> None:
        """Apply one timestamp-ordered column chunk to every aggregator.

        Equivalent to calling :meth:`process` on each of the chunk's
        records, but bookkeeping (counts, metrics, stream clock) is
        amortized to one update per chunk and the aggregators take
        their vectorized ``update_batch`` paths.
        """
        n = len(batch)
        if not n:
            return
        self.records_seen += n
        self.by_source[source] += n
        counter = self._record_counters.get(source)
        if counter is None:
            counter = self._record_counters[source] = self.metrics.counter(
                "repro_live_records_total",
                "Records processed by the live engine.", source=source)
        counter.inc(n)
        last = float(batch.created_at[n - 1])
        if last > self.stream_time:
            self.stream_time = last
        self.domains.update_batch(batch)
        self.appearances.update_batch(batch)
        self.first_hops.update_batch(batch)
        self.cascades.update_batch(batch)
        histogram = self._batch_histogram
        if histogram is None:
            histogram = self._batch_histogram = self.metrics.histogram(
                "repro_live_batch_records",
                "Records per columnar chunk fed to the aggregators.")
        histogram.observe(n)

    def run(self, limit: int | None = None) -> int:
        """Drain the bus (up to ``limit`` new records); returns records read.

        After :meth:`restore`, the first ``records_seen`` bus records are
        skipped, not re-processed: the bus is assumed to replay the same
        deterministic stream the checkpointed run consumed (same world
        seed, same sources), so skipping reproduces the stream position.
        """
        if self._wall_start is None:
            self._wall_start = perf_counter()
            self._wall_base = self.records_seen
        if self.batch_size is not None:
            consumed = self._run_batches(limit)
        else:
            consumed = self._run_rows(limit)
        if self.checkpoint_path is not None and consumed:
            self.checkpoint()
        if consumed:
            self._update_gauges()
            self.publish_metrics()
        return consumed

    def _run_rows(self, limit: int | None) -> int:
        if self._events is None:
            self._events = self.bus.events()
        events = self._events
        while self._replay_skip > 0:
            if next(events, None) is None:
                break
            self._replay_skip -= 1
        if limit is not None:
            events = islice(events, limit)
        consumed = 0
        for source, record in events:
            self.process(record, source)
            consumed += 1
            if self.summary_every and self.records_seen % self.summary_every == 0:
                self._emit_summary()
            if self.refitter is not None:
                refit = self.refitter.maybe_refit(
                    self.cascades, self.stream_time, self.records_seen)
                if refit is not None:
                    self.publish_influence(refit)
            if (self.checkpoint_path is not None and self.checkpoint_every
                    and self.records_seen % self.checkpoint_every == 0):
                self.checkpoint()
        return consumed

    def _run_batches(self, limit: int | None) -> int:
        """The columnar drain: whole chunks in, row-path cadence out.

        Chunks are split at every record count where the row loop would
        fire a side effect — summary multiples, refit due points,
        checkpoint multiples — and the side effects run in the row
        loop's order (summary, refit, checkpoint), so summaries, refit
        RNG streams, and checkpoints land at identical stream positions.
        """
        if self._events is None:
            self._events = self.bus.event_batches(self.batch_size)
        events = self._events
        consumed = 0
        while limit is None or consumed < limit:
            if self._pending is not None:
                source, chunk = self._pending
                self._pending = None
            else:
                item = next(events, None)
                if item is None:
                    break
                source, chunk = item
            if self._replay_skip > 0:
                skip = min(self._replay_skip, len(chunk))
                self._replay_skip -= skip
                if skip == len(chunk):
                    continue
                chunk = chunk.slice(skip, len(chunk))
            if limit is not None and len(chunk) > limit - consumed:
                keep = limit - consumed
                self._pending = (source, chunk.slice(keep, len(chunk)))
                chunk = chunk.slice(0, keep)
            n = len(chunk)
            pos = 0
            while pos < n:
                stop = self._next_side_effect_at()
                take = (n - pos if stop is None
                        else min(n - pos, stop - self.records_seen))
                sub = (chunk if pos == 0 and take == n
                       else chunk.slice(pos, pos + take))
                self.process_batch(sub, source)
                pos += take
                self._fire_side_effects()
            consumed += n
        return consumed

    def _next_side_effect_at(self) -> int | None:
        """The next records_seen value at which the row loop would act."""
        seen = self.records_seen
        stops = []
        if self.summary_every:
            stops.append((seen // self.summary_every + 1)
                         * self.summary_every)
        if self.refitter is not None:
            due = (self.refitter.records_at_last_refit
                   + self.refitter.policy.every_records)
            stops.append(max(due, seen + 1))
        if self.checkpoint_path is not None and self.checkpoint_every:
            stops.append((seen // self.checkpoint_every + 1)
                         * self.checkpoint_every)
        return min(stops) if stops else None

    def _fire_side_effects(self) -> None:
        if self.summary_every and self.records_seen % self.summary_every == 0:
            self._emit_summary()
        if self.refitter is not None:
            refit = self.refitter.maybe_refit(
                self.cascades, self.stream_time, self.records_seen)
            if refit is not None:
                self.publish_influence(refit)
        if (self.checkpoint_path is not None and self.checkpoint_every
                and self.records_seen % self.checkpoint_every == 0):
            self.checkpoint()

    # -- publishing ---------------------------------------------------------

    def publish_influence(self, result) -> str | None:
        """Publish a refit into the artifact store; returns its key.

        The payload uses the same serializer as the batch ``/influence``
        endpoint, stored content-addressed with the stable ref
        ``live/influence`` pointed at the newest key — exactly how the
        query service finds it.  No-op (returns ``None``) without a
        ``publish_store``.
        """
        if self.publish_store is None:
            return None
        from ..api.serialize import influence_payload, payload_key
        from ..api.service import LIVE_INFLUENCE_REF
        payload = influence_payload(result)
        key = payload_key(payload)
        self.publish_store.put(key, payload)
        self.publish_store.set_ref(LIVE_INFLUENCE_REF, key)
        return key

    def publish_metrics(self) -> str | None:
        """Publish the current metrics snapshot into the artifact store.

        Stored content-addressed under the stable ref ``obs/metrics`` so
        ``repro stats --cache`` and the query service can report on a
        run after (or while) it happens.  No-op without a
        ``publish_store`` or with metrics disabled.
        """
        if self.publish_store is None or not self.metrics.enabled:
            return None
        return publish_snapshot(self.publish_store, self.metrics.snapshot())

    # -- summaries ----------------------------------------------------------

    def summary(self) -> RollingSummary:
        return RollingSummary(
            records=self.records_seen,
            by_source=dict(self.by_source),
            stream_time=self.stream_time,
            distinct_urls=self.appearances.distinct_urls(),
            open_cascades=len(self.cascades),
            n_refits=(self.refitter.n_refits
                      if self.refitter is not None else 0),
        )

    def _emit_summary(self) -> None:
        summary = self.summary()
        self._update_gauges()
        logger.info("%s", summary.format())
        if self.on_summary is not None:
            self.on_summary(summary)

    def _update_gauges(self) -> None:
        metrics = self.metrics
        metrics.gauge("repro_live_stream_time_seconds",
                      "Stream clock of the newest record seen.",
                      ).set(self.stream_time)
        if self._wall_start is not None:
            elapsed = perf_counter() - self._wall_start
            if elapsed > 0:
                metrics.gauge(
                    "repro_live_ingest_records_per_second",
                    "Records ingested per wall second since run() began.",
                ).set((self.records_seen - self._wall_base) / elapsed)

    # -- checkpoint / restore -----------------------------------------------

    def state_dict(self) -> dict:
        state = {
            "records_seen": self.records_seen,
            "by_source": dict(self.by_source),
            "stream_time": self.stream_time,
            "domains": self.domains.state_dict(),
            "appearances": self.appearances.state_dict(),
            "first_hops": self.first_hops.state_dict(),
            "cascades": self.cascades.state_dict(),
        }
        if self.refitter is not None:
            state["refitter"] = self.refitter.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        self.records_seen = int(state["records_seen"])
        self.by_source = Counter(state["by_source"])
        self.stream_time = float(state["stream_time"])
        self.domains.load_state(state["domains"])
        self.appearances.load_state(state["appearances"])
        self.first_hops.load_state(state["first_hops"])
        self.cascades.load_state(state["cascades"])
        if self.refitter is not None and "refitter" in state:
            self.refitter.load_state(state["refitter"])

    def checkpoint(self) -> Path:
        if self.checkpoint_path is None:
            raise ValueError("engine has no checkpoint_path")
        with span("live.checkpoint", records=self.records_seen):
            start = perf_counter()
            path = save_checkpoint(self.checkpoint_path, self.state_dict(),
                                   fmt=self.checkpoint_format)
        self.metrics.histogram(
            "repro_live_checkpoint_seconds",
            "Wall time of one checkpoint save.",
        ).observe(perf_counter() - start)
        return path

    def restore(self, path: str | Path | None = None) -> None:
        """Load a checkpoint so the engine resumes mid-stream.

        The next :meth:`run` skips the first ``records_seen`` records of
        the bus — restore expects the bus to replay the same stream the
        checkpointed run consumed.  To continue from a different feed,
        use :meth:`load_state` directly.
        """
        source = path if path is not None else self.checkpoint_path
        if source is None:
            raise ValueError("engine has no checkpoint_path")
        self.load_state(load_checkpoint(source))
        self._replay_skip = self.records_seen
