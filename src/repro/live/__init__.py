"""Live ingestion: streaming event bus + incremental analytics.

The batch pipeline answers the paper's questions by rescanning full
datasets; this subsystem answers them continuously.  An
:class:`EventBus` merges per-platform record streams (the collectors'
``stream()`` generators, or JSONL replays) into one timestamp-ordered
feed; a :class:`LiveEngine` maintains the headline measurements —
domain fractions (Fig. 2 / Tables 5-7), URL appearance counts (Fig. 1),
cross-platform first hops (Tables 9-10), and per-URL cascades for the
Hawkes influence estimator — incrementally, in O(Δ) per record, with
checkpoint/restore and sliding-window influence refits.

Sources come in two granularities: per-row generators (``*_source``)
and columnar :class:`~repro.collection.columnar.RecordBatch` streams
(``*_batch_source`` + ``EventBus.add_batch_source``), which the engine
drains with vectorized aggregator updates for the same results at a
multiple of the row-path throughput.
"""

from .aggregators import (
    CascadeAssembler,
    DomainFractionAggregator,
    FirstHopAggregator,
    UrlAppearanceAggregator,
)
from .bus import (
    EventBus,
    dataset_batch_source,
    dataset_source,
    jsonl_batch_source,
    jsonl_source,
)
from .checkpoint import load_checkpoint, save_checkpoint
from .engine import LiveEngine, RollingSummary
from .refit import RefitPolicy, WindowedHawkesRefitter

__all__ = [
    "CascadeAssembler",
    "DomainFractionAggregator",
    "FirstHopAggregator",
    "UrlAppearanceAggregator",
    "EventBus",
    "dataset_batch_source",
    "dataset_source",
    "jsonl_batch_source",
    "jsonl_source",
    "load_checkpoint",
    "save_checkpoint",
    "LiveEngine",
    "RollingSummary",
    "RefitPolicy",
    "WindowedHawkesRefitter",
]
