"""Incremental aggregators mirroring the paper's headline measurements.

Each aggregator consumes one :class:`~repro.collection.store.DatasetRecord`
at a time via ``update()`` — or a whole columnar
:class:`~repro.collection.columnar.RecordBatch` via ``update_batch()``,
which applies the same per-record semantics as vectorized group-bys
(``np.unique`` / ``np.minimum.at``) and leaves state byte-identical to
the row path, including dict/Counter key insertion order (the tie-break
behind ``Counter.most_common``) — keeps state proportional to the
number of distinct keys (domains, URLs), and answers queries without
rescanning the stream.  The query paths reuse the *same* row-building functions as
the batch analyses (:mod:`repro.analysis.characterization`,
:mod:`repro.analysis.sequences`), so after consuming an identical record
stream the live answers are exactly the batch answers.

All aggregators round-trip through ``state_dict()`` / ``load_state()``
for checkpointing (see :mod:`repro.live.checkpoint`).
"""

from __future__ import annotations

from bisect import insort
from collections import Counter
from operator import itemgetter
from typing import Callable, Iterable

import numpy as np

from ..analysis import characterization as chz
from ..analysis import sequences as seq
from ..collection.columnar import (
    CATEGORIES,
    RecordBatch,
    occurrence_slice_codes,
    venue_slice_codes,
)
from ..collection.store import DatasetRecord
from ..config import HAWKES_PROCESSES, SEQUENCE_PLATFORMS
from ..core.influence import UrlCascade
from ..news.domains import NewsCategory

#: record -> coarse slice name (or None); the default is the paper's
#: fixed three-way split.  K-platform scenarios pass their
#: :meth:`repro.platforms.registry.Ecosystem.slice_of` instead.
SliceOf = Callable[[DatasetRecord], "str | None"]


class _SlicedCounterAggregator:
    """Per-slice, per-category occurrence counters over one record key.

    Subclasses pick the counted key (domain, URL) via :meth:`_key` and
    layer query methods on top of ``self.counters``.
    """

    def __init__(self, slices: Iterable[str] = SEQUENCE_PLATFORMS,
                 slice_of: SliceOf | None = None) -> None:
        self.slice_of = (slice_of if slice_of is not None
                         else chz.sequence_slice_of)
        self.counters: dict[str, dict[NewsCategory, Counter]] = {
            name: {category: Counter() for category in NewsCategory}
            for name in slices
        }
        self._venue_memo: dict = {}
        self._ci_counters: "dict[str, list[Counter]] | None" = None

    @staticmethod
    def _key(occurrence) -> str:
        raise NotImplementedError

    @staticmethod
    def _batch_key_list(batch: RecordBatch) -> list:
        """The occurrence key list :meth:`_key` reads (url or domain)."""
        raise NotImplementedError

    def update(self, record: DatasetRecord) -> None:
        slice_name = self.slice_of(record)
        if slice_name is None or slice_name not in self.counters:
            return
        per_category = self.counters[slice_name]
        for occurrence in record.urls:
            self._tally(per_category, occurrence)

    def _tally(self, per_category: dict[NewsCategory, Counter],
               occurrence) -> None:
        per_category[occurrence.category][self._key(occurrence)] += 1

    def update_batch(self, batch: RecordBatch) -> None:
        """One C-level ``Counter.update`` per (slice, category) group.

        Occurrences are grouped with a stable argsort, so within each
        group they keep stream order, and ``Counter.update`` inserts
        new keys in iteration order — the resulting Counters, including
        ``most_common`` tie-breaks, are identical to calling
        :meth:`update` per record.
        """
        if not len(batch) or not batch.n_urls:
            return
        names, occ_codes = occurrence_slice_codes(
            batch, self.slice_of, self._venue_memo)
        n_categories = len(CATEGORIES)
        # The grouping depends only on routing + tracked slices, so the
        # two counter aggregators of one engine share it via the batch
        # cache.  Venue code -> group base, -1 for unrouted/untracked
        # slices; the trailing -1 is what code -1 (no slice) maps to.
        cache_key = ("counter_groups", id(self.slice_of),
                     tuple(self.counters))
        grouping = batch._cache.get(cache_key)
        if grouping is None:
            translate = np.array(
                [code * n_categories if name in self.counters else -1
                 for code, name in enumerate(names)] + [-1],
                dtype=np.int64)
            group = translate[occ_codes]
            group = np.where(group >= 0, group + batch.category, -1)
            order = np.argsort(group, kind="stable")
            sorted_group = group[order]
            start = int(np.searchsorted(sorted_group, 0, side="left"))
            order = order[start:]
            sorted_group = sorted_group[start:]
            cuts = [0,
                    *(np.flatnonzero(np.diff(sorted_group)) + 1).tolist(),
                    len(order)]
            grouping = (order.tolist(), sorted_group.tolist(), cuts)
            batch._cache[cache_key] = grouping
        order, group_list, cuts = grouping
        if not order:
            return
        key_list = self._batch_key_list(batch)
        keys = (list(itemgetter(*order)(key_list)) if len(order) > 1
                else [key_list[order[0]]])
        # Counters indexed by category position — sidesteps the
        # Python-level enum __hash__ on every segment.
        by_index = self._ci_counters
        if by_index is None:
            by_index = self._ci_counters = {
                name: [per_category[category] for category in CATEGORIES]
                for name, per_category in self.counters.items()}
        for a, b in zip(cuts, cuts[1:]):
            code, ci = divmod(group_list[a], n_categories)
            chunk = keys[a:b]
            by_index[names[code]][ci].update(chunk)
            self._batch_seen(ci, chunk)

    def _batch_seen(self, ci: int, keys: list[str]) -> None:
        """Hook for subclasses tracking distinct keys (no-op here)."""

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            name: {category.value: dict(counter)
                   for category, counter in per_category.items()}
            for name, per_category in self.counters.items()
        }

    def load_state(self, state: dict) -> None:
        self.counters = {
            name: {NewsCategory(value): Counter(counts)
                   for value, counts in per_category.items()}
            for name, per_category in state.items()
        }
        self._ci_counters = None


class DomainFractionAggregator(_SlicedCounterAggregator):
    """Per-slice domain occurrence counts (Tables 5-7, Figure 2)."""

    @staticmethod
    def _key(occurrence) -> str:
        return occurrence.domain

    @staticmethod
    def _batch_key_list(batch: RecordBatch) -> list:
        return batch.domain_list()

    def top_domains(self, slice_name: str, category: NewsCategory,
                    top_n: int = 20) -> list[chz.RankedShare]:
        """Tables 5-7 rows for one slice, identical to batch."""
        return chz.ranked_shares(self.counters[slice_name][category], top_n)

    def platform_fractions(self, category: NewsCategory, top_n: int = 20,
                           ) -> list[chz.DomainPlatformShare]:
        """Figure 2 rows across all slices, identical to batch."""
        return chz.domain_fractions_from_counters(
            {name: per_category[category]
             for name, per_category in self.counters.items()},
            top_n)


class UrlAppearanceAggregator(_SlicedCounterAggregator):
    """Per-slice URL appearance counts (Figure 1)."""

    def __init__(self, slices: Iterable[str] = SEQUENCE_PLATFORMS,
                 slice_of: SliceOf | None = None) -> None:
        super().__init__(slices, slice_of)
        self._seen: dict[NewsCategory, set[str]] = {
            category: set() for category in NewsCategory}
        self._ci_seen: "list[set[str]] | None" = None

    @staticmethod
    def _key(occurrence) -> str:
        return occurrence.url

    @staticmethod
    def _batch_key_list(batch: RecordBatch) -> list:
        return batch.url_list()

    def _tally(self, per_category: dict[NewsCategory, Counter],
               occurrence) -> None:
        super()._tally(per_category, occurrence)
        self._seen[occurrence.category].add(occurrence.url)

    def _batch_seen(self, ci: int, keys: list[str]) -> None:
        by_index = self._ci_seen
        if by_index is None:
            by_index = self._ci_seen = [self._seen[category]
                                        for category in CATEGORIES]
        by_index[ci].update(keys)

    def appearance_cdf(self, slice_name: str, category: NewsCategory):
        """Figure 1 ECDF for one slice, identical to batch."""
        return chz.appearance_cdf_from_counter(
            self.counters[slice_name][category])

    def distinct_urls(self, category: NewsCategory | None = None) -> int:
        """O(1) per category — backed by running sets, not a rescan."""
        if category is not None:
            return len(self._seen[category])
        return sum(len(urls) for urls in self._seen.values())

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._seen = {category: set() for category in NewsCategory}
        self._ci_seen = None
        for per_category in self.counters.values():
            for category, counter in per_category.items():
                self._seen[category].update(counter)


class FirstHopAggregator:
    """Cross-platform first appearances (Tables 9-10).

    Maintains ``url -> {slice: earliest timestamp}`` per category — the
    exact structure :func:`repro.analysis.sequences.first_appearances`
    computes by batch scan — updated with a running minimum.
    """

    def __init__(self, slices: Iterable[str] = SEQUENCE_PLATFORMS,
                 slice_of: SliceOf | None = None) -> None:
        self.slices = tuple(slices)
        self.slice_of = (slice_of if slice_of is not None
                         else chz.sequence_slice_of)
        self.firsts: dict[NewsCategory, dict[str, dict[str, float]]] = {
            category: {} for category in NewsCategory
        }
        self._venue_memo: dict = {}

    def update(self, record: DatasetRecord) -> None:
        slice_name = self.slice_of(record)
        if slice_name is None:
            return
        when = record.created_at
        for occurrence in record.urls:
            platform_firsts = self.firsts[occurrence.category].setdefault(
                occurrence.url, {})
            previous = platform_firsts.get(slice_name)
            if previous is None or when < previous:
                platform_firsts[slice_name] = when

    def update_batch(self, batch: RecordBatch) -> None:
        """Row-path running minima over pre-extracted columns.

        Venue routing is memoized (one ``slice_of`` call per distinct
        venue, ever) and the loop runs over native lists, so dict key
        insertion order — urls and per-url slices alike — is exactly
        :meth:`update`'s.
        """
        if not len(batch) or not batch.n_urls:
            return
        names, occ_codes = occurrence_slice_codes(
            batch, self.slice_of, self._venue_memo)
        n_slices = len(names)
        if not n_slices:
            return
        urls, url_codes = batch.url_codes()
        n_categories = len(CATEGORIES)
        # One int per (url, category, slice) triple; unrouted -> -1.
        combined = ((url_codes * n_categories + batch.category) * n_slices
                    + occ_codes)
        combined = np.where(occ_codes >= 0, combined, -1)
        sort_idx = np.argsort(combined, kind="stable")
        ordered = combined[sort_idx]
        starts = np.concatenate(
            ([0], np.flatnonzero(ordered[1:] != ordered[:-1]) + 1))
        if ordered[0] == -1:  # -1 sorts first: drop the unrouted segment
            starts = starts[1:]
            if not len(starts):
                return
        # Segment minima in one reduceat; the stable sort makes
        # sort_idx[start] each triple's first stream position, which
        # orders dict insertion exactly like the row path.
        minima = np.minimum.reduceat(
            batch.occurrence_times()[sort_idx], starts)
        triple_arr = ordered[starts]
        codes, slice_arr = np.divmod(triple_arr, n_slices)
        url_arr, cat_arr = np.divmod(codes, n_categories)
        slice_list = slice_arr.tolist()
        url_list = url_arr.tolist()
        cat_list = cat_arr.tolist()
        min_list = minima.tolist()
        firsts = [self.firsts[category] for category in CATEGORIES]
        for j in np.argsort(sort_idx[starts], kind="stable").tolist():
            url = urls[url_list[j]]
            when = min_list[j]
            category_firsts = firsts[cat_list[j]]
            platform_firsts = category_firsts.get(url)
            if platform_firsts is None:
                category_firsts[url] = {names[slice_list[j]]: when}
                continue
            slice_name = names[slice_list[j]]
            previous = platform_firsts.get(slice_name)
            if previous is None or when < previous:
                platform_firsts[slice_name] = when

    # -- queries ------------------------------------------------------------

    def first_hop(self, category: NewsCategory) -> list[seq.SequenceShare]:
        """Table 9 rows, identical to batch."""
        return seq.first_hop_rows(self.firsts[category])

    def triplets(self, category: NewsCategory) -> list[seq.SequenceShare]:
        """Table 10 rows, identical to batch — over all K slices."""
        return seq.triplet_rows(self.firsts[category],
                                n_platforms=len(self.slices))

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            category.value: {url: dict(platform_firsts)
                             for url, platform_firsts in firsts.items()}
            for category, firsts in self.firsts.items()
        }

    def load_state(self, state: dict) -> None:
        self.firsts = {
            NewsCategory(value): {
                url: dict(platform_firsts)
                for url, platform_firsts in firsts.items()
            }
            for value, firsts in state.items()
        }


class CascadeAssembler:
    """Online per-URL cascade assembly feeding :mod:`repro.core.influence`.

    Keeps, per URL, the sorted ``(timestamp, process)`` events over the
    K Hawkes processes (the paper's eight by default).  Insertion keeps
    the list ordered (bisect), so a query materializes cascades without
    re-sorting — the same ``(t, process)`` tuples batch
    :func:`repro.pipeline.influence_cascades` produces.  ``process_of``
    routes communities to processes (a K-platform ecosystem's
    :meth:`~repro.platforms.registry.Ecosystem.process_of`); by default
    a community is its own process, as in the paper.
    """

    def __init__(self,
                 processes: Iterable[str] = HAWKES_PROCESSES,
                 process_of: Callable[[str], "str | None"] | None = None,
                 ) -> None:
        self.processes = frozenset(processes)
        self.process_of = process_of
        self.events: dict[str, list[tuple[float, str]]] = {}
        self.categories: dict[str, NewsCategory] = {}
        self._process_memo: dict = {}

    def update(self, record: DatasetRecord) -> None:
        process = (self.process_of(record.community)
                   if self.process_of is not None else record.community)
        if process is None or process not in self.processes:
            return
        when = record.created_at
        for occurrence in record.urls:
            url = occurrence.url
            self.categories.setdefault(url, occurrence.category)
            insort(self.events.setdefault(url, []),
                   (when, process))

    def update_batch(self, batch: RecordBatch) -> None:
        """Row-path assembly over pre-extracted columns.

        Process routing is memoized per community, and the loop runs
        the same ``setdefault`` + ``insort`` sequence as :meth:`update`
        over native lists, so event order, URL key order, and category
        choices are exactly the row path's.
        """
        if not len(batch) or not batch.n_urls:
            return
        communities, comm_codes = batch.occurrence_community_codes()
        memo = self._process_memo
        for community in communities:
            if community not in memo:
                process = (self.process_of(community)
                           if self.process_of is not None else community)
                if process is not None and process not in self.processes:
                    process = None
                memo[community] = process
        processes = ([memo[communities[0]]] if len(communities) == 1
                     else list(itemgetter(*communities)(memo)))
        keep = np.fromiter((p is not None for p in processes),
                           dtype=bool, count=len(processes))
        valid = keep[comm_codes]
        if not valid.any():
            return
        urls, url_codes = batch.url_codes()
        valid_idx = np.flatnonzero(valid)
        vcodes = url_codes[valid_idx]
        sort_idx = np.argsort(vcodes, kind="stable")
        ordered = vcodes[sort_idx]
        take = valid_idx[sort_idx]
        bounds = [0,
                  *(np.flatnonzero(ordered[1:] != ordered[:-1])
                    + 1).tolist(),
                  len(ordered)]
        # Reorder the valid occurrences into group order once, at array
        # speed, so each group's events are a plain list slice below.
        time_list = batch.occurrence_times()[take].tolist()
        comm_list = comm_codes[take].tolist()
        cat_list = batch.category[take].tolist()
        ordered_list = ordered.tolist()
        pairs = list(zip(time_list, map(processes.__getitem__, comm_list)))
        events_of = self.events
        categories = self.categories
        # Iterate url groups by first *valid* occurrence (the stable
        # sort makes sort_idx[a] each group's earliest position), so
        # events/categories key order matches the row path; extending
        # a sorted per-url run and re-sorting equals repeated insort
        # because equal (t, process) tuples are indistinguishable.
        spans = list(zip(bounds, bounds[1:]))
        group_order = np.argsort(
            sort_idx[np.array(bounds[:-1], dtype=np.int64)],
            kind="stable").tolist() if len(spans) > 1 else [0]
        for k in group_order:
            a, b = spans[k]
            url = urls[ordered_list[a]]
            new = pairs[a:b]
            if len(new) > 1:
                new.sort()
            events = events_of.setdefault(url, new)
            if events is new:
                categories.setdefault(url, CATEGORIES[cat_list[a]])
            else:
                events.extend(new)
                events.sort()

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def cascade_of(self, url: str) -> UrlCascade | None:
        events = self.events.get(url)
        if not events:
            return None
        return UrlCascade(url=url, category=self.categories[url],
                          events=tuple(events))

    def cascades(self) -> list[UrlCascade]:
        """All assembled cascades, in URL first-seen order."""
        return [UrlCascade(url=url, category=self.categories[url],
                           events=tuple(events))
                for url, events in self.events.items()]

    def cascades_between(self, start: float, end: float,
                         ) -> list[UrlCascade]:
        """Cascades whose *last* event falls inside ``[start, end]``.

        This is the sliding-window selection the Hawkes refitter uses:
        a cascade is "settled" once its last event is older than the
        quiet horizon, and stays in scope while it is newer than the
        window start.
        """
        kept = []
        for url, events in self.events.items():
            if events and start <= events[-1][0] <= end:
                kept.append(self.cascade_of(url))
        return kept

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "events": {url: [[t, name] for t, name in events]
                       for url, events in self.events.items()},
            "categories": {url: category.value
                           for url, category in self.categories.items()},
        }

    def load_state(self, state: dict) -> None:
        self.events = {
            url: [(float(t), str(name)) for t, name in events]
            for url, events in state["events"].items()
        }
        self.categories = {url: NewsCategory(value)
                           for url, value in state["categories"].items()}
