"""Incremental aggregators mirroring the paper's headline measurements.

Each aggregator consumes one :class:`~repro.collection.store.DatasetRecord`
at a time via ``update()``, keeps state proportional to the number of
distinct keys (domains, URLs), and answers queries without rescanning
the stream.  The query paths reuse the *same* row-building functions as
the batch analyses (:mod:`repro.analysis.characterization`,
:mod:`repro.analysis.sequences`), so after consuming an identical record
stream the live answers are exactly the batch answers.

All aggregators round-trip through ``state_dict()`` / ``load_state()``
for checkpointing (see :mod:`repro.live.checkpoint`).
"""

from __future__ import annotations

from bisect import insort
from collections import Counter
from typing import Callable, Iterable

from ..analysis import characterization as chz
from ..analysis import sequences as seq
from ..collection.store import DatasetRecord
from ..config import HAWKES_PROCESSES, SEQUENCE_PLATFORMS
from ..core.influence import UrlCascade
from ..news.domains import NewsCategory

#: record -> coarse slice name (or None); the default is the paper's
#: fixed three-way split.  K-platform scenarios pass their
#: :meth:`repro.platforms.registry.Ecosystem.slice_of` instead.
SliceOf = Callable[[DatasetRecord], "str | None"]


class _SlicedCounterAggregator:
    """Per-slice, per-category occurrence counters over one record key.

    Subclasses pick the counted key (domain, URL) via :meth:`_key` and
    layer query methods on top of ``self.counters``.
    """

    def __init__(self, slices: Iterable[str] = SEQUENCE_PLATFORMS,
                 slice_of: SliceOf | None = None) -> None:
        self.slice_of = (slice_of if slice_of is not None
                         else chz.sequence_slice_of)
        self.counters: dict[str, dict[NewsCategory, Counter]] = {
            name: {category: Counter() for category in NewsCategory}
            for name in slices
        }

    @staticmethod
    def _key(occurrence) -> str:
        raise NotImplementedError

    def update(self, record: DatasetRecord) -> None:
        slice_name = self.slice_of(record)
        if slice_name is None or slice_name not in self.counters:
            return
        per_category = self.counters[slice_name]
        for occurrence in record.urls:
            self._tally(per_category, occurrence)

    def _tally(self, per_category: dict[NewsCategory, Counter],
               occurrence) -> None:
        per_category[occurrence.category][self._key(occurrence)] += 1

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            name: {category.value: dict(counter)
                   for category, counter in per_category.items()}
            for name, per_category in self.counters.items()
        }

    def load_state(self, state: dict) -> None:
        self.counters = {
            name: {NewsCategory(value): Counter(counts)
                   for value, counts in per_category.items()}
            for name, per_category in state.items()
        }


class DomainFractionAggregator(_SlicedCounterAggregator):
    """Per-slice domain occurrence counts (Tables 5-7, Figure 2)."""

    @staticmethod
    def _key(occurrence) -> str:
        return occurrence.domain

    def top_domains(self, slice_name: str, category: NewsCategory,
                    top_n: int = 20) -> list[chz.RankedShare]:
        """Tables 5-7 rows for one slice, identical to batch."""
        return chz.ranked_shares(self.counters[slice_name][category], top_n)

    def platform_fractions(self, category: NewsCategory, top_n: int = 20,
                           ) -> list[chz.DomainPlatformShare]:
        """Figure 2 rows across all slices, identical to batch."""
        return chz.domain_fractions_from_counters(
            {name: per_category[category]
             for name, per_category in self.counters.items()},
            top_n)


class UrlAppearanceAggregator(_SlicedCounterAggregator):
    """Per-slice URL appearance counts (Figure 1)."""

    def __init__(self, slices: Iterable[str] = SEQUENCE_PLATFORMS,
                 slice_of: SliceOf | None = None) -> None:
        super().__init__(slices, slice_of)
        self._seen: dict[NewsCategory, set[str]] = {
            category: set() for category in NewsCategory}

    @staticmethod
    def _key(occurrence) -> str:
        return occurrence.url

    def _tally(self, per_category: dict[NewsCategory, Counter],
               occurrence) -> None:
        super()._tally(per_category, occurrence)
        self._seen[occurrence.category].add(occurrence.url)

    def appearance_cdf(self, slice_name: str, category: NewsCategory):
        """Figure 1 ECDF for one slice, identical to batch."""
        return chz.appearance_cdf_from_counter(
            self.counters[slice_name][category])

    def distinct_urls(self, category: NewsCategory | None = None) -> int:
        """O(1) per category — backed by running sets, not a rescan."""
        if category is not None:
            return len(self._seen[category])
        return sum(len(urls) for urls in self._seen.values())

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._seen = {category: set() for category in NewsCategory}
        for per_category in self.counters.values():
            for category, counter in per_category.items():
                self._seen[category].update(counter)


class FirstHopAggregator:
    """Cross-platform first appearances (Tables 9-10).

    Maintains ``url -> {slice: earliest timestamp}`` per category — the
    exact structure :func:`repro.analysis.sequences.first_appearances`
    computes by batch scan — updated with a running minimum.
    """

    def __init__(self, slices: Iterable[str] = SEQUENCE_PLATFORMS,
                 slice_of: SliceOf | None = None) -> None:
        self.slices = tuple(slices)
        self.slice_of = (slice_of if slice_of is not None
                         else chz.sequence_slice_of)
        self.firsts: dict[NewsCategory, dict[str, dict[str, float]]] = {
            category: {} for category in NewsCategory
        }

    def update(self, record: DatasetRecord) -> None:
        slice_name = self.slice_of(record)
        if slice_name is None:
            return
        when = record.created_at
        for occurrence in record.urls:
            platform_firsts = self.firsts[occurrence.category].setdefault(
                occurrence.url, {})
            previous = platform_firsts.get(slice_name)
            if previous is None or when < previous:
                platform_firsts[slice_name] = when

    # -- queries ------------------------------------------------------------

    def first_hop(self, category: NewsCategory) -> list[seq.SequenceShare]:
        """Table 9 rows, identical to batch."""
        return seq.first_hop_rows(self.firsts[category])

    def triplets(self, category: NewsCategory) -> list[seq.SequenceShare]:
        """Table 10 rows, identical to batch — over all K slices."""
        return seq.triplet_rows(self.firsts[category],
                                n_platforms=len(self.slices))

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            category.value: {url: dict(platform_firsts)
                             for url, platform_firsts in firsts.items()}
            for category, firsts in self.firsts.items()
        }

    def load_state(self, state: dict) -> None:
        self.firsts = {
            NewsCategory(value): {
                url: dict(platform_firsts)
                for url, platform_firsts in firsts.items()
            }
            for value, firsts in state.items()
        }


class CascadeAssembler:
    """Online per-URL cascade assembly feeding :mod:`repro.core.influence`.

    Keeps, per URL, the sorted ``(timestamp, process)`` events over the
    K Hawkes processes (the paper's eight by default).  Insertion keeps
    the list ordered (bisect), so a query materializes cascades without
    re-sorting — the same ``(t, process)`` tuples batch
    :func:`repro.pipeline.influence_cascades` produces.  ``process_of``
    routes communities to processes (a K-platform ecosystem's
    :meth:`~repro.platforms.registry.Ecosystem.process_of`); by default
    a community is its own process, as in the paper.
    """

    def __init__(self,
                 processes: Iterable[str] = HAWKES_PROCESSES,
                 process_of: Callable[[str], "str | None"] | None = None,
                 ) -> None:
        self.processes = frozenset(processes)
        self.process_of = process_of
        self.events: dict[str, list[tuple[float, str]]] = {}
        self.categories: dict[str, NewsCategory] = {}

    def update(self, record: DatasetRecord) -> None:
        process = (self.process_of(record.community)
                   if self.process_of is not None else record.community)
        if process is None or process not in self.processes:
            return
        when = record.created_at
        for occurrence in record.urls:
            url = occurrence.url
            self.categories.setdefault(url, occurrence.category)
            insort(self.events.setdefault(url, []),
                   (when, process))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def cascade_of(self, url: str) -> UrlCascade | None:
        events = self.events.get(url)
        if not events:
            return None
        return UrlCascade(url=url, category=self.categories[url],
                          events=tuple(events))

    def cascades(self) -> list[UrlCascade]:
        """All assembled cascades, in URL first-seen order."""
        return [UrlCascade(url=url, category=self.categories[url],
                           events=tuple(events))
                for url, events in self.events.items()]

    def cascades_between(self, start: float, end: float,
                         ) -> list[UrlCascade]:
        """Cascades whose *last* event falls inside ``[start, end]``.

        This is the sliding-window selection the Hawkes refitter uses:
        a cascade is "settled" once its last event is older than the
        quiet horizon, and stays in scope while it is newer than the
        window start.
        """
        kept = []
        for url, events in self.events.items():
            if events and start <= events[-1][0] <= end:
                kept.append(self.cascade_of(url))
        return kept

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "events": {url: [[t, name] for t, name in events]
                       for url, events in self.events.items()},
            "categories": {url: category.value
                           for url, category in self.categories.items()},
        }

    def load_state(self, state: dict) -> None:
        self.events = {
            url: [(float(t), str(name)) for t, name in events]
            for url, events in state["events"].items()
        }
        self.categories = {url: NewsCategory(value)
                           for url, value in state["categories"].items()}
