"""Windowed Hawkes refitting: rolling influence estimates (Section 5).

The batch experiment fits every URL once, after the full eight-month
collection.  An always-on service wants the influence matrices to track
the stream instead, so the refitter re-estimates them at a configurable
cadence over a sliding window of *settled* cascades — URLs whose last
observed event is older than a quiet horizon (still-growing cascades
would bias the weights) but newer than the window start.  Fitting
reuses :func:`repro.core.influence.fit_corpus` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..config import HAWKES_PROCESSES, HawkesConfig
from ..obs import get_registry
from ..core.influence import (
    Engine,
    FitMethod,
    InfluenceResult,
    select_urls,
    fit_corpus,
)
from ..platforms.registry import Ecosystem
from ..timeutil import SECONDS_PER_DAY
from .aggregators import CascadeAssembler


@dataclass
class RefitPolicy:
    """When and over what horizon the refitter runs."""

    #: Re-estimate after this many new records (stream cadence).
    every_records: int = 5000
    #: Sliding window length over cascade completion times, seconds.
    window_seconds: float = 60 * SECONDS_PER_DAY
    #: A cascade is "settled" once quiet for this long, seconds.
    quiet_seconds: float = 2 * SECONDS_PER_DAY
    #: Cap on URLs per refit (keeps a refit's cost bounded).
    max_urls: int = 100
    #: Fit method; EM is deterministic and much cheaper than Gibbs,
    #: which matters when refitting continuously.
    method: FitMethod = "em"
    #: Worker processes per refit (see :mod:`repro.parallel`); results
    #: are identical for any value, so this is purely a latency knob.
    n_jobs: int = 1
    #: Corpus fit execution strategy; "batched" packs the window into
    #: one array program per chunk (EM only, tolerance-equivalent).
    engine: Engine = "per-url"


@dataclass
class WindowedHawkesRefitter:
    """Sliding-window influence re-estimation at a record cadence."""

    policy: RefitPolicy = field(default_factory=RefitPolicy)
    config: HawkesConfig = field(default_factory=lambda: HawkesConfig(
        gibbs_iterations=30, gibbs_burn_in=10))
    seed: int = 0
    #: Optional K-platform ecosystem: its processes become the fit axes
    #: and its require_all/require_any rule selects the corpus.  ``None``
    #: keeps the paper's eight processes and Section 5.2 rule exactly.
    ecosystem: Ecosystem | None = None

    def __post_init__(self) -> None:
        self.last_result: InfluenceResult | None = None
        self.n_refits = 0
        self.records_at_last_refit = 0
        self.last_corpus_size = 0

    def due(self, records_seen: int) -> bool:
        return (records_seen - self.records_at_last_refit
                >= self.policy.every_records)

    def maybe_refit(self, assembler: CascadeAssembler, now: float,
                    records_seen: int) -> InfluenceResult | None:
        """Refit if the cadence elapsed; returns the new result or None."""
        if not self.due(records_seen):
            return None
        self.records_at_last_refit = records_seen
        return self.refit(assembler, now)

    def refit(self, assembler: CascadeAssembler,
              now: float) -> InfluenceResult | None:
        """Fit the current window unconditionally."""
        window_start = now - self.policy.window_seconds
        settled_before = now - self.policy.quiet_seconds
        cascades = assembler.cascades_between(window_start, settled_before)
        if self.ecosystem is None:
            corpus = select_urls(cascades)[:self.policy.max_urls]
        else:
            corpus = select_urls(
                cascades,
                processes=self.ecosystem.processes,
                require_all=self.ecosystem.require_all,
                require_any=self.ecosystem.require_any,
            )[:self.policy.max_urls]
        self.last_corpus_size = len(corpus)
        registry = get_registry()
        registry.gauge(
            "repro_live_refit_corpus_urls",
            "URLs in the most recent windowed refit corpus.",
        ).set(len(corpus))
        if not corpus:
            return None
        refit_start = perf_counter()
        rng = np.random.default_rng(self.seed + self.n_refits)
        # Overlapping windows refit the same settled cascades; memoized
        # event binning lets their kernel structures carry over.  Worker
        # pools are rebuilt per refit, so the memo only survives (and is
        # only requested) on the in-process n_jobs=1 path.
        processes = (self.ecosystem.processes if self.ecosystem is not None
                     else HAWKES_PROCESSES)
        result = fit_corpus(corpus, self.config, method=self.policy.method,
                            processes=processes,
                            rng=rng, n_jobs=self.policy.n_jobs,
                            memoize_events=self.policy.n_jobs == 1,
                            engine=self.policy.engine)
        self.last_result = result
        self.n_refits += 1
        registry.histogram(
            "repro_live_refit_seconds",
            "Wall time of one windowed influence refit.",
        ).observe(perf_counter() - refit_start)
        return result

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Cadence bookkeeping only; fits are recomputed, not persisted."""
        return {
            "n_refits": self.n_refits,
            "records_at_last_refit": self.records_at_last_refit,
        }

    def load_state(self, state: dict) -> None:
        self.n_refits = int(state["n_refits"])
        self.records_at_last_refit = int(state["records_at_last_refit"])
