"""Tests for the dataset store and JSONL persistence."""

import pytest

from repro.collection.store import Dataset, DatasetRecord, UrlOccurrence
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def record(post_id="p1", platform="twitter", community="Twitter",
           author="u1", created_at=100.0, urls=()):
    return DatasetRecord(
        post_id=post_id, platform=platform, community=community,
        author_id=author, created_at=created_at, urls=tuple(urls))


def occ(url="http://breitbart.com/a", domain="breitbart.com",
        category=ALT):
    return UrlOccurrence(url=url, domain=domain, category=category)


@pytest.fixture()
def dataset():
    return Dataset([
        record("p1", community="Twitter", author="u1", created_at=100,
               urls=[occ()]),
        record("p2", community="Twitter", author="u1", created_at=200,
               urls=[occ("http://cnn.com/b", "cnn.com", MAIN)]),
        record("p3", platform="reddit", community="politics", author="u2",
               created_at=150, urls=[occ(), occ("http://cnn.com/b",
                                                "cnn.com", MAIN)]),
        record("p4", platform="4chan", community="/pol/", author=None,
               created_at=300, urls=[occ()]),
    ])


class TestBasics:
    def test_len_and_iter(self, dataset):
        assert len(dataset) == 4
        assert len(list(dataset)) == 4

    def test_add_extend(self):
        ds = Dataset()
        ds.add(record())
        ds.extend([record("p2"), record("p3")])
        assert len(ds) == 3

    def test_merged_with(self, dataset):
        merged = dataset.merged_with(Dataset([record("p9")]))
        assert len(merged) == 5
        assert len(dataset) == 4  # original untouched

    def test_filter(self, dataset):
        twitter = dataset.filter(lambda r: r.platform == "twitter")
        assert len(twitter) == 2

    def test_urls_of(self, dataset):
        assert len(dataset.records[2].urls_of(ALT)) == 1
        assert len(dataset.records[2].urls_of(MAIN)) == 1

    def test_negative_timestamp_rejected(self):
        from repro.platforms.base import Post
        with pytest.raises(ValueError):
            Post(post_id="x", platform="t", community="c",
                 author_id=None, created_at=-5, text="")


class TestGroupings:
    def test_by_community(self, dataset):
        grouped = dataset.by_community()
        assert set(grouped) == {"Twitter", "politics", "/pol/"}
        assert len(grouped["Twitter"]) == 2

    def test_by_platform(self, dataset):
        grouped = dataset.by_platform()
        assert set(grouped) == {"twitter", "reddit", "4chan"}

    def test_by_author_skips_anonymous(self, dataset):
        grouped = dataset.by_author()
        assert set(grouped) == {"u1", "u2"}

    def test_url_timestamps_sorted(self, dataset):
        stamps = dataset.url_timestamps()
        times = [t for t, _ in stamps["http://breitbart.com/a"]]
        assert times == sorted(times)
        assert len(times) == 3

    def test_url_timestamps_category_filter(self, dataset):
        alt_stamps = dataset.url_timestamps(ALT)
        assert set(alt_stamps) == {"http://breitbart.com/a"}

    def test_url_categories(self, dataset):
        categories = dataset.url_categories()
        assert categories["http://breitbart.com/a"] == ALT
        assert categories["http://cnn.com/b"] == MAIN

    def test_unique_urls(self, dataset):
        assert dataset.unique_urls() == {"http://breitbart.com/a",
                                         "http://cnn.com/b"}
        assert dataset.unique_urls(MAIN) == {"http://cnn.com/b"}

    def test_url_post_count(self, dataset):
        assert dataset.url_post_count() == 4
        assert dataset.url_post_count(ALT) == 3
        assert dataset.url_post_count(MAIN) == 2


class TestPersistence:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "data" / "records.jsonl"
        dataset.save_jsonl(path)
        loaded = Dataset.load_jsonl(path)
        assert len(loaded) == len(dataset)
        assert loaded.records[0] == dataset.records[0]
        assert loaded.records[3].author_id is None

    def test_json_preserves_category_enum(self, dataset, tmp_path):
        path = tmp_path / "r.jsonl"
        dataset.save_jsonl(path)
        loaded = Dataset.load_jsonl(path)
        assert loaded.records[0].urls[0].category is ALT

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(record().to_json() + "\n\n\n")
        assert len(Dataset.load_jsonl(path)) == 1
