"""Tests for the content-addressed artifact store and fingerprinting."""

import numpy as np
import pytest

from repro.api.store import (
    MISSING,
    ArtifactStore,
    canonical_json,
    digest,
    fingerprint,
)
from repro.config import HawkesConfig, TWITTER_GAPS
from repro.news.domains import NewsCategory
from repro.synthesis.world import WorldConfig


class TestFingerprint:
    def test_scalars_pass_through(self):
        assert fingerprint(3) == 3
        assert fingerprint("x") == "x"
        assert fingerprint(None) is None
        assert fingerprint(True) is True

    def test_float_exact(self):
        assert fingerprint(0.1) == {"__f__": "0.1"}
        assert fingerprint(0.1) != fingerprint(0.1 + 1e-17 * 7)

    def test_dataclass_and_enum(self):
        fp = fingerprint(HawkesConfig())
        assert fp["__dc__"] == "HawkesConfig"
        assert fp["fields"]["delta_t"] == 60
        assert fingerprint(NewsCategory.ALTERNATIVE)["value"] == "alternative"

    def test_world_config_with_ground_truth_arrays(self):
        # GroundTruth carries numpy arrays; the fingerprint must be stable.
        a = canonical_json(WorldConfig(seed=3))
        b = canonical_json(WorldConfig(seed=3))
        assert a == b
        assert canonical_json(WorldConfig(seed=4)) != a

    def test_intervals(self):
        assert (fingerprint(TWITTER_GAPS)
                == fingerprint(tuple(TWITTER_GAPS)))

    def test_seed_sequence(self):
        root = np.random.SeedSequence(7)
        fp = fingerprint(root)
        assert fp["__seed__"][0] == 7
        root.spawn(3)
        assert fingerprint(root)["__seed__"][2] == 3  # children advance key

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_digest_is_hex_sha256(self):
        key = digest({"a": 1})
        assert len(key) == 64
        assert key == digest({"a": 1})
        assert key != digest({"a": 2})


class TestMemoryStore:
    def test_round_trip(self):
        store = ArtifactStore()
        store.put("k1", {"x": np.arange(3)})
        value = store.get("k1")
        assert np.array_equal(value["x"], np.arange(3))
        assert store.contains("k1")

    def test_missing_returns_default(self):
        store = ArtifactStore()
        assert store.get("absent") is None
        assert store.get("absent", MISSING) is MISSING
        assert not store.contains("absent")

    def test_refs(self):
        store = ArtifactStore()
        assert store.get_ref("live/influence") is None
        store.set_ref("live/influence", "abc")
        assert store.get_ref("live/influence") == "abc"
        store.set_ref("live/influence", "def")
        assert store.get_ref("live/influence") == "def"


class TestDiskStore:
    def test_cross_instance_round_trip(self, tmp_path):
        a = ArtifactStore(tmp_path / "cache")
        a.put("deadbeef", ["payload", 1, 2.5])
        b = ArtifactStore(tmp_path / "cache")  # fresh instance, same root
        assert b.get("deadbeef") == ["payload", 1, 2.5]
        assert b.contains("deadbeef")
        assert "deadbeef" in set(b.keys())

    def test_refs_persist(self, tmp_path):
        a = ArtifactStore(tmp_path / "cache")
        a.set_ref("live/influence", "0" * 64)
        b = ArtifactStore(tmp_path / "cache")
        assert b.get_ref("live/influence") == "0" * 64

    def test_corrupt_object_treated_as_missing(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("cafebabe", [1, 2, 3])
        path = store._object_path("cafebabe")
        path.write_bytes(b"not a pickle")
        fresh = ArtifactStore(tmp_path / "cache")
        assert fresh.get("cafebabe", MISSING) is MISSING

    def test_hit_miss_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.get("nope")
        store.put("yes", 1)
        store.get("yes")
        assert store.misses == 1
        assert store.hits == 1
