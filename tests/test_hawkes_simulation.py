"""Tests for Hawkes forward samplers (branching and stepwise)."""

import numpy as np
import pytest

from repro.core.hawkes.model import HawkesParams
from repro.core.hawkes.simulation import (
    expected_total_events,
    simulate_branching,
    simulate_stepwise,
)


def make_params(background, weights, max_lag=10):
    background = np.asarray(background, dtype=float)
    weights = np.asarray(weights, dtype=float)
    k = len(background)
    impulse = np.tile(np.full(max_lag, 1.0 / max_lag), (k, k, 1))
    return HawkesParams(background=background, weights=weights,
                        impulse=impulse)


class TestBranchingSampler:
    def test_empty_for_zero_background(self, rng):
        params = make_params([0.0, 0.0], np.zeros((2, 2)))
        events = simulate_branching(params, 1000, rng)
        assert events.total_events == 0

    def test_events_within_bounds(self, rng):
        params = make_params([0.01], [[0.5]])
        events = simulate_branching(params, 500, rng)
        if len(events):
            assert events.bins.min() >= 0
            assert events.bins.max() < 500

    def test_poisson_background_mean(self, rng):
        params = make_params([0.02], [[0.0]])
        totals = [simulate_branching(params, 1000, rng).total_events
                  for _ in range(60)]
        assert np.mean(totals) == pytest.approx(20, rel=0.2)

    def test_branching_amplification(self, rng):
        base = make_params([0.02], [[0.0]])
        excited = make_params([0.02], [[0.5]])
        n = 40
        base_total = sum(simulate_branching(base, 2000, rng).total_events
                         for _ in range(n))
        excited_total = sum(
            simulate_branching(excited, 2000, rng).total_events
            for _ in range(n))
        # E[N] multiplies by 1/(1-0.5) = 2 (modulo edge effects)
        assert excited_total > 1.5 * base_total

    def test_matches_analytic_expectation(self, rng):
        params = make_params([0.01, 0.005],
                             [[0.3, 0.1], [0.2, 0.2]])
        n_bins = 3000
        expected = expected_total_events(params, n_bins)
        totals = np.zeros(2)
        n_rep = 50
        for _ in range(n_rep):
            totals += simulate_branching(
                params, n_bins, rng).events_per_process()
        observed = totals / n_rep
        # edge truncation loses a little mass; allow 20%
        assert np.all(observed > 0.7 * expected)
        assert np.all(observed < 1.2 * expected)

    def test_unstable_weights_raise(self, rng):
        params = make_params([0.5], [[1.3]])
        with pytest.raises(RuntimeError):
            simulate_branching(params, 200_000, rng)

    def test_children_respect_impulse_support(self, rng):
        # All impulse mass at lag exactly 5.
        impulse = np.zeros((1, 1, 10))
        impulse[0, 0, 4] = 1.0
        params = HawkesParams(background=np.array([0.005]),
                              weights=np.array([[0.9]]), impulse=impulse)
        events = simulate_branching(params, 2000, rng)
        dense = events.to_dense()[:, 0]
        occupied = np.nonzero(dense)[0]
        # every event is either background or exactly 5 bins after another
        for t in occupied:
            pass  # presence alone is fine; spacing check below
        diffs = np.diff(occupied)
        if len(diffs):
            # lags of 5 must be common among consecutive occupied bins
            assert (diffs == 5).sum() >= 0  # structural smoke check


class TestStepwiseSampler:
    def test_empty_for_zero_background(self, rng):
        params = make_params([0.0], [[0.5]])
        events = simulate_stepwise(params, 300, rng)
        assert events.total_events == 0

    def test_agrees_with_branching_in_mean(self, rng):
        params = make_params([0.03, 0.02], [[0.2, 0.1], [0.1, 0.2]],
                             max_lag=5)
        n_bins, n_rep = 800, 40
        branching = np.zeros(2)
        stepwise = np.zeros(2)
        for _ in range(n_rep):
            branching += simulate_branching(
                params, n_bins, rng).events_per_process()
            stepwise += simulate_stepwise(
                params, n_bins, rng).events_per_process()
        ratio = (branching + 1) / (stepwise + 1)
        assert np.all(ratio > 0.8)
        assert np.all(ratio < 1.25)


class TestExpectedTotals:
    def test_background_only(self):
        params = make_params([0.01, 0.02], np.zeros((2, 2)))
        expected = expected_total_events(params, 1000)
        assert np.allclose(expected, [10.0, 20.0])

    def test_self_excitation_multiplier(self):
        params = make_params([0.01], [[0.5]])
        expected = expected_total_events(params, 1000)
        assert expected[0] == pytest.approx(20.0)

    def test_cross_excitation(self):
        # Process 0 feeds process 1; process 1 has no background.
        params = make_params([0.01, 0.0], [[0.0, 0.5], [0.0, 0.0]])
        expected = expected_total_events(params, 1000)
        assert expected[0] == pytest.approx(10.0)
        assert expected[1] == pytest.approx(5.0)
