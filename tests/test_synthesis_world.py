"""Tests for the world generator (uses the session-scoped small world)."""

import numpy as np
import pytest

from repro.config import SELECTED_SUBREDDITS, STUDY_END, STUDY_START
from repro.news.classify import extract_news_urls
from repro.news.domains import NewsCategory
from repro.synthesis.world import WorldConfig, build_world


class TestWorldStructure:
    def test_platforms_populated(self, small_world):
        assert len(small_world.twitter.tweets) > 100
        assert len(small_world.reddit.posts) > 100
        assert small_world.fourchan.total_posts > 50

    def test_six_subreddits_exist(self, small_world):
        for name in SELECTED_SUBREDDITS:
            assert name in small_world.reddit.subreddits

    def test_boards_exist(self, small_world):
        for board in ("pol", "sp", "int", "sci"):
            assert board in small_world.fourchan.boards

    def test_cascade_count_near_config(self, small_world):
        expected = (small_world.config.n_stories_alternative
                    + small_world.config.n_stories_mainstream)
        assert len(small_world.cascades) == pytest.approx(expected, rel=0.15)

    def test_both_categories_present(self, small_world):
        categories = {c.article.category for c in small_world.cascades}
        assert categories == {NewsCategory.ALTERNATIVE,
                              NewsCategory.MAINSTREAM}

    def test_ambient_traffic_recorded(self, small_world):
        assert small_world.twitter.unmaterialized_posts > 0
        assert small_world.reddit.unmaterialized_posts > 0
        assert small_world.fourchan.unmaterialized_posts > 0

    def test_ambient_ratio_matches_config(self, small_world):
        config = small_world.config
        ratio = (small_world.twitter.unmaterialized_posts
                 / len(small_world.twitter.tweets))
        assert ratio == pytest.approx(config.ambient_twitter, rel=0.01)


class TestMaterializedContent:
    def test_tweets_carry_extractable_news_urls(self, small_world):
        with_urls = 0
        for tweet in list(small_world.twitter.tweets.values())[:200]:
            if extract_news_urls(tweet.text, small_world.registry):
                with_urls += 1
        assert with_urls > 150  # nearly all tweets embed their URL

    def test_tweet_timestamps_inside_study(self, small_world):
        for tweet in small_world.twitter.tweets.values():
            assert STUDY_START <= tweet.created_at < STUDY_END

    def test_retweets_exist(self, small_world):
        retweets = [t for t in small_world.twitter.tweets.values()
                    if t.is_retweet]
        assert retweets

    def test_some_tweets_unavailable_after_finalize(self, small_world):
        gone = sum(
            1 for t in small_world.twitter.tweets.values()
            if small_world.twitter.fetch_tweet(t.tweet_id) is None)
        assert gone > 0

    def test_reddit_has_posts_and_comments(self, small_world):
        assert small_world.reddit.posts
        assert small_world.reddit.comments

    def test_reddit_comments_carry_urls(self, small_world):
        sample = list(small_world.reddit.comments.values())[:100]
        assert any(extract_news_urls(c.body, small_world.registry)
                   for c in sample)

    def test_pol_threads_have_url_posts(self, small_world):
        pol_threads = [t for t in small_world.fourchan.threads.values()
                       if t.board == "pol"]
        assert pol_threads
        assert any(
            extract_news_urls(p.text, small_world.registry)
            for t in pol_threads for p in t.posts)

    def test_bot_users_registered(self, small_world):
        bots = [u for u in small_world.twitter.users.values() if u.is_bot]
        assert bots


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig(seed=5, n_stories_alternative=40,
                             n_stories_mainstream=80, n_twitter_users=50,
                             n_reddit_users=50, n_generic_subreddits=10)
        a = build_world(config)
        b = build_world(config)
        assert len(a.cascades) == len(b.cascades)
        assert len(a.twitter.tweets) == len(b.twitter.tweets)
        assert a.cascades[0].url == b.cascades[0].url

    def test_different_seed_different_world(self):
        base = dict(n_stories_alternative=40, n_stories_mainstream=80,
                    n_twitter_users=50, n_reddit_users=50,
                    n_generic_subreddits=10)
        a = build_world(WorldConfig(seed=5, **base))
        b = build_world(WorldConfig(seed=6, **base))
        assert a.cascades[0].url != b.cascades[0].url


class TestDomainPlatformCorrelation:
    def test_alt_domains_dominated_by_breitbart(self, small_world):
        """Tables 5-7: breitbart.com should dominate alternative URLs."""
        alt = [c for c in small_world.cascades
               if c.article.is_alternative]
        breitbart = sum(c.article.domain == "breitbart.com" for c in alt)
        assert breitbart / len(alt) > 0.3
