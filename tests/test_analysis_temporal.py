"""Tests for Section 4 temporal analyses (Figs 4-7, Table 8)."""

import numpy as np
import pytest

from repro.analysis import temporal
from repro.collection.store import Dataset, DatasetRecord, UrlOccurrence
from repro.news.domains import NewsCategory
from repro.timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def rec(post_id, t, urls, community="Twitter", platform="twitter"):
    return DatasetRecord(post_id=post_id, platform=platform,
                         community=community, author_id="u",
                         created_at=float(t), urls=tuple(urls))


def url(u, category=ALT, domain="breitbart.com"):
    return UrlOccurrence(u, domain, category)


class TestDailyOccurrence:
    def test_daily_counts(self):
        ds = Dataset([
            rec("p1", 100, [url("a")]),
            rec("p2", 200, [url("a"), url("b", MAIN, "cnn.com")]),
            rec("p3", SECONDS_PER_DAY + 5, [url("c", MAIN, "cnn.com")]),
        ])
        series = temporal.daily_occurrence(ds, "Twitter", 0,
                                           3 * SECONDS_PER_DAY)
        assert series.n_days == 3
        assert list(series.alternative) == [2, 0, 0]
        assert list(series.mainstream) == [1, 1, 0]

    def test_out_of_window_ignored(self):
        ds = Dataset([rec("p1", 10 * SECONDS_PER_DAY, [url("a")])])
        series = temporal.daily_occurrence(ds, "x", 0, SECONDS_PER_DAY)
        assert series.alternative.sum() == 0

    def test_normalized(self):
        ds = Dataset([
            rec("p1", 100, [url("a")]),
            rec("p2", SECONDS_PER_DAY + 1, [url("b", MAIN, "cnn.com")]),
        ])
        series = temporal.daily_occurrence(ds, "x", 0, 2 * SECONDS_PER_DAY)
        normalized = series.normalized(ALT)
        # avg daily total urls = 1; day 0 alt count = 1
        assert normalized[0] == pytest.approx(1.0)
        assert normalized[1] == pytest.approx(0.0)

    def test_alternative_fraction_nan_on_empty_days(self):
        ds = Dataset([rec("p1", 100, [url("a")])])
        series = temporal.daily_occurrence(ds, "x", 0, 2 * SECONDS_PER_DAY)
        fraction = series.alternative_fraction()
        assert fraction[0] == pytest.approx(1.0)
        assert np.isnan(fraction[1])


class TestRepostLags:
    def test_lags_from_first(self):
        ds = Dataset([
            rec("p1", 0, [url("a")]),
            rec("p2", 2 * SECONDS_PER_HOUR, [url("a")]),
            rec("p3", 5 * SECONDS_PER_HOUR, [url("a")]),
            rec("p4", 0, [url("b")]),  # single occurrence: no lags
        ])
        ecdf = temporal.repost_lag_cdf(ds, ALT)
        assert ecdf.n == 2
        assert list(ecdf.values) == [2.0, 5.0]  # hours

    def test_none_when_no_reposts(self):
        ds = Dataset([rec("p1", 0, [url("a")])])
        assert temporal.repost_lag_cdf(ds, ALT) is None

    def test_day_inflection(self):
        ds = Dataset([
            rec("p1", 0, [url("a")]),
            rec("p2", SECONDS_PER_HOUR, [url("a")]),
            rec("p3", 3 * SECONDS_PER_DAY, [url("a")]),
        ])
        ecdf = temporal.repost_lag_cdf(ds, ALT)
        assert temporal.repost_lag_day_inflection(ecdf) == pytest.approx(0.5)


class TestInterarrival:
    def test_mean_interarrival(self):
        ds = Dataset([
            rec("p1", 0, [url("a")]),
            rec("p2", 100, [url("a")]),
            rec("p3", 300, [url("a")]),
        ])
        ecdf = temporal.interarrival_cdf(ds, ALT)
        assert ecdf.n == 1
        assert ecdf.values[0] == pytest.approx(150.0)

    def test_restricted_urls(self):
        ds = Dataset([
            rec("p1", 0, [url("a")]),
            rec("p2", 100, [url("a")]),
            rec("p3", 0, [url("b")]),
            rec("p4", 100, [url("b")]),
        ])
        ecdf = temporal.interarrival_cdf(ds, ALT, restrict_urls={"a"})
        assert ecdf.n == 1

    def test_common_urls(self):
        ds1 = Dataset([rec("p1", 0, [url("a"), url("b")])])
        ds2 = Dataset([rec("p2", 0, [url("a")])])
        common = temporal.common_urls({"x": ds1, "y": ds2})
        assert common == {"a"}

    def test_common_urls_empty_input(self):
        assert temporal.common_urls({}) == set()


class TestCrossPlatform:
    def make_pair(self):
        # URL a: first on A (t=0), then B (t=100)
        # URL b: first on B (t=0), then A (t=50)
        # URL c: only on A
        ds_a = Dataset([
            rec("a1", 0, [url("a")], community="A"),
            rec("b1", 50, [url("b")], community="A"),
            rec("c1", 0, [url("c")], community="A"),
        ])
        ds_b = Dataset([
            rec("a2", 100, [url("a")], community="B"),
            rec("b2", 0, [url("b")], community="B"),
        ])
        return ds_a, ds_b

    def test_direction_split(self):
        ds_a, ds_b = self.make_pair()
        lags = temporal.cross_platform_lags(ds_a, ds_b, "A", "B", ALT)
        assert lags.n_a_first == 1
        assert lags.n_b_first == 1
        assert lags.a_first.values[0] == pytest.approx(100.0)
        assert lags.b_first.values[0] == pytest.approx(50.0)

    def test_simultaneous_excluded(self):
        ds_a = Dataset([rec("p1", 0, [url("a")], community="A")])
        ds_b = Dataset([rec("p2", 0, [url("a")], community="B")])
        lags = temporal.cross_platform_lags(ds_a, ds_b, "A", "B", ALT)
        assert lags.n_a_first == 0
        assert lags.n_b_first == 0

    def test_turning_share(self):
        ds_a, ds_b = self.make_pair()
        lags = temporal.cross_platform_lags(ds_a, ds_b, "A", "B", ALT)
        share_a, share_b = lags.turning_share_24h()
        assert share_a == 1.0
        assert share_b == 1.0

    def test_faster_counts_table(self):
        ds_a, ds_b = self.make_pair()
        rows = temporal.faster_platform_counts({"A vs B": (ds_a, ds_b)})
        assert len(rows) == 2  # mainstream + alternative
        alt_row = next(r for r in rows if r.category == ALT)
        assert alt_row.faster_on_1 == 1
        assert alt_row.faster_on_2 == 1
        main_row = next(r for r in rows if r.category == MAIN)
        assert main_row.faster_on_1 == 0
