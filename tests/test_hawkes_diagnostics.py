"""Tests for MCMC diagnostics, predictive checks, and residuals."""

import numpy as np
import pytest

from repro.core.events import DiscreteEvents
from repro.core.hawkes import HawkesParams, fit_gibbs, simulate_branching
from repro.core.hawkes.diagnostics import (
    ChainDiagnostics,
    diagnose_weight_chains,
    effective_sample_size,
    geweke_z,
    posterior_predictive_check,
    residual_uniformity,
)


def make_params(background, weights, max_lag=10):
    background = np.asarray(background, dtype=float)
    weights = np.asarray(weights, dtype=float)
    k = len(background)
    impulse = np.tile(np.full(max_lag, 1.0 / max_lag), (k, k, 1))
    return HawkesParams(background=background, weights=weights,
                        impulse=impulse)


class TestGeweke:
    def test_iid_chain_small_z(self, rng):
        chain = rng.normal(0, 1, 2000)
        assert abs(geweke_z(chain)) < 3.5

    def test_drifting_chain_large_z(self):
        chain = np.linspace(0, 10, 1000) + 0.01 * np.sin(
            np.arange(1000))
        assert abs(geweke_z(chain)) > 5

    def test_constant_chain(self):
        assert geweke_z(np.ones(100)) == 0.0

    def test_short_chain_rejected(self):
        with pytest.raises(ValueError):
            geweke_z(np.ones(5))


class TestEss:
    def test_iid_ess_near_n(self, rng):
        chain = rng.normal(0, 1, 1000)
        ess = effective_sample_size(chain)
        assert ess > 500

    def test_correlated_chain_low_ess(self, rng):
        chain = np.zeros(1000)
        for i in range(1, 1000):
            chain[i] = 0.98 * chain[i - 1] + rng.normal(0, 0.05)
        assert effective_sample_size(chain) < 200

    def test_tiny_chain(self):
        assert effective_sample_size(np.array([1.0, 2.0])) == 2.0

    def test_constant_chain(self):
        assert effective_sample_size(np.ones(50)) == 50.0


class TestChainDiagnostics:
    @pytest.fixture(scope="class")
    def gibbs_result(self):
        params = make_params([0.01, 0.008],
                             [[0.3, 0.1], [0.05, 0.25]], max_lag=15)
        rng = np.random.default_rng(3)
        events = simulate_branching(params, 30_000, rng)
        return fit_gibbs(events, 15, n_iterations=80, burn_in=20,
                         rng=rng)

    def test_diagnose(self, gibbs_result):
        diag = diagnose_weight_chains(gibbs_result.weight_samples)
        assert diag.geweke.shape == (2, 2)
        assert diag.n_samples == 60
        assert diag.min_ess > 1

    def test_converged_on_good_chain(self, gibbs_result):
        # short chains (60 kept samples, 4 cells): assert only the
        # absence of catastrophic divergence
        diag = diagnose_weight_chains(gibbs_result.weight_samples)
        assert diag.converged(z_threshold=6.0, min_ess=2.0,
                              max_flagged_fraction=0.25)

    def test_rejects_short_chains(self):
        with pytest.raises(ValueError):
            diagnose_weight_chains(np.zeros((5, 2, 2)))

    def test_converged_thresholds(self):
        diag = ChainDiagnostics(
            geweke=np.array([[5.0]]), ess=np.array([[100.0]]),
            n_samples=50)
        assert not diag.converged()
        assert diag.worst_geweke == 5.0


class TestPredictiveCheck:
    def test_well_specified_model_passes(self, rng):
        params = make_params([0.02, 0.01], [[0.2, 0.1], [0.1, 0.2]])
        events = simulate_branching(params, 20_000, rng)
        check = posterior_predictive_check(params, events,
                                           n_replicates=15, rng=rng)
        assert check.acceptable(threshold=4.0)

    def test_misspecified_model_fails(self, rng):
        truth = make_params([0.05], [[0.0]])
        events = simulate_branching(truth, 20_000, rng)
        wrong = make_params([0.001], [[0.0]])
        check = posterior_predictive_check(wrong, events,
                                           n_replicates=15, rng=rng)
        assert not check.acceptable(threshold=3.0)
        assert check.z_scores[0] > 3

    def test_shapes(self, rng):
        params = make_params([0.01, 0.01, 0.01], np.zeros((3, 3)))
        events = simulate_branching(params, 5_000, rng)
        check = posterior_predictive_check(params, events,
                                           n_replicates=5, rng=rng)
        assert check.observed.shape == (3,)
        assert check.replicated_mean.shape == (3,)


class TestResiduals:
    def test_true_model_uniform_residuals(self, rng):
        params = make_params([0.03, 0.02], [[0.2, 0.1], [0.05, 0.25]])
        events = simulate_branching(params, 15_000, rng)
        pvalue = residual_uniformity(params, events, rng=rng)
        assert pvalue > 0.001  # no strong evidence of misfit

    def test_wrong_model_rejected(self, rng):
        truth = make_params([0.05], [[0.4]])
        events = simulate_branching(truth, 15_000, rng)
        wrong = make_params([0.005], [[0.0]])
        pvalue = residual_uniformity(wrong, events, rng=rng)
        assert pvalue < 0.01

    def test_no_events_rejected(self, rng):
        params = make_params([0.01], [[0.0]])
        empty = DiscreteEvents.from_pairs([], n_bins=100, n_processes=1)
        with pytest.raises(ValueError):
            residual_uniformity(params, empty, rng=rng)
