"""Observability spine tests: registry, merge semantics, tracing,
Prometheus rendering, /metrics, and instrumentation bit-identity."""

from __future__ import annotations

import http.client
import json
import logging
import threading

import numpy as np
import pytest

from repro.api import ArtifactStore, Study, StudyService
from repro.api.serialize import influence_payload, payload_key
from repro.cli import main as cli_main
from repro.config import HawkesConfig
from repro.core.events import DiscreteEvents
from repro.core.hawkes.inference import fit_em
from repro.core.influence import fit_corpus, select_urls
from repro.live import EventBus, LiveEngine, dataset_source
from repro.obs import (
    METRICS_REF,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    collecting,
    get_registry,
    merge_snapshots,
    publish_snapshot,
    render_prometheus,
    render_text,
    set_registry,
    snapshot_key,
    span,
    start_trace,
    stop_trace,
    summarize_trace,
)
from repro.parallel import parallel_map


@pytest.fixture()
def fresh_registry():
    """Swap in an isolated ambient registry for the test's duration."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


# ---------------------------------------------------------------------------
# Instruments and bucket semantics
# ---------------------------------------------------------------------------

class TestInstruments:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_create_distinct_children(self):
        registry = MetricsRegistry()
        registry.counter("c_total", route="/a").inc()
        registry.counter("c_total", route="/b").inc(2)
        # Same labels in a different kwarg order hit the same child.
        registry.counter("c_total", route="/a").inc()
        samples = registry.snapshot()["metrics"]["c_total"]["samples"]
        assert [(s["labels"], s["value"]) for s in samples] == [
            ({"route": "/a"}, 2.0), ({"route": "/b"}, 2.0)]

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_bucket_edges_le_semantics(self):
        # Prometheus ``le``: a value equal to an edge lands in that
        # edge's bucket; above the last edge goes to overflow.
        histogram = Histogram(edges=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        sample = histogram._sample()
        assert sample["counts"] == [2, 2, 1]
        assert sample["count"] == 5
        assert sample["min"] == 0.5 and sample["max"] == 11.0
        assert histogram.quantile(0.5) <= 10.0

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0))

    def test_histogram_edges_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", edges=(1.0, 3.0))


# ---------------------------------------------------------------------------
# Snapshot / merge
# ---------------------------------------------------------------------------

def _snapshot(counter=0.0, gauge=None, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("m_total").inc(counter)
    if gauge is not None:
        registry.gauge("m_gauge").set(gauge)
    histogram = registry.histogram("m_seconds", edges=(1.0, 10.0))
    for value in observations:
        histogram.observe(value)
    return registry.snapshot()


class TestMerge:
    def test_counters_sum_histograms_add(self):
        merged = merge_snapshots(
            _snapshot(counter=2, observations=(0.5, 5.0)),
            _snapshot(counter=3, observations=(20.0,)))
        metrics = merged["metrics"]
        assert metrics["m_total"]["samples"][0]["value"] == 5.0
        sample = metrics["m_seconds"]["samples"][0]
        assert sample["counts"] == [1, 1, 1]
        assert sample["max"] == 20.0 and sample["min"] == 0.5

    def test_gauge_merge_is_deterministic(self):
        # More updates wins; equal updates fall back to larger value —
        # both max-operations, so merge order can't matter.
        busy = MetricsRegistry()
        busy.gauge("m_gauge").set(1.0)
        busy.gauge("m_gauge").set(1.0)
        idle = MetricsRegistry()
        idle.gauge("m_gauge").set(99.0)
        a, b = busy.snapshot(), idle.snapshot()
        for order in ((a, b), (b, a)):
            merged = merge_snapshots(*order)
            assert merged["metrics"]["m_gauge"]["samples"][0]["value"] == 1.0

    def test_merge_associative_and_commutative(self):
        a = _snapshot(counter=1, gauge=3.0, observations=(0.5,))
        b = _snapshot(counter=2, gauge=7.0, observations=(5.0, 50.0))
        c = _snapshot(counter=4, observations=(2.0,))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right
        assert merge_snapshots(a, b, c) == merge_snapshots(c, b, a)

    def test_mismatched_histogram_edges_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("m_seconds", edges=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            registry.merge_snapshot(_snapshot(observations=(1.0,)))

    def test_snapshot_is_deterministic_and_keyable(self):
        a = _snapshot(counter=2, gauge=1.5, observations=(0.5,))
        b = _snapshot(counter=2, gauge=1.5, observations=(0.5,))
        assert a == b
        assert snapshot_key(a) == snapshot_key(b)

    def test_publish_snapshot_round_trips_through_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        snapshot = _snapshot(counter=2)
        key = publish_snapshot(store, snapshot)
        assert store.get_ref(METRICS_REF) == key
        assert ArtifactStore(tmp_path).get(key) == snapshot


def _obs_task(x):
    registry = get_registry()
    registry.counter("obs_test_tasks_total").inc()
    registry.histogram("obs_test_values", edges=(1.0, 10.0)).observe(x)
    return x * 2


class TestParallelMerge:
    def _run(self, n_jobs):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            out = parallel_map(_obs_task, range(12), n_jobs=n_jobs)
        finally:
            set_registry(previous)
        return out, registry.snapshot()["metrics"]

    def test_worker_metrics_travel_back_and_merge(self):
        serial_out, serial = self._run(1)
        parallel_out, parallel = self._run(3)
        assert serial_out == parallel_out
        # Task-recorded metrics agree exactly regardless of fan-out
        # (merge is associative/commutative, so completion order and
        # chunking can't change the totals).
        assert (serial["obs_test_tasks_total"]["samples"][0]["value"]
                == parallel["obs_test_tasks_total"]["samples"][0]["value"]
                == 12)
        assert (serial["obs_test_values"]["samples"][0]["counts"]
                == parallel["obs_test_values"]["samples"][0]["counts"])
        assert parallel["repro_parallel_chunks_total"][
            "samples"][0]["value"] >= 2
        assert parallel["repro_parallel_task_seconds"][
            "samples"][0]["count"] == 12

    def test_collecting_isolates_and_null_passthrough(self):
        outer = MetricsRegistry()
        previous = set_registry(outer)
        try:
            with collecting() as inner:
                assert get_registry() is inner
                inner.counter("inner_total").inc()
            assert get_registry() is outer
            assert "inner_total" not in outer.snapshot()["metrics"]
            set_registry(NULL_REGISTRY)
            with collecting() as registry:
                assert registry is NULL_REGISTRY
        finally:
            set_registry(previous)

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("n_total").inc()
        NULL_REGISTRY.gauge("n_gauge").set(5)
        NULL_REGISTRY.histogram("n_seconds").observe(1.0)
        assert NULL_REGISTRY.snapshot()["metrics"] == {}


# ---------------------------------------------------------------------------
# Prometheus rendering (golden)
# ---------------------------------------------------------------------------

GOLDEN_PROMETHEUS = """\
# TYPE demo_ratio gauge
demo_ratio 0.5
# HELP demo_requests_total Demo requests.
# TYPE demo_requests_total counter
demo_requests_total{route="/x"} 3
# HELP demo_seconds Demo durations.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.1"} 1
demo_seconds_bucket{le="1"} 2
demo_seconds_bucket{le="+Inf"} 3
demo_seconds_sum 4.5625
demo_seconds_count 3
"""


class TestRender:
    def test_prometheus_golden(self):
        registry = MetricsRegistry()
        registry.gauge("demo_ratio").set(0.5)
        registry.counter("demo_requests_total", "Demo requests.",
                         route="/x").inc(3)
        histogram = registry.histogram("demo_seconds", "Demo durations.",
                                       edges=(0.1, 1.0))
        for value in (0.0625, 0.5, 4.0):
            histogram.observe(value)
        assert render_prometheus(registry.snapshot()) == GOLDEN_PROMETHEUS

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", label='a"b\\c\nd').inc()
        text = render_prometheus(registry.snapshot())
        assert 'label="a\\"b\\\\c\\nd"' in text

    def test_render_text_mentions_quantiles(self):
        snapshot = _snapshot(counter=2, observations=(0.5, 5.0))
        text = render_text(snapshot)
        assert "m_total" in text and "p95<=" in text
        assert render_text({"metrics": {}}) == "(no metrics recorded)"


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTrace:
    def test_span_nesting_and_summary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        start_trace(path)
        try:
            with span("outer", stage="demo"):
                with span("inner"):
                    pass
        finally:
            stop_trace()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        inner, outer = records  # children complete (and write) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["span"]
        assert (inner["depth"], outer["depth"]) == (1, 0)
        assert outer["parent"] is None
        assert outer["attrs"] == {"stage": "demo"}
        assert all(r["wall_s"] >= 0 and "pid" in r for r in records)

        summary = summarize_trace(path)
        assert set(summary) == {"outer", "inner"}
        assert summary["outer"]["count"] == 1
        assert summary["outer"]["wall_s"] >= summary["inner"]["wall_s"]

    def test_span_records_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        start_trace(path)
        try:
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("no")
        finally:
            stop_trace()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["error"] == "RuntimeError"

    def test_disabled_spans_write_nothing(self, tmp_path):
        stop_trace()
        with span("quiet"):
            pass  # no sink: measured but unrecorded, and no crash


# ---------------------------------------------------------------------------
# Bit-identity: instrumentation must never change fitted numbers
# ---------------------------------------------------------------------------

class TestBitIdentity:
    def test_traced_fit_corpus_matches_untraced(self, cascades, tmp_path):
        corpus = select_urls(cascades)[:3]
        config = HawkesConfig(gibbs_iterations=8, gibbs_burn_in=2)

        previous = set_registry(NULL_REGISTRY)
        try:
            golden = fit_corpus(corpus, config, rng=5)
        finally:
            set_registry(previous)

        registry = MetricsRegistry()
        previous = set_registry(registry)
        start_trace(tmp_path / "trace.jsonl")
        try:
            traced = fit_corpus(corpus, config, rng=5)
        finally:
            stop_trace()
            set_registry(previous)

        # Content-hash equality over the full serialized payload: every
        # background, weight, and likelihood is bit-for-bit identical.
        assert payload_key(influence_payload(traced)) == payload_key(
            influence_payload(golden))
        for a, b in zip(golden.fits, traced.fits):
            assert a.log_likelihood == b.log_likelihood
            assert np.array_equal(a.weights, b.weights)
        # ... and the instrumented run did record its work.
        families = registry.snapshot()["metrics"]
        assert families["repro_fit_total"]["samples"][0]["value"] == 3
        trace_names = {json.loads(line)["name"] for line in
                       (tmp_path / "trace.jsonl").read_text().splitlines()}
        assert "fit_corpus" in trace_names


# ---------------------------------------------------------------------------
# End-to-end: /metrics endpoint and the stats CLI
# ---------------------------------------------------------------------------

def _get(service, path, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


@pytest.fixture()
def serving(collected, fresh_registry):
    study = Study.from_data(collected, max_urls=4)
    service = StudyService(study, port=0)
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    yield service
    service.shutdown()
    service.close()
    thread.join(timeout=5)


class TestMetricsEndpoint:
    def test_exposes_required_families(self, serving, collected,
                                       fresh_registry):
        # Exercise every acceptance-bar layer against the ambient
        # registry the service renders.
        events = DiscreteEvents.from_pairs(
            [(0, 0), (3, 0), (10, 1), (41, 1), (55, 0)],
            n_bins=100, n_processes=2)
        fit_em(events, 20, max_iterations=15)

        bus = EventBus([("twitter", dataset_source(collected.twitter))])
        engine = LiveEngine(bus, summary_every=50)
        assert engine.run(limit=120) == 120

        store = serving.study.store
        store.put("warm", {"x": 1})
        store.get("warm")
        store.get("cold-key")

        assert _get(serving, "/healthz")[0] == 200
        status, headers, body = _get(serving, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        for family in (
                "repro_live_ingest_records_per_second",   # live throughput
                'repro_live_records_total{source="twitter"} 120',
                "repro_fit_em_iterations_bucket",         # EM iterations
                "repro_store_hit_ratio",                  # cache hit ratio
                'repro_http_request_seconds_bucket{route=',  # route latency
                'route="/healthz"',
        ):
            assert family in text, family

    def test_json_format_and_bad_format(self, serving, fresh_registry):
        _get(serving, "/healthz")
        status, headers, body = _get(serving, "/metrics?format=json")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        snapshot = json.loads(body)
        assert snapshot["version"] == 1
        assert "repro_http_requests_total" in snapshot["metrics"]
        assert _get(serving, "/metrics?format=xml")[0] == 400

    def test_scrape_sets_not_modified_ratio(self, serving, fresh_registry):
        _, headers, _ = _get(serving, "/experiments")
        assert _get(serving, "/experiments",
                    {"If-None-Match": headers["ETag"]})[0] == 304
        _, _, body = _get(serving, "/metrics?format=json")
        metrics = json.loads(body)["metrics"]
        ratio = metrics["repro_http_not_modified_ratio"][
            "samples"][0]["value"]
        assert 0 < ratio < 1

    def test_access_lines_go_through_logging(self, serving, caplog):
        with caplog.at_level(logging.INFO, logger="repro.api.service"):
            _get(serving, "/healthz")
        assert any("/healthz" in record.getMessage()
                   for record in caplog.records)


class TestEngineObservability:
    def test_summaries_logged_and_gauges_set(self, collected, caplog,
                                             fresh_registry):
        bus = EventBus([("twitter", dataset_source(collected.twitter))])
        engine = LiveEngine(bus, summary_every=40)
        with caplog.at_level(logging.INFO, logger="repro.live"):
            engine.run(limit=100)
        assert any("records" in record.getMessage()
                   for record in caplog.records)
        metrics = fresh_registry.snapshot()["metrics"]
        assert metrics["repro_live_ingest_records_per_second"][
            "samples"][0]["value"] > 0
        assert metrics["repro_live_merge_depth"]["samples"]

    def test_publish_metrics_lands_in_store(self, collected, tmp_path,
                                            fresh_registry):
        store = ArtifactStore(tmp_path)
        bus = EventBus([("twitter", dataset_source(collected.twitter))])
        engine = LiveEngine(bus, summary_every=0, publish_store=store)
        engine.run(limit=50)
        key = store.get_ref(METRICS_REF)
        assert key is not None
        snapshot = store.get(key)
        assert "repro_live_records_total" in snapshot["metrics"]


class TestStatsCli:
    def test_stats_from_cache(self, tmp_path, capsys, fresh_registry):
        fresh_registry.counter("demo_total", "Demo.").inc(2)
        store = ArtifactStore(tmp_path / "cache")
        publish_snapshot(store, fresh_registry.snapshot())
        assert cli_main(["stats", "--cache",
                         str(tmp_path / "cache")]) == 0
        assert "demo_total" in capsys.readouterr().out

    def test_stats_from_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        start_trace(path)
        try:
            with span("alpha"):
                pass
        finally:
            stop_trace()
        assert cli_main(["stats", "--trace", str(path), "--json"]) == 0
        assert "alpha" in capsys.readouterr().out

    def test_stats_requires_a_source(self, capsys):
        assert cli_main(["stats"]) == 2
        assert "--cache" in capsys.readouterr().err

    def test_stats_empty_cache_fails(self, tmp_path, capsys):
        assert cli_main(["stats", "--cache",
                         str(tmp_path / "empty")]) == 1
        assert "no metrics snapshot" in capsys.readouterr().err
