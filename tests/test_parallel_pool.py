"""Tests for the process-pool map (repro.parallel.pool)."""

import os

import pytest

from repro.parallel import (
    auto_chunk_size,
    iter_chunks,
    parallel_map,
    resolve_n_jobs,
)


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def variable_cost(x):
    # Uneven per-task cost so chunks finish out of submission order.
    total = 0
    for _ in range((x % 5) * 2000):
        total += 1
    return x + total * 0


class TestResolveNJobs:
    def test_none_is_serial(self):
        assert resolve_n_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(7) == 7

    def test_all_cores(self):
        assert resolve_n_jobs(-1) == (os.cpu_count() or 1)

    def test_all_but_one_floors_at_one(self):
        cpus = os.cpu_count() or 1
        assert resolve_n_jobs(-2) == max(1, cpus - 1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(0)


class TestChunking:
    def test_chunks_cover_all_indices(self):
        spans = list(iter_chunks(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_empty(self):
        assert list(iter_chunks(0, 4)) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(5, 0))

    def test_auto_chunk_size_oversubscribes(self):
        # 100 tasks over 2 workers -> several chunks per worker
        size = auto_chunk_size(100, 2)
        assert 1 <= size < 100 // 2
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(3, 8) == 1


class TestParallelMap:
    def test_empty_input(self):
        assert parallel_map(square, [], n_jobs=4) == []

    def test_serial_matches_list_comprehension(self):
        items = list(range(20))
        assert parallel_map(square, items) == [x * x for x in items]

    @pytest.mark.parametrize("n_jobs", [2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_parallel_preserves_order(self, n_jobs, chunk_size):
        items = list(range(23))
        result = parallel_map(variable_cost, items, n_jobs=n_jobs,
                              chunk_size=chunk_size)
        assert result == items

    def test_more_jobs_than_items(self):
        assert parallel_map(square, [2, 3], n_jobs=16) == [4, 9]

    def test_serial_path_accepts_closures(self):
        # n_jobs=1 never pickles, so unpicklable callables are fine.
        seen = []

        def record(x):
            seen.append(x)
            return x

        assert parallel_map(record, [1, 2, 3], n_jobs=1) == [1, 2, 3]
        assert seen == [1, 2, 3]

    def test_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="three"):
            parallel_map(fail_on_three, [1, 2, 3, 4], n_jobs=1)

    def test_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="three"):
            parallel_map(fail_on_three, list(range(8)), n_jobs=2,
                         chunk_size=2)

    @pytest.mark.parametrize("n_jobs,chunk_size", [(1, None), (2, 2)])
    def test_progress_monotone_and_complete(self, n_jobs, chunk_size):
        calls = []
        items = list(range(9))
        parallel_map(square, items, n_jobs=n_jobs, chunk_size=chunk_size,
                     progress=lambda done, total: calls.append((done, total)))
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        assert calls[-1] == (9, 9)
        assert all(t == 9 for _, t in calls)
