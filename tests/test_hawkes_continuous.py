"""Tests for the continuous-time Hawkes baseline."""

import numpy as np
import pytest

from repro.core.events import DiscreteEvents
from repro.core.hawkes.continuous import (
    ContinuousHawkesParams,
    EventList,
    continuous_log_likelihood,
    discrete_events_to_continuous,
    fit_continuous_em,
    simulate_continuous,
)


def make_params(background=(0.002, 0.001),
                weights=((0.3, 0.1), (0.05, 0.25)),
                decay=1.0 / 300):
    return ContinuousHawkesParams(
        background=np.asarray(background, dtype=float),
        weights=np.asarray(weights, dtype=float),
        decay=decay,
    )


class TestParams:
    def test_valid(self):
        params = make_params()
        assert params.n_processes == 2
        assert params.spectral_radius() < 1

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            make_params(decay=-1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            make_params(weights=((-0.1, 0), (0, 0)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ContinuousHawkesParams(background=np.ones(2),
                                   weights=np.ones((3, 3)), decay=1.0)


class TestEventList:
    def test_from_pairs_sorts(self):
        events = EventList.from_pairs([(5.0, 1), (1.0, 0)], horizon=10,
                                      n_processes=2)
        assert list(events.times) == [1.0, 5.0]
        assert list(events.counts_per_process()) == [1, 1]

    def test_out_of_horizon_rejected(self):
        with pytest.raises(ValueError):
            EventList.from_pairs([(11.0, 0)], horizon=10, n_processes=1)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            EventList(times=np.array([5.0, 1.0]),
                      processes=np.array([0, 0]),
                      horizon=10, n_processes=1)


class TestSimulation:
    def test_poisson_limit(self, rng):
        params = make_params(weights=((0.0, 0.0), (0.0, 0.0)))
        horizon = 100_000.0
        events = simulate_continuous(params, horizon, rng)
        counts = events.counts_per_process()
        assert counts[0] == pytest.approx(0.002 * horizon, rel=0.2)
        assert counts[1] == pytest.approx(0.001 * horizon, rel=0.3)

    def test_branching_amplification(self, rng):
        quiet = make_params(weights=((0.0, 0.0), (0.0, 0.0)))
        loud = make_params(weights=((0.6, 0.0), (0.0, 0.6)))
        horizon = 50_000.0
        n_quiet = len(simulate_continuous(quiet, horizon, rng))
        n_loud = len(simulate_continuous(loud, horizon, rng))
        assert n_loud > 1.5 * n_quiet

    def test_events_in_horizon(self, rng):
        events = simulate_continuous(make_params(), 10_000.0, rng)
        if len(events):
            assert events.times.max() < 10_000.0
            assert events.times.min() >= 0.0


class TestLikelihood:
    def test_poisson_matches_closed_form(self):
        # Pure Poisson: LL = sum log(mu) - mu*T
        params = make_params(background=(0.01,), weights=((0.0,),),
                             decay=0.01)
        events = EventList.from_pairs([(10.0, 0), (20.0, 0)],
                                      horizon=100, n_processes=1)
        expected = 2 * np.log(0.01) - 0.01 * 100
        assert continuous_log_likelihood(params, events) == \
            pytest.approx(expected)

    def test_excitation_raises_likelihood_of_clustered_data(self, rng):
        truth = make_params(background=(0.001,), weights=((0.6,),),
                            decay=1 / 100)
        events = simulate_continuous(truth, 200_000.0, rng)
        null = make_params(
            background=(len(events) / 200_000.0,),
            weights=((0.0,),), decay=1 / 100)
        assert (continuous_log_likelihood(truth, events)
                > continuous_log_likelihood(null, events))

    def test_zero_rate_is_minus_inf(self):
        params = make_params(background=(0.0,), weights=((0.0,),),
                             decay=1.0)
        events = EventList.from_pairs([(1.0, 0)], horizon=10,
                                      n_processes=1)
        assert continuous_log_likelihood(params, events) == -np.inf


class TestEmFit:
    @pytest.fixture(scope="class")
    def simulated(self):
        truth = make_params(background=(0.004, 0.002),
                            weights=((0.35, 0.15), (0.05, 0.3)),
                            decay=1 / 200)
        rng = np.random.default_rng(7)
        events = simulate_continuous(truth, 300_000.0, rng)
        return truth, events

    def test_recovers_background(self, simulated):
        truth, events = simulated
        fit = fit_continuous_em(events, decay=truth.decay)
        assert np.allclose(fit.params.background, truth.background,
                           rtol=0.5, atol=0.002)

    def test_recovers_diagonal_weights(self, simulated):
        truth, events = simulated
        fit = fit_continuous_em(events, decay=truth.decay)
        for k in range(2):
            assert fit.params.weights[k, k] == pytest.approx(
                truth.weights[k, k], rel=0.4)

    def test_estimate_decay(self, simulated):
        truth, events = simulated
        fit = fit_continuous_em(events, decay=1 / 500,
                                estimate_decay=True,
                                max_iterations=60)
        assert fit.params.decay == pytest.approx(truth.decay, rel=0.6)

    def test_likelihood_finite(self, simulated):
        truth, events = simulated
        fit = fit_continuous_em(events, decay=truth.decay)
        assert np.isfinite(fit.log_likelihood)


class TestDiscreteConversion:
    def test_conversion_preserves_counts(self, rng):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (0, 0), (5, 1), (99, 0)], n_bins=100, n_processes=2)
        continuous = discrete_events_to_continuous(events, delta_t=60,
                                                   rng=rng)
        assert len(continuous) == 4
        assert continuous.horizon == 6000
        assert list(continuous.counts_per_process()) == [3, 1]

    def test_times_inside_bins(self, rng):
        events = DiscreteEvents.from_pairs([(5, 0)], n_bins=10,
                                           n_processes=1)
        continuous = discrete_events_to_continuous(events, delta_t=60,
                                                   rng=rng)
        assert 300 <= continuous.times[0] < 360
