"""Tests for deterministic per-task seed derivation."""

import numpy as np
import pytest

from repro.parallel import as_seed_sequence, spawn_task_seeds


def state(seed_seq, words=4):
    return tuple(seed_seq.generate_state(words).tolist())


class TestAsSeedSequence:
    def test_int_is_stable(self):
        assert state(as_seed_sequence(7)) == state(as_seed_sequence(7))

    def test_seed_sequence_passthrough(self):
        root = np.random.SeedSequence(3)
        assert as_seed_sequence(root) is root

    def test_generator_reuses_underlying_entropy(self):
        # default_rng(s) and the bare integer s must derive the same
        # task streams, so CLI seeds and Generator call sites agree.
        from_gen = as_seed_sequence(np.random.default_rng(11))
        from_int = as_seed_sequence(11)
        assert state(from_gen) == state(from_int)

    def test_none_gives_fresh_entropy(self):
        a, b = as_seed_sequence(None), as_seed_sequence(None)
        assert state(a) != state(b)

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            as_seed_sequence("seed")


class TestSpawnTaskSeeds:
    def test_stable_across_runs(self):
        first = [state(s) for s in spawn_task_seeds(42, 6)]
        second = [state(s) for s in spawn_task_seeds(42, 6)]
        assert first == second

    def test_distinct_across_tasks(self):
        states = [state(s) for s in spawn_task_seeds(42, 16)]
        assert len(set(states)) == 16

    def test_keyed_by_task_index(self):
        seeds = spawn_task_seeds(42, 4)
        assert [s.spawn_key[-1] for s in seeds] == [0, 1, 2, 3]

    def test_prefix_stable(self):
        # The seeds of tasks 0..m-1 must not depend on the corpus size:
        # a 3-task spawn is a prefix of an 8-task spawn from the same
        # fresh root.
        short = [state(s) for s in spawn_task_seeds(9, 3)]
        long = [state(s) for s in spawn_task_seeds(9, 8)]
        assert long[:3] == short

    def test_independent_of_worker_count_and_chunk_size(self):
        # Derivation happens before dispatch: the per-task generator
        # draws are a pure function of (root, index), so any partition
        # of the same seed list yields identical streams.
        seeds = spawn_task_seeds(1234, 12)
        draws = [np.random.default_rng(s).random(3).tolist() for s in seeds]
        for chunk in (1, 3, 5):
            partitioned = [
                np.random.default_rng(s).random(3).tolist()
                for start in range(0, 12, chunk)
                for s in spawn_task_seeds(1234, 12)[start:start + chunk]
            ]
            assert partitioned == draws

    def test_repeated_spawn_from_same_root_disjoint(self):
        root = np.random.SeedSequence(5)
        first = [state(s) for s in spawn_task_seeds(root, 4)]
        second = [state(s) for s in spawn_task_seeds(root, 4)]
        assert not set(first) & set(second)

    def test_zero_tasks(self):
        assert spawn_task_seeds(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_task_seeds(0, -1)
