"""Tests for ECDF and KS utilities (incl. property tests)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import Ecdf, KsResult, ks_two_sample, summarize


class TestEcdf:
    def test_basic_evaluation(self):
        ecdf = Ecdf([1, 2, 3, 4])
        assert ecdf(0) == 0.0
        assert ecdf(1) == 0.25
        assert ecdf(2.5) == 0.5
        assert ecdf(4) == 1.0
        assert ecdf(100) == 1.0

    def test_vector_evaluation(self):
        ecdf = Ecdf([1, 2, 3, 4])
        values = ecdf(np.array([0, 2, 5]))
        assert list(values) == [0.0, 0.5, 1.0]

    def test_quantile(self):
        ecdf = Ecdf([10, 20, 30, 40])
        assert ecdf.quantile(0.25) == 10
        assert ecdf.quantile(0.5) == 20
        assert ecdf.quantile(1.0) == 40
        assert ecdf.median == 20

    def test_quantile_bounds(self):
        ecdf = Ecdf([1])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Ecdf([])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Ecdf(np.ones((2, 2)))

    def test_steps(self):
        ecdf = Ecdf([1, 1, 2])
        xs, ys = ecdf.steps()
        assert list(xs) == [1, 2]
        assert ys[0] == pytest.approx(2 / 3)
        assert ys[1] == pytest.approx(1.0)

    def test_log_grid(self):
        ecdf = Ecdf([1, 10, 100, 1000])
        xs, ys = ecdf.on_log_grid(n_points=10)
        assert xs[0] == pytest.approx(1)
        assert xs[-1] == pytest.approx(1000)
        assert ys[-1] == pytest.approx(1.0)
        assert np.all(np.diff(ys) >= 0)

    def test_log_grid_needs_positive(self):
        with pytest.raises(ValueError):
            Ecdf([-1, -2]).on_log_grid()

    def test_crossing_detected(self):
        # a sits mostly below 10, b mostly above: CDFs cross in between.
        a = Ecdf([1, 2, 3, 50, 60, 70])
        b = Ecdf([5, 6, 7, 8, 9, 100])
        crossing = a.crossing(b)
        assert crossing is not None
        assert 3 < crossing < 100

    def test_crossing_none_when_dominated(self):
        a = Ecdf([1, 2, 3])
        b = Ecdf([10, 20, 30])
        assert a.crossing(b) is None


class TestKs:
    def test_identical_samples_high_p(self):
        sample = np.arange(100)
        result = ks_two_sample(sample, sample)
        assert result.pvalue == pytest.approx(1.0)
        assert not result.significant()

    def test_different_samples_low_p(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 500)
        b = rng.normal(3, 1, 500)
        result = ks_two_sample(a, b)
        assert result.significant(0.01)
        assert result.statistic > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1])

    def test_result_type(self):
        result = ks_two_sample([1, 2], [1, 2])
        assert isinstance(result, KsResult)


class TestSummarize:
    def test_values(self):
        summary = summarize([1, 2, 3, 4])
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["n"] == 4
        assert summary["min"] == 1
        assert summary["max"] == 4

    def test_empty(self):
        assert summarize([])["n"] == 0


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_ecdf_monotone_and_bounded(sample):
    ecdf = Ecdf(sample)
    grid = np.linspace(min(sample) - 1, max(sample) + 1, 50)
    values = np.asarray(ecdf(grid))
    assert np.all(np.diff(values) >= 0)
    assert values[0] >= 0.0
    assert values[-1] == 1.0


@given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=100),
       st.floats(0.0, 1.0))
def test_ecdf_quantile_inverse_property(sample, q):
    ecdf = Ecdf(sample)
    x = ecdf.quantile(q)
    # F(F^{-1}(q)) >= q (right-continuous inverse)
    assert ecdf(x) >= q - 1e-12
