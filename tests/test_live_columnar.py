"""The columnar spine: batches, the chunked merge, and binary checkpoints.

The contract under test everywhere here is *exactness*: the columnar
path (`RecordBatch` + `EventBus.event_batches` + `update_batch`) is an
execution strategy, not an approximation, so every comparison is
``==`` on full state dicts — values and dict/Counter key order — never
a tolerance.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collection.columnar import RecordBatch, batch_records
from repro.collection.store import (
    DatasetRecord,
    UrlOccurrence,
    iter_jsonl,
    _source_family,
)
from repro.live import (
    EventBus,
    LiveEngine,
    dataset_batch_source,
    jsonl_batch_source,
    load_checkpoint,
    save_checkpoint,
)
from repro.live.checkpoint import CHECKPOINT_VERSION
from repro.news.domains import NewsCategory
from repro.obs import get_registry
from repro.timeutil import SECONDS_PER_DAY

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def _record(i, t, platform="twitter", community="Twitter",
            author=None, urls=1):
    return DatasetRecord(
        post_id=f"p{i}", platform=platform, community=community,
        author_id=author, created_at=float(t),
        urls=tuple(UrlOccurrence(f"http://x.com/{i}/{j}", "x.com", ALT)
                   for j in range(urls)))


# ---------------------------------------------------------------------------
# RecordBatch pack / slice round-trips
# ---------------------------------------------------------------------------

class TestRecordBatch:
    def test_pack_roundtrips_records(self):
        records = [_record(0, 1.0, urls=2),
                   _record(1, 2.0, "reddit", "politics", author="u1"),
                   _record(2, 2.0, "4chan", "/pol/", urls=0),
                   _record(3, 5.5, author="u2", urls=3)]
        batch = RecordBatch.from_records(records)
        assert len(batch) == 4
        assert batch.to_records() == records
        assert list(batch.iter_records()) == records
        assert list(batch) == records

    def test_slice_is_the_sublist(self):
        records = [_record(i, i * 1.0, urls=i % 3) for i in range(10)]
        batch = RecordBatch.from_records(records)
        for start, stop in ((0, 10), (0, 3), (3, 7), (9, 10), (4, 4)):
            assert batch.slice(start, stop).to_records() \
                == records[start:stop]

    def test_slice_preserves_consumer_results(self):
        # Cache propagation through slice() must not change what the
        # aggregators compute: a sliced batch and a freshly packed one
        # leave identical engine state.
        records = [_record(i, float(i // 2), community=f"c{i % 3}",
                           urls=1 + i % 2) for i in range(20)]
        whole = RecordBatch.from_records(records)
        sliced = whole.slice(5, 15)
        fresh = RecordBatch.from_records(records[5:15])
        a, b = LiveEngine(summary_every=0), LiveEngine(summary_every=0)
        a.process_batch(sliced, "s")
        b.process_batch(fresh, "s")
        assert a.state_dict() == b.state_dict()

    def test_batch_records_chunking(self):
        records = [_record(i, float(i)) for i in range(7)]
        chunks = list(batch_records(iter(records), 3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [r for c in chunks for r in c.iter_records()] == records
        assert list(batch_records(iter([]), 3)) == []
        with pytest.raises(ValueError):
            list(batch_records(iter(records), 0))


# ---------------------------------------------------------------------------
# The chunked k-way merge
# ---------------------------------------------------------------------------

class TestBatchMerge:
    def _sources(self):
        # Heavy timestamp ties across sources: the splice must break
        # them exactly like the row merge (registration order, then
        # arrival order within a source).
        a = [_record(i, t) for i, t in enumerate([1.0, 1.0, 2.0, 2.0, 9.0])]
        b = [_record(i + 10, t, "reddit", "politics")
             for i, t in enumerate([1.0, 2.0, 2.0, 3.0])]
        c = [_record(i + 20, t, "4chan", "/pol/")
             for i, t in enumerate([0.5, 2.0, 8.0, 8.0, 8.0, 10.0])]
        return [("tw", a), ("rd", b), ("4c", c)]

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 64])
    def test_flattened_batches_equal_row_merge(self, batch_size):
        row_bus = EventBus([(n, iter(rs)) for n, rs in self._sources()])
        expected = list(row_bus.events())

        col_bus = EventBus()
        for name, records in self._sources():
            col_bus.add_batch_source(
                name, batch_records(iter(records), batch_size))
        got = [(name, record)
               for name, chunk in col_bus.event_batches(batch_size)
               for record in chunk.iter_records()]
        assert got == expected

    def test_mixed_row_and_batch_sources(self):
        (na, a), (nb, b), (nc, c) = self._sources()
        row_bus = EventBus([(na, iter(a)), (nb, iter(b)), (nc, iter(c))])
        expected = list(row_bus.events())

        mixed = EventBus()
        mixed.add_source(na, iter(a))
        mixed.add_batch_source(nb, batch_records(iter(b), 2))
        mixed.add_source(nc, iter(c))
        got = [(name, record) for name, chunk in mixed.event_batches(4)
               for record in chunk.iter_records()]
        assert got == expected
        # ... and the row drain flattens batch sources the same way.
        mixed2 = EventBus()
        mixed2.add_source(na, iter(a))
        mixed2.add_batch_source(nb, batch_records(iter(b), 2))
        mixed2.add_source(nc, iter(c))
        assert list(mixed2.events()) == expected

    def test_unordered_batch_source_rejected(self):
        bad = [_record(0, 5.0), _record(1, 4.0)]
        bus = EventBus()
        bus.add_batch_source("bad", batch_records(iter(bad), 8))
        with pytest.raises(ValueError, match="not timestamp-ordered"):
            list(bus.event_batches(8))


# ---------------------------------------------------------------------------
# Property: columnar engine == row engine, any chunk boundaries
# ---------------------------------------------------------------------------

_venues = st.sampled_from([
    ("twitter", "Twitter"),
    ("reddit", "politics"),
    ("reddit", "The_Donald"),
    ("reddit", "sub_0001"),          # outside the six subreddits
    ("4chan", "/pol/"),
    ("4chan", "/sp/"),               # outside /pol/
])
_domains = st.sampled_from([("breitbart.com", ALT), ("rt.com", ALT),
                            ("nytimes.com", MAIN)])
_times = st.floats(0, 10 * SECONDS_PER_DAY, allow_nan=False)
_events = st.lists(
    st.tuples(_times, _venues, _domains, st.integers(0, 5)), max_size=60)


def _stream(events):
    records = []
    for i, (t, (platform, community), (domain, category), path) in enumerate(
            sorted(events, key=lambda e: e[0])):
        records.append(DatasetRecord(
            post_id=f"p{i}", platform=platform, community=community,
            author_id=f"u{i % 3}", created_at=t,
            urls=(UrlOccurrence(f"http://{domain}/{path}", domain,
                                category),)))
    return records


@given(_events, st.sampled_from([1, 2, 3, 7, 64]))
@settings(max_examples=30, deadline=None)
def test_columnar_engine_equals_row_engine(events, batch_size):
    records = _stream(events)

    row = LiveEngine(EventBus([("replay", iter(records))]),
                     summary_every=0)
    row.run()

    bus = EventBus()
    bus.add_batch_source("replay", batch_records(iter(records), batch_size))
    columnar = LiveEngine(bus, summary_every=0, batch_size=batch_size)
    columnar.run()

    assert columnar.state_dict() == row.state_dict()


@given(_events, st.integers(0, 59), st.sampled_from([1, 3, 16]))
@settings(max_examples=20, deadline=None)
def test_binary_checkpoint_restore_resume_equals_json(tmp_path_factory,
                                                      events, cut,
                                                      batch_size):
    """binary save → restore → columnar resume == a JSON-checkpointed
    row run, state-for-state."""
    records = _stream(events)
    cut = min(cut, len(records))
    tmp = tmp_path_factory.mktemp("ck")

    interrupted = LiveEngine(summary_every=0)
    for record in records[:cut]:
        interrupted.process(record)
    save_checkpoint(tmp / "ck.bin", interrupted.state_dict(),
                    fmt="binary")
    save_checkpoint(tmp / "ck.json", interrupted.state_dict(),
                    fmt="json")
    assert load_checkpoint(tmp / "ck.bin") \
        == load_checkpoint(tmp / "ck.json")

    resumed = LiveEngine(summary_every=0, batch_size=batch_size)
    resumed.load_state(load_checkpoint(tmp / "ck.bin"))
    for chunk in batch_records(iter(records[cut:]), batch_size):
        resumed.process_batch(chunk, "replay")

    straight = LiveEngine(summary_every=0)
    for record in records:
        straight.process(record)
    assert resumed.state_dict() == straight.state_dict()


def test_columnar_engine_chunk_spans_refit_window_edge(collected):
    """A chunk straddling the refit boundary must split there: the
    refit sees exactly the records before the edge, so columnar refits
    reproduce the row path's bit-for-bit."""
    from repro.live import RefitPolicy, WindowedHawkesRefitter

    records = sorted(collected.merged(),
                     key=lambda r: r.created_at)[:1200]

    def run(batch_size):
        refitter = WindowedHawkesRefitter(
            policy=RefitPolicy(every_records=500, max_urls=4,
                               method="em"),
            seed=3)
        bus = EventBus()
        if batch_size is None:
            bus.add_source("replay", iter(records))
        else:
            bus.add_batch_source(
                "replay", batch_records(iter(records), batch_size))
        engine = LiveEngine(bus, refitter=refitter, summary_every=0,
                            batch_size=batch_size)
        engine.run()
        return engine

    row = run(None)
    assert row.refitter.n_refits >= 2  # the edge is actually crossed
    columnar = run(512)  # 512 does not divide 500: chunks span edges
    assert columnar.refitter.n_refits == row.refitter.n_refits
    assert columnar.state_dict() == row.state_dict()


# ---------------------------------------------------------------------------
# Checkpoint formats
# ---------------------------------------------------------------------------

class TestCheckpointFormats:
    def _engine_state(self):
        records = _stream([(float(i), ("twitter", "Twitter"),
                            ("breitbart.com", ALT), i % 4)
                           for i in range(40)]
                          + [(float(i) + 0.5, ("4chan", "/pol/"),
                              ("rt.com", ALT), i % 3)
                             for i in range(30)])
        engine = LiveEngine(EventBus([("replay", iter(records))]),
                            summary_every=0)
        engine.run()
        return engine.state_dict()

    def test_binary_equals_json_loaded_state(self, tmp_path):
        state = self._engine_state()
        save_checkpoint(tmp_path / "ck.json", state)
        save_checkpoint(tmp_path / "ck.bin", state, fmt="binary")
        from_json = load_checkpoint(tmp_path / "ck.json")
        from_binary = load_checkpoint(tmp_path / "ck.bin")
        assert from_binary == from_json == state
        # Key order is part of the contract (Counter.most_common ties).
        assert json.dumps(from_binary, sort_keys=False) \
            == json.dumps(from_json, sort_keys=False)

    def test_binary_is_sha256_framed_and_smaller(self, tmp_path,
                                                 collected):
        from repro.api.store import OBJECT_MAGIC
        # Size only wins at realistic state sizes (npz has fixed
        # per-array overhead), so measure on the collected world.
        engine = LiveEngine(EventBus(
            [("m", iter(sorted(collected.merged(),
                               key=lambda r: r.created_at)))]),
            summary_every=0)
        engine.run()
        state = engine.state_dict()
        json_path = save_checkpoint(tmp_path / "ck.json", state)
        bin_path = save_checkpoint(tmp_path / "ck.bin", state,
                                   fmt="binary")
        raw = bin_path.read_bytes()
        assert raw.startswith(OBJECT_MAGIC)
        assert bin_path.stat().st_size < json_path.stat().st_size
        assert load_checkpoint(bin_path) == load_checkpoint(json_path)

    def test_binary_detects_corruption(self, tmp_path):
        from repro.api.store import CorruptObjectError
        state = self._engine_state()
        path = save_checkpoint(tmp_path / "ck.bin", state, fmt="binary")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptObjectError):
            load_checkpoint(path)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint format"):
            save_checkpoint(tmp_path / "ck", {"records_seen": 0},
                            fmt="npz")

    def test_binary_rejects_non_finite_like_json(self, tmp_path):
        state = {"records_seen": 1, "by_source": {}, "stream_time": 0.0,
                 "cascades": {"events": {"u": [[float("nan"), "Twitter"]]},
                              "categories": {"u": "alternative"}}}
        for fmt in ("json", "binary"):
            with pytest.raises(ValueError):
                save_checkpoint(tmp_path / f"ck.{fmt}", state, fmt=fmt)
            # the failed write never leaves a temp file behind
            assert list(tmp_path.iterdir()) == []

    def test_binary_rejects_unknown_version(self, tmp_path, monkeypatch):
        import repro.live.checkpoint as ck
        state = self._engine_state()
        monkeypatch.setattr(ck, "CHECKPOINT_VERSION", 99)
        path = save_checkpoint(tmp_path / "ck.bin", state, fmt="binary")
        monkeypatch.setattr(ck, "CHECKPOINT_VERSION", CHECKPOINT_VERSION)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_engine_checkpoints_binary_and_row_engine_reads_it(
            self, tmp_path):
        records = _stream([(float(i), ("reddit", "politics"),
                            ("nytimes.com", MAIN), i)
                           for i in range(50)])
        path = tmp_path / "ck.bin"
        engine = LiveEngine(
            EventBus([("replay", iter(records))]),
            checkpoint_path=path, checkpoint_every=0, summary_every=0,
            checkpoint_format="binary")
        engine.run()
        engine.checkpoint()
        restored = LiveEngine(summary_every=0)
        restored.restore(path)
        assert restored.state_dict() == engine.state_dict()


# ---------------------------------------------------------------------------
# iter_jsonl batch mode + malformed-family labels
# ---------------------------------------------------------------------------

class TestIterJsonlBatches:
    def _write(self, path, records, extra_lines=()):
        lines = [r.to_json() for r in records] + list(extra_lines)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_batches_flatten_to_rows(self, tmp_path):
        path = tmp_path / "data.jsonl"
        records = [_record(i, float(i)) for i in range(10)]
        self._write(path, records)
        chunks = list(iter_jsonl(path, batch_size=4))
        assert all(isinstance(c, RecordBatch) for c in chunks)
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [r for c in chunks for r in c.iter_records()] \
            == list(iter_jsonl(path))

    def test_batch_mode_skip_labels_by_source_family(self, tmp_path):
        path = tmp_path / "tweets-00017.jsonl"
        records = [_record(i, float(i)) for i in range(5)]
        self._write(path, records, extra_lines=["{broken"])
        counter = get_registry().counter(
            "repro_ingest_malformed_total",
            source="tweets", reason="malformed")
        before = counter.value
        chunks = list(iter_jsonl(path, on_malformed="skip", batch_size=2))
        assert [r for c in chunks for r in c.iter_records()] == records
        assert counter.value == before + 1

    def test_batch_mode_raise_names_line(self, tmp_path):
        from repro.collection.store import MalformedRecordError
        path = tmp_path / "data.jsonl"
        self._write(path, [_record(0, 1.0)], extra_lines=["nope"])
        with pytest.raises(MalformedRecordError, match="data.jsonl:2"):
            list(iter_jsonl(path, batch_size=8))

    def test_batch_size_validated_eagerly(self, tmp_path):
        path = tmp_path / "data.jsonl"
        self._write(path, [_record(0, 1.0)])
        with pytest.raises(ValueError, match="batch_size"):
            iter_jsonl(path, batch_size=0)
        with pytest.raises(ValueError, match="on_malformed"):
            iter_jsonl(path, on_malformed="bogus")

    @pytest.mark.parametrize("name,family", [
        ("tweets-00017", "tweets"),
        ("tweets_2016.12", "tweets"),
        ("reddit", "reddit"),
        ("4chan", "4chan"),          # leading digits are not a shard id
        ("2016", "2016"),            # all digits: keep the stem
    ])
    def test_source_family(self, name, family, tmp_path):
        assert _source_family(tmp_path / f"{name}.jsonl") == family


# ---------------------------------------------------------------------------
# Ready-made batch sources + collectors
# ---------------------------------------------------------------------------

def test_batch_sources_match_row_sources(tmp_path, collected):
    merged = collected.merged()
    rows = [r for _, r in EventBus(
        [("m", iter(sorted(merged, key=lambda r: r.created_at)))]).events()]

    from_memory = [r for b in dataset_batch_source(merged, 256)
                   for r in b.iter_records()]
    assert from_memory == rows

    path = tmp_path / "m.jsonl"
    merged.save_jsonl(path)
    from_disk = [r for b in jsonl_batch_source(path, batch_size=256)
                 for r in b.iter_records()]
    assert sorted(from_disk, key=lambda r: r.created_at) == rows


def test_collectors_stream_batches(small_world):
    from repro.collection import (
        FourchanCrawler,
        RedditDumpReader,
        TwitterStreamCollector,
    )
    for collector, platform in (
            (TwitterStreamCollector(), small_world.twitter),
            (RedditDumpReader(), small_world.reddit),
            (FourchanCrawler(), small_world.fourchan)):
        rows = list(collector.stream(platform))
        batches = list(collector.stream_batches(platform, batch_size=128))
        assert [r for b in batches for r in b.iter_records()] == rows
        assert all(len(b) <= 128 for b in batches)
        times = np.array([r.created_at for r in rows])
        assert (np.diff(times) >= 0).all()
