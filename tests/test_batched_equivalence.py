"""Batched-vs-per-URL corpus equivalence (golden + property form).

The per-URL EM path is the golden reference: ``engine="batched"`` must
reproduce it within floating-point tolerance for every batch size and
worker count (mirroring ``tests/test_parallel_equivalence.py``, which
pins the per-URL path bit-for-bit across ``n_jobs``).  Between batched
runs the bar is higher — cascades never interact inside a batch, so
chunking and fan-out must not change a single bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HAWKES_PROCESSES, HawkesConfig
from repro.core.influence import UrlCascade, fit_corpus
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM

FAST = HawkesConfig(max_lag_bins=60)

PATTERNS = (
    ("Twitter", 0.0), ("Twitter", 90.0), ("/pol/", 200.0),
    ("The_Donald", 420.0), ("politics", 1500.0), ("Twitter", 2400.0),
)


def build_corpus(n_urls, events_per_url, spacing=1e6):
    cascades = []
    for i in range(n_urls):
        t0 = i * spacing
        events = tuple((t0 + offset + 13.0 * i, name)
                       for name, offset in PATTERNS[:events_per_url])
        category = ALT if i % 2 else MAIN
        cascades.append(UrlCascade(f"u{i}", category, events))
    return cascades


def build_mixed_corpus(rng, n_urls):
    """Randomized corpora with the shapes the real selection produces:
    mixed cascade sizes, near-empty cascades, single-process URLs."""
    cascades = []
    for i in range(n_urls):
        t0 = i * 1e6
        if i % 5 == 4:  # single-process URL
            events = tuple((t0 + 60.0 * j, "Twitter") for j in range(3))
        else:
            n = int(rng.integers(1, 12))
            names = rng.choice(HAWKES_PROCESSES, size=n)
            offsets = np.sort(rng.uniform(0, 30_000, size=n))
            events = tuple((t0 + off, str(name))
                           for off, name in zip(offsets, names))
        category = ALT if i % 2 else MAIN
        cascades.append(UrlCascade(f"u{i}", category, events))
    return cascades


def assert_results_close(reference, batched):
    assert reference.processes == batched.processes
    assert len(reference.fits) == len(batched.fits)
    for ref, got in zip(reference.fits, batched.fits):
        assert ref.url == got.url
        assert ref.category == got.category
        assert np.array_equal(ref.event_counts, got.event_counts)
        assert ref.n_bins == got.n_bins
        np.testing.assert_allclose(got.weights, ref.weights,
                                   rtol=5e-3, atol=1e-8)
        np.testing.assert_allclose(got.background, ref.background,
                                   rtol=5e-3, atol=1e-10)
        assert got.log_likelihood == pytest.approx(
            ref.log_likelihood, rel=1e-4)


def assert_results_bit_identical(a, b):
    for fit_a, fit_b in zip(a.fits, b.fits):
        assert fit_a.url == fit_b.url
        assert np.array_equal(fit_a.weights, fit_b.weights)
        assert np.array_equal(fit_a.background, fit_b.background)
        assert fit_a.log_likelihood == fit_b.log_likelihood


class TestGoldenBatchedEquivalence:
    """Fixed corpus, every batch size and fan-out vs the per-URL path."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(11, events_per_url=6)

    @pytest.fixture(scope="class")
    def per_url(self, corpus):
        return fit_corpus(corpus, FAST, method="em")

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 11, 64])
    def test_every_batch_size_matches_per_url(self, corpus, per_url,
                                              chunk_size):
        batched = fit_corpus(corpus, FAST, method="em", engine="batched",
                             chunk_size=chunk_size)
        assert_results_close(per_url, batched)

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_parallel_batched_matches_per_url(self, corpus, per_url,
                                              n_jobs):
        batched = fit_corpus(corpus, FAST, method="em", engine="batched",
                             n_jobs=n_jobs)
        assert_results_close(per_url, batched)

    def test_batched_bit_identical_across_chunking(self, corpus):
        whole = fit_corpus(corpus, FAST, method="em", engine="batched")
        for chunk_size in (1, 3, 7):
            split = fit_corpus(corpus, FAST, method="em",
                               engine="batched", chunk_size=chunk_size)
            assert_results_bit_identical(whole, split)

    def test_batched_bit_identical_across_workers(self, corpus):
        serial = fit_corpus(corpus, FAST, method="em", engine="batched")
        fanned = fit_corpus(corpus, FAST, method="em", engine="batched",
                            n_jobs=2, chunk_size=3)
        assert_results_bit_identical(serial, fanned)

    def test_progress_reaches_total(self, corpus):
        calls = []
        fit_corpus(corpus, FAST, method="em", engine="batched",
                   chunk_size=4,
                   progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (len(corpus), len(corpus))
        assert all(total == len(corpus) for _, total in calls)

    def test_per_url_engine_is_default_and_unchanged(self, corpus, per_url):
        explicit = fit_corpus(corpus, FAST, method="em",
                              engine="per-url")
        assert_results_bit_identical(per_url, explicit)


class TestEngineValidation:
    def test_batched_requires_em(self):
        with pytest.raises(ValueError, match="method='em'"):
            fit_corpus(build_corpus(2, 4), FAST, method="gibbs",
                       engine="batched")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            fit_corpus(build_corpus(2, 4), FAST, method="em",
                       engine="vectorized")

    def test_empty_corpus(self):
        result = fit_corpus([], FAST, method="em", engine="batched")
        assert result.fits == []


@settings(max_examples=6, deadline=None)
@given(
    n_urls=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    chunk_size=st.sampled_from([1, 2, 3, 1024]),
)
def test_property_batched_equals_per_url(n_urls, seed, chunk_size):
    """Any corpus shape, any batch size: batched tracks the golden path."""
    corpus = build_mixed_corpus(np.random.default_rng(seed), n_urls)
    per_url = fit_corpus(corpus, FAST, method="em")
    batched = fit_corpus(corpus, FAST, method="em", engine="batched",
                         chunk_size=chunk_size)
    assert_results_close(per_url, batched)
