"""Tests for bot detection and the bot-removal counterfactual."""

import numpy as np
import pytest

from repro.analysis.bots import (
    UserFeatures,
    bot_score,
    detect_bots,
    evaluate_detection,
    extract_user_features,
)
from repro.collection.store import Dataset, DatasetRecord, UrlOccurrence
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


def rec(author, t, url="http://breitbart.com/a", category=ALT,
        post_id=None):
    return DatasetRecord(
        post_id=post_id or f"{author}-{t}", platform="twitter",
        community="Twitter", author_id=author, created_at=float(t),
        urls=(UrlOccurrence(url, "breitbart.com", category),))


def bot_like_dataset():
    """One mechanical alt-only account plus one casual human."""
    records = []
    # bot: every 600s exactly, same URL, alt only, 50 posts
    for i in range(50):
        records.append(rec("bot1", 1000 + i * 600))
    # human: irregular, mixed, unique URLs
    human_times = [5000, 90000, 400000, 900000]
    for i, t in enumerate(human_times):
        category = MAIN if i % 2 else ALT
        records.append(rec("human1", t,
                           url=f"http://cnn.com/{i}", category=category))
    return Dataset(records)


class TestFeatureExtraction:
    def test_features_per_author(self):
        features = {f.author_id: f
                    for f in extract_user_features(bot_like_dataset())}
        assert set(features) == {"bot1", "human1"}
        bot = features["bot1"]
        human = features["human1"]
        assert bot.n_posts == 50
        assert bot.alternative_fraction == 1.0
        assert bot.gap_cv < 0.01          # metronome posting
        assert bot.unique_url_fraction < 0.1
        assert human.gap_cv > 0.2
        assert 0 < human.alternative_fraction < 1

    def test_posts_per_day(self):
        ds = Dataset([rec("u", 0), rec("u", 86400)])
        features = extract_user_features(ds)[0]
        assert features.posts_per_day == pytest.approx(2.0)

    def test_anonymous_ignored(self):
        ds = Dataset([DatasetRecord(
            post_id="x", platform="4chan", community="/pol/",
            author_id=None, created_at=0.0, urls=())])
        assert extract_user_features(ds) == []

    def test_single_post_user(self):
        ds = Dataset([rec("u", 100)])
        features = extract_user_features(ds)[0]
        assert features.n_posts == 1
        assert features.gap_cv == 1.0


class TestScoring:
    def test_bot_scores_higher_than_human(self):
        features = {f.author_id: f
                    for f in extract_user_features(bot_like_dataset())}
        assert bot_score(features["bot1"]) > bot_score(features["human1"])

    def test_score_bounded(self):
        extreme = UserFeatures(
            author_id="x", n_posts=10_000, posts_per_day=1e6,
            alternative_fraction=1.0, retweet_fraction=1.0,
            gap_cv=0.0, unique_url_fraction=0.0)
        assert bot_score(extreme) == 1.0
        mild = UserFeatures(
            author_id="y", n_posts=1, posts_per_day=0.01,
            alternative_fraction=0.0, retweet_fraction=0.0,
            gap_cv=2.0, unique_url_fraction=1.0)
        assert 0.0 <= bot_score(mild) < 0.2


class TestDetection:
    def test_detects_the_bot(self):
        result = detect_bots(bot_like_dataset(), threshold=0.5)
        assert "bot1" in result.detected
        assert "human1" not in result.detected

    def test_min_posts_guard(self):
        ds = Dataset([rec("tiny", 0), rec("tiny", 600)])
        result = detect_bots(ds, threshold=0.0, min_posts=3)
        assert "tiny" not in result.detected

    def test_filter_dataset(self):
        ds = bot_like_dataset()
        result = detect_bots(ds)
        filtered = result.filter_dataset(ds)
        assert len(filtered) == 4  # only the human's posts remain
        assert all(r.author_id != "bot1" for r in filtered)


class TestEvaluation:
    def test_perfect_detection(self):
        ds = bot_like_dataset()
        result = detect_bots(ds)
        quality = evaluate_detection(result, true_bots={"bot1"},
                                     all_authors={"bot1", "human1"})
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_miss_counts_as_false_negative(self):
        ds = bot_like_dataset()
        result = detect_bots(ds, threshold=1.1)  # nothing detected
        quality = evaluate_detection(result, true_bots={"bot1"},
                                     all_authors={"bot1", "human1"})
        assert quality.recall == 0.0
        assert quality.f1 == 0.0


class TestOnSyntheticWorld:
    def test_detection_beats_chance(self, collected):
        """On the session world, detected accounts should be enriched
        in true bots relative to the base rate."""
        world = collected.world
        truth = {uid for uid, u in world.twitter.users.items() if u.is_bot}
        authors = {r.author_id for r in collected.twitter
                   if r.author_id is not None}
        if not (truth & authors):
            pytest.skip("no bot posted in the small world sample")
        result = detect_bots(collected.twitter, threshold=0.5)
        quality = evaluate_detection(result, truth, authors)
        base_rate = len(truth & authors) / len(authors)
        if result.detected:
            assert quality.precision > base_rate
