"""Tests for the 4chan platform simulator (bump order, ephemerality)."""

import pytest

from repro.platforms.fourchan import (
    ARCHIVE_RETENTION,
    FourchanError,
    FourchanPlatform,
)


@pytest.fixture()
def chan():
    platform = FourchanPlatform()
    platform.create_board("pol", thread_capacity=3, bump_limit=5)
    return platform


class TestBoards:
    def test_create(self, chan):
        assert "pol" in chan.boards

    def test_duplicate_rejected(self, chan):
        with pytest.raises(FourchanError):
            chan.create_board("pol")

    def test_slashes_stripped(self, chan):
        board = chan.create_board("/sp/")
        assert board.name == "sp"


class TestThreads:
    def test_create_thread_op_has_image(self, chan):
        thread = chan.create_thread("pol", "OP text", 100)
        assert thread.op.has_image
        assert thread.op.text == "OP text"
        assert thread.reply_count == 0
        assert thread.is_live

    def test_post_numbers_sequential_per_board(self, chan):
        t1 = chan.create_thread("pol", "a", 0)
        t2 = chan.create_thread("pol", "b", 1)
        assert t2.op.post_number == t1.op.post_number + 1

    def test_unknown_board_rejected(self, chan):
        with pytest.raises(FourchanError):
            chan.create_thread("x", "a", 0)

    def test_anonymous_posts(self, chan):
        thread = chan.create_thread("pol", "a", 0)
        post = thread.op.to_post()
        assert post.author_id is None
        assert post.community == "/pol/"


class TestReplies:
    def test_reply_bumps(self, chan):
        t1 = chan.create_thread("pol", "a", 0)
        t2 = chan.create_thread("pol", "b", 10)
        chan.reply(t1.thread_id, "bump", 20)
        catalog = chan.catalog("pol")
        assert catalog[0] is t1

    def test_sage_does_not_bump(self, chan):
        t1 = chan.create_thread("pol", "a", 0)
        t2 = chan.create_thread("pol", "b", 10)
        chan.reply(t1.thread_id, "sage", 20, sage=True)
        assert chan.catalog("pol")[0] is t2

    def test_bump_limit(self, chan):
        t1 = chan.create_thread("pol", "a", 0)
        t2 = chan.create_thread("pol", "b", 1)
        for i in range(5):  # reach the bump limit on t1
            chan.reply(t1.thread_id, f"r{i}", 10 + i)
        assert chan.catalog("pol")[0] is t1
        chan.reply(t2.thread_id, "bump", 100)
        chan.reply(t1.thread_id, "past limit", 200)  # 6th reply: no bump
        assert chan.catalog("pol")[0] is t2

    def test_quotes_recorded(self, chan):
        thread = chan.create_thread("pol", "a", 0)
        post = chan.reply(thread.thread_id, ">>1", 1,
                          quotes=(thread.op.post_number,))
        assert post.quotes == (thread.op.post_number,)

    def test_reply_to_unknown_thread(self, chan):
        with pytest.raises(FourchanError):
            chan.reply(999, "x", 0)


class TestEphemerality:
    def test_capacity_purges_lowest_bumped(self, chan):
        threads = [chan.create_thread("pol", f"t{i}", i) for i in range(3)]
        chan.create_thread("pol", "t3", 10)  # exceeds capacity of 3
        assert threads[0].purged_at == 10
        assert all(t.is_live for t in threads[1:])

    def test_bumped_thread_survives_purge(self, chan):
        threads = [chan.create_thread("pol", f"t{i}", i) for i in range(3)]
        chan.reply(threads[0].thread_id, "bump", 5)
        chan.create_thread("pol", "t3", 10)
        assert threads[0].is_live
        assert threads[1].purged_at == 10

    def test_cannot_reply_to_purged(self, chan):
        threads = [chan.create_thread("pol", f"t{i}", i) for i in range(3)]
        chan.create_thread("pol", "t3", 10)
        with pytest.raises(FourchanError):
            chan.reply(threads[0].thread_id, "late", 20)

    def test_expire_archives_after_seven_days(self, chan):
        threads = [chan.create_thread("pol", f"t{i}", i) for i in range(3)]
        chan.create_thread("pol", "t3", 100)
        purged = threads[0]
        deleted = chan.expire_archives(100 + ARCHIVE_RETENTION - 1)
        assert deleted == 0
        deleted = chan.expire_archives(100 + ARCHIVE_RETENTION)
        assert deleted == 1
        assert purged.deleted

    def test_visible_includes_archived_not_deleted(self, chan):
        threads = [chan.create_thread("pol", f"t{i}", i) for i in range(3)]
        chan.create_thread("pol", "t3", 100)
        visible = chan.visible_threads("pol")
        assert threads[0] in visible  # archived but not yet deleted
        chan.expire_archives(100 + ARCHIVE_RETENTION)
        visible = chan.visible_threads("pol")
        assert threads[0] not in visible

    def test_catalog_excludes_purged(self, chan):
        threads = [chan.create_thread("pol", f"t{i}", i) for i in range(3)]
        chan.create_thread("pol", "t3", 100)
        catalog = chan.catalog("pol")
        assert threads[0] not in catalog
        assert len(catalog) == 3

    def test_bump_position(self, chan):
        t1 = chan.create_thread("pol", "a", 0)
        t2 = chan.create_thread("pol", "b", 10)
        assert chan.bump_position(t2.thread_id) == 0
        assert chan.bump_position(t1.thread_id) == 1
        chan.reply(t1.thread_id, "bump", 20)
        assert chan.bump_position(t1.thread_id) == 0

    def test_bump_position_of_purged_is_none(self, chan):
        threads = [chan.create_thread("pol", f"t{i}", i) for i in range(4)]
        assert chan.bump_position(threads[0].thread_id) is None


class TestAccounting:
    def test_total_posts(self, chan):
        thread = chan.create_thread("pol", "a", 0)
        chan.reply(thread.thread_id, "r", 1)
        chan.record_ambient_posts(50)
        assert chan.total_posts == 52
