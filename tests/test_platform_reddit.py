"""Tests for the Reddit platform simulator."""

import pytest

from repro.platforms.reddit import RedditError, RedditPlatform


@pytest.fixture()
def reddit():
    platform = RedditPlatform()
    platform.create_subreddit("politics", created_at=0)
    return platform


class TestSubreddits:
    def test_create(self, reddit):
        sub = reddit.create_subreddit("news", created_at=5)
        assert reddit.subreddits["news"] is sub

    def test_duplicate_rejected(self, reddit):
        with pytest.raises(RedditError):
            reddit.create_subreddit("politics")

    def test_ensure_idempotent(self, reddit):
        a = reddit.ensure_subreddit("politics")
        b = reddit.ensure_subreddit("politics")
        assert a is b

    def test_automated_flag(self, reddit):
        sub = reddit.create_subreddit("AutoNewspaper", is_automated=True)
        assert sub.is_automated


class TestPosts:
    def test_submit(self, reddit):
        post = reddit.submit_post("politics", "alice", "Title", 100,
                                  body="http://cnn.com/a")
        assert post.subreddit == "politics"
        assert post.score == 1  # self-upvote
        assert post.post_id in reddit.posts

    def test_unknown_subreddit_rejected(self, reddit):
        with pytest.raises(RedditError):
            reddit.submit_post("nope", "alice", "T", 0)

    def test_to_post_includes_title_and_body(self, reddit):
        post = reddit.submit_post("politics", "a", "Title", 3, body="B")
        converted = post.to_post()
        assert "Title" in converted.text
        assert "B" in converted.text
        assert converted.platform == "reddit"
        assert converted.community == "politics"


class TestComments:
    def test_comment_on_post(self, reddit):
        post = reddit.submit_post("politics", "a", "T", 0)
        comment = reddit.submit_comment(post.post_id, "b", "hi", 5)
        assert comment.post_id == post.post_id
        assert comment.parent_id == post.post_id
        assert comment.subreddit == "politics"

    def test_nested_comment(self, reddit):
        post = reddit.submit_post("politics", "a", "T", 0)
        c1 = reddit.submit_comment(post.post_id, "b", "hi", 5)
        c2 = reddit.submit_comment(c1.comment_id, "c", "reply", 6)
        assert c2.post_id == post.post_id
        assert c2.parent_id == c1.comment_id

    def test_unknown_parent_rejected(self, reddit):
        with pytest.raises(RedditError):
            reddit.submit_comment("ghost", "a", "x", 0)

    def test_comment_tree(self, reddit):
        post = reddit.submit_post("politics", "a", "T", 0)
        c1 = reddit.submit_comment(post.post_id, "b", "1", 1)
        c2 = reddit.submit_comment(c1.comment_id, "c", "2", 2)
        tree = reddit.comment_tree(post.post_id)
        assert [c.comment_id for c in tree[post.post_id]] == [c1.comment_id]
        assert [c.comment_id for c in tree[c1.comment_id]] == [c2.comment_id]


class TestVoting:
    def test_upvote_post(self, reddit):
        post = reddit.submit_post("politics", "a", "T", 0)
        reddit.vote(post.post_id, 1)
        assert post.score == 2

    def test_downvote_comment(self, reddit):
        post = reddit.submit_post("politics", "a", "T", 0)
        comment = reddit.submit_comment(post.post_id, "b", "x", 1)
        reddit.vote(comment.comment_id, -1)
        assert comment.score == 0

    def test_invalid_direction(self, reddit):
        post = reddit.submit_post("politics", "a", "T", 0)
        with pytest.raises(RedditError):
            reddit.vote(post.post_id, 2)

    def test_unknown_item(self, reddit):
        with pytest.raises(RedditError):
            reddit.vote("ghost", 1)


class TestHotRanking:
    def test_newer_beats_older_at_equal_score(self, reddit):
        old = reddit.submit_post("politics", "a", "old", 1_400_000_000)
        new = reddit.submit_post("politics", "a", "new", 1_480_000_000)
        ranked = reddit.hot_posts("politics")
        assert ranked[0] is new
        assert ranked[1] is old

    def test_many_votes_can_beat_recency(self, reddit):
        old = reddit.submit_post("politics", "a", "old", 1_479_990_000)
        new = reddit.submit_post("politics", "a", "new", 1_480_000_000)
        # ~3 hours newer is worth 10^(10000/45000) ~ small; give old 10 votes
        for _ in range(100):
            reddit.vote(old.post_id, 1)
        ranked = reddit.hot_posts("politics")
        assert ranked[0] is old

    def test_limit(self, reddit):
        for i in range(30):
            reddit.submit_post("politics", "a", f"t{i}", i)
        assert len(reddit.hot_posts("politics", limit=10)) == 10

    def test_unknown_subreddit(self, reddit):
        with pytest.raises(RedditError):
            reddit.hot_posts("nope")


class TestAccounting:
    def test_total_posts_counts_posts_and_comments(self, reddit):
        post = reddit.submit_post("politics", "a", "T", 0)
        reddit.submit_comment(post.post_id, "b", "c", 1)
        reddit.record_ambient_posts(100)
        assert reddit.total_posts == 102
