"""Tests for the study report, graph exports, and anonymization."""

import networkx as nx
import pytest

from repro.analysis import graphs
from repro.collection.anonymize import (
    AnonymizationKey,
    anonymize_dataset,
    anonymize_record,
)
from repro.collection.store import Dataset, DatasetRecord, UrlOccurrence
from repro.config import PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER
from repro.news.domains import NewsCategory
from repro.reporting.study import generate_study_report, write_study_report

PLATFORMS = (PLATFORM_POL, PLATFORM_REDDIT, PLATFORM_TWITTER)


class TestStudyReport:
    @pytest.fixture(scope="class")
    def report(self, collected):
        return generate_study_report(collected, include_influence=True,
                                     max_urls=10, seed=1)

    def test_contains_all_sections(self, report):
        for heading in ("Dataset overview", "Top domains",
                        "Per-user behavior", "Temporal dynamics",
                        "Appearance sequences", "Influence estimation"):
            assert heading in report

    def test_mentions_key_entities(self, report):
        assert "breitbart.com" in report
        assert "Twitter" in report
        assert "W(Twitter→Twitter)" in report

    def test_write_to_disk(self, collected, tmp_path):
        path = write_study_report(collected, tmp_path / "report.md",
                                  include_influence=False)
        content = path.read_text()
        assert content.startswith("# Web Centipede study report")
        assert "Influence estimation" not in content

    def test_skip_influence_flag(self, collected):
        report = generate_study_report(collected,
                                       include_influence=False)
        assert "Influence estimation" not in report


class TestGraphExports:
    @pytest.fixture(scope="class")
    def graph(self, collected):
        return graphs.build_ecosystem_graph(
            collected.sequence_slices(), NewsCategory.MAINSTREAM,
            collected.url_domains())

    def test_graphml_round_trip(self, graph, tmp_path):
        path = tmp_path / "eco.graphml"
        graphs.export_graphml(graph, path)
        loaded = nx.read_graphml(path)
        assert loaded.number_of_nodes() == graph.number_of_nodes()
        assert loaded.number_of_edges() == graph.number_of_edges()

    def test_platform_centrality(self, graph):
        summary = graphs.platform_centrality(graph, PLATFORMS)
        assert set(summary) <= set(PLATFORMS)
        for stats in summary.values():
            assert stats["in_strength"] >= 0
            assert 0 <= stats["pagerank"] <= 1
        # platforms receive URLs from domains, so in-strength dominates
        total_in = sum(s["in_strength"] for s in summary.values())
        total_out = sum(s["out_strength"] for s in summary.values())
        assert total_in >= total_out

    def test_centrality_missing_platform(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", weight=1)
        summary = graphs.platform_centrality(graph, ("Twitter",))
        assert summary == {}


def record(author, post_id="p1"):
    return DatasetRecord(
        post_id=post_id, platform="twitter", community="Twitter",
        author_id=author, created_at=1.0,
        urls=(UrlOccurrence("http://rt.com/a", "rt.com",
                            NewsCategory.ALTERNATIVE),))


class TestAnonymization:
    def test_pseudonym_stable_under_key(self):
        key = AnonymizationKey.from_passphrase("s3cret")
        assert key.pseudonym("alice") == key.pseudonym("alice")
        assert key.pseudonym("alice") != key.pseudonym("bob")

    def test_different_keys_unlinkable(self):
        a = AnonymizationKey.from_passphrase("one")
        b = AnonymizationKey.from_passphrase("two")
        assert a.pseudonym("alice") != b.pseudonym("alice")

    def test_anonymous_record_unchanged(self):
        anonymous = DatasetRecord(
            post_id="x", platform="4chan", community="/pol/",
            author_id=None, created_at=0.0, urls=())
        key = AnonymizationKey.generate()
        assert anonymize_record(anonymous, key) is anonymous

    def test_dataset_groupings_preserved(self):
        dataset = Dataset([record("alice", "p1"), record("alice", "p2"),
                           record("bob", "p3")])
        anonymized, key = anonymize_dataset(dataset)
        groups = anonymized.by_author()
        assert len(groups) == 2
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [1, 2]
        # original ids no longer present
        assert "alice" not in groups
        # but recomputable with the key
        assert key.pseudonym("alice") in groups

    def test_everything_else_untouched(self):
        dataset = Dataset([record("alice")])
        anonymized, _ = anonymize_dataset(dataset)
        original = dataset.records[0]
        cloned = anonymized.records[0]
        assert cloned.post_id == original.post_id
        assert cloned.urls == original.urls
        assert cloned.created_at == original.created_at

    def test_generated_keys_differ(self):
        assert (AnonymizationKey.generate().key
                != AnonymizationKey.generate().key)
