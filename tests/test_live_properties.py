"""Property-based equivalence: incremental aggregators vs batch scans.

Hypothesis drives random record streams across all three platforms
(including communities outside the studied slices); on every stream the
live aggregators must produce exactly the batch answers, and a
checkpoint → restore → continue run must be indistinguishable from an
uninterrupted one.
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import characterization as chz
from repro.analysis import sequences
from repro.collection.store import Dataset, DatasetRecord, UrlOccurrence
from repro.config import (
    PLATFORM_POL,
    PLATFORM_REDDIT,
    PLATFORM_TWITTER,
    SEQUENCE_PLATFORMS,
)
from repro.core.influence import UrlCascade
from repro.live import LiveEngine
from repro.news.domains import NewsCategory
from repro.timeutil import SECONDS_PER_DAY

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM

#: (platform, community) mix: studied slices plus out-of-slice venues.
_venues = st.sampled_from([
    ("twitter", "Twitter"),
    ("reddit", "politics"),
    ("reddit", "The_Donald"),
    ("reddit", "sub_0001"),          # outside the six subreddits
    ("4chan", "/pol/"),
    ("4chan", "/sp/"),               # outside /pol/
])
_domains = st.sampled_from([("breitbart.com", ALT), ("rt.com", ALT),
                            ("nytimes.com", MAIN)])
_times = st.floats(0, 10 * SECONDS_PER_DAY, allow_nan=False)
_events = st.lists(
    st.tuples(_times, _venues, _domains, st.integers(0, 5)), max_size=50)


def _records(events):
    records = []
    for i, (t, (platform, community), (domain, category), path) in enumerate(
            sorted(events, key=lambda e: e[0])):
        records.append(DatasetRecord(
            post_id=f"p{i}", platform=platform, community=community,
            author_id=f"u{i % 3}", created_at=t,
            urls=(UrlOccurrence(f"http://{domain}/{path}", domain,
                                category),)))
    return records


def _batch_slices(records):
    """Slice the way CollectedData does: per platform, then refine."""
    twitter = Dataset(r for r in records if r.platform == "twitter")
    reddit = Dataset(r for r in records if r.platform == "reddit")
    fourchan = Dataset(r for r in records if r.platform == "4chan")
    return {
        PLATFORM_POL: chz.slice_board(fourchan),
        PLATFORM_REDDIT: chz.slice_six_subreddits(reddit),
        PLATFORM_TWITTER: twitter,
    }


def _drain(engine, records):
    for record in records:
        engine.process(record)
    return engine


def _assert_views_match_batch(engine, records):
    slices = _batch_slices(records)
    for category in NewsCategory:
        assert (engine.domains.platform_fractions(category)
                == chz.domain_platform_fractions(slices, category))
        assert (engine.first_hops.first_hop(category)
                == sequences.first_hop_distribution(slices, category))
        assert (engine.first_hops.triplets(category)
                == sequences.triplet_distribution(slices, category))
        for name, dataset in slices.items():
            assert (engine.domains.top_domains(name, category)
                    == chz.top_domains(dataset, category))
            batch_cdf = chz.url_appearance_cdf(dataset, category)
            live_cdf = engine.appearances.appearance_cdf(name, category)
            if batch_cdf is None:
                assert live_cdf is None
            else:
                assert np.array_equal(batch_cdf.values, live_cdf.values)


@given(_events)
@settings(max_examples=30, deadline=None)
def test_incremental_equals_batch(events):
    records = _records(events)
    engine = _drain(LiveEngine(summary_every=0), records)
    _assert_views_match_batch(engine, records)


@given(_events)
@settings(max_examples=30, deadline=None)
def test_cascade_assembly_equals_batch(events):
    records = _records(events)
    engine = _drain(LiveEngine(summary_every=0), records)
    merged = Dataset(records)
    categories = merged.url_categories()
    allowed = engine.cascades.processes
    batch = {}
    for url, times in merged.url_timestamps().items():
        kept = tuple((t, c) for t, c in times if c in allowed)
        if kept:
            batch[url] = UrlCascade(url=url, category=categories[url],
                                    events=kept)
    assert {c.url: c for c in engine.cascades.cascades()} == batch


@given(_events, st.integers(0, 49))
@settings(max_examples=30, deadline=None)
def test_checkpoint_restore_continue_equals_uninterrupted(events, cut):
    records = _records(events)
    cut = min(cut, len(records))

    interrupted = _drain(LiveEngine(summary_every=0), records[:cut])
    # serialize through actual JSON: state must survive the wire format
    state = json.loads(json.dumps(interrupted.state_dict()))
    restored = LiveEngine(summary_every=0)
    restored.load_state(state)
    _drain(restored, records[cut:])

    straight = _drain(LiveEngine(summary_every=0), records)
    assert restored.records_seen == straight.records_seen
    assert restored.state_dict() == straight.state_dict()
    _assert_views_match_batch(restored, records)


@given(_events, st.integers(1, 49))
@settings(max_examples=20, deadline=None)
def test_state_dict_is_a_snapshot_not_a_view(events, cut):
    """Processing more records must not mutate an earlier state_dict."""
    records = _records(events)
    cut = min(cut, len(records))
    engine = _drain(LiveEngine(summary_every=0), records[:cut])
    snapshot = engine.state_dict()
    frozen = json.dumps(snapshot, sort_keys=True)
    _drain(engine, records[cut:])
    assert json.dumps(snapshot, sort_keys=True) == frozen


def test_engine_state_roundtrips_through_checkpoint_file(tmp_path,
                                                         collected):
    from repro.live import EventBus, dataset_source

    path = tmp_path / "engine.json"
    engine = LiveEngine(
        EventBus([("replay", dataset_source(collected.merged()))]),
        checkpoint_path=path, checkpoint_every=0, summary_every=0)
    engine.run(limit=500)
    engine.checkpoint()

    restored = LiveEngine(summary_every=0)
    restored.restore(path)
    assert restored.state_dict() == engine.state_dict()
    assert restored.records_seen == 500
    # restored cascades keep working incrementally
    remaining = sorted(collected.merged(),
                       key=lambda r: r.created_at)[500:600]
    for record in remaining:
        restored.process(record)
    assert restored.records_seen == 600


def test_checkpoint_rejects_unknown_version(tmp_path):
    from repro.live import load_checkpoint

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "state": {}}),
                    encoding="utf-8")
    try:
        load_checkpoint(path)
    except ValueError as error:
        assert "version" in str(error)
    else:
        raise AssertionError("expected ValueError")
