"""Tests for synthetic user populations."""

import pytest

from repro.synthesis.users import (
    PopulationShape,
    REDDIT_SHAPE,
    TWITTER_SHAPE,
    UserArchetype,
    UserPopulation,
)


class TestShape:
    def test_defaults_follow_fig3(self):
        shape = TWITTER_SHAPE
        assert shape.mainstream_only == pytest.approx(0.80)
        assert shape.alternative_only == pytest.approx(0.13)

    def test_reddit_fewer_alt_only(self):
        assert REDDIT_SHAPE.alternative_only < TWITTER_SHAPE.alternative_only

    def test_overfull_shape_rejected(self):
        with pytest.raises(ValueError):
            PopulationShape(mainstream_only=0.8, alternative_only=0.3)


class TestPopulation:
    @pytest.fixture(scope="class")
    def population(self):
        return UserPopulation("u", 3000, TWITTER_SHAPE, seed=42)

    def test_size(self, population):
        assert len(population.profiles) == 3000

    def test_archetype_mix(self, population):
        counts = population.archetype_counts()
        total = sum(counts.values())
        main_frac = counts[UserArchetype.MAINSTREAM_ONLY] / total
        alt_frac = counts[UserArchetype.ALTERNATIVE_ONLY] / total
        assert main_frac == pytest.approx(0.80, abs=0.03)
        assert alt_frac == pytest.approx(0.13, abs=0.02)

    def test_bots_mostly_in_alt_only(self, population):
        for bot in population.bots:
            assert bot.archetype == UserArchetype.ALTERNATIVE_ONLY

    def test_preferences_match_archetypes(self, population):
        for profile in population.profiles:
            if profile.archetype == UserArchetype.MAINSTREAM_ONLY:
                assert profile.alt_preference == 0.0
            elif profile.archetype == UserArchetype.ALTERNATIVE_ONLY:
                assert profile.alt_preference == 1.0
            else:
                assert 0.0 <= profile.alt_preference <= 1.0

    def test_mainstream_author_never_alt_only(self, population):
        for _ in range(300):
            author = population.sample_author(alternative=False)
            assert author.archetype != UserArchetype.ALTERNATIVE_ONLY

    def test_alternative_author_never_main_only(self, population):
        for _ in range(300):
            author = population.sample_author(alternative=True)
            assert author.archetype != UserArchetype.MAINSTREAM_ONLY

    def test_deterministic(self):
        a = UserPopulation("u", 50, seed=1)
        b = UserPopulation("u", 50, seed=1)
        assert [p.archetype for p in a.profiles] == \
            [p.archetype for p in b.profiles]

    def test_unique_names(self, population):
        names = [p.name for p in population.profiles]
        assert len(names) == len(set(names))

    def test_too_small_population_rejected(self):
        with pytest.raises(ValueError):
            UserPopulation("u", 2)

    def test_activity_positive_heavy_tail(self, population):
        activities = [p.activity for p in population.profiles]
        assert min(activities) >= 1.0
        assert max(activities) > 10  # Pareto tail exists
