"""Tests for smaller internals: id allocation, flattened parent arrays,
pipeline slices, and dataset workflows."""

import numpy as np
import pytest

from repro.core.events import DiscreteEvents
from repro.core.hawkes.basis import DirichletLagBasis
from repro.core.hawkes.inference import _ParentStructure
from repro.platforms.base import IdAllocator
from repro.news.domains import NewsCategory


class TestIdAllocator:
    def test_monotonic_per_prefix(self):
        ids = IdAllocator()
        assert ids.next_id("t") == "t1"
        assert ids.next_id("t") == "t2"

    def test_independent_namespaces(self):
        ids = IdAllocator()
        ids.next_id("a")
        assert ids.next_id("b") == "b1"


class TestFlattenedParentStructure:
    @pytest.fixture()
    def structure(self):
        events = DiscreteEvents.from_pairs(
            [(0, 0), (2, 1), (3, 0), (50, 1)], n_bins=100, n_processes=2)
        return _ParentStructure(events, DirichletLagBasis(10))

    def test_offsets_partition_candidates(self, structure):
        sizes = [len(s) for s in structure.cand_src]
        assert list(np.diff(structure.offsets)) == sizes
        assert structure.offsets[-1] == len(structure.flat_src)

    def test_flat_dst_alignment(self, structure):
        events = structure.events
        for m in range(len(events)):
            lo, hi = structure.offsets[m], structure.offsets[m + 1]
            assert np.all(structure.flat_dst[lo:hi]
                          == events.processes[m])

    def test_vectorized_matches_per_event(self, structure):
        rng = np.random.default_rng(0)
        k = 2
        weights = rng.uniform(0.01, 0.5, (k, k))
        lag_pmf = np.tile(rng.dirichlet(np.ones(10)), (k, k, 1))
        flat = structure.all_candidate_values(weights, lag_pmf)
        events = structure.events
        for m in range(len(events)):
            dst = int(events.processes[m])
            src = structure.cand_src[m]
            lag = structure.cand_lag[m]
            cnt = structure.cand_cnt[m]
            vals = cnt * weights[src, dst] * lag_pmf[src, dst, lag - 1]
            lo, hi = structure.offsets[m], structure.offsets[m + 1]
            assert np.allclose(vals, flat[lo:hi])

    def test_empty_events(self):
        events = DiscreteEvents.from_pairs([], n_bins=10, n_processes=2)
        structure = _ParentStructure(events, DirichletLagBasis(5))
        assert len(structure.flat_src) == 0
        vals = structure.all_candidate_values(
            np.ones((2, 2)), np.full((2, 2, 5), 0.2))
        assert len(vals) == 0


class TestPipelineWorkflows:
    def test_save_and_reload_collected(self, collected, tmp_path):
        collected.twitter.save_jsonl(tmp_path / "tw.jsonl")
        from repro.collection.store import Dataset
        loaded = Dataset.load_jsonl(tmp_path / "tw.jsonl")
        assert len(loaded) == len(collected.twitter)
        # groupings survive the round trip
        assert (len(loaded.by_author())
                == len(collected.twitter.by_author()))

    def test_merged_covers_all_platforms(self, collected):
        merged = collected.merged()
        platforms = {r.platform for r in merged}
        assert platforms == {"twitter", "reddit", "4chan"}
        assert len(merged) == (len(collected.twitter)
                               + len(collected.reddit)
                               + len(collected.fourchan))

    def test_url_domains_consistent_with_registry(self, collected,
                                                  registry):
        for url, domain in list(collected.url_domains().items())[:100]:
            entry = registry.lookup(domain)
            assert entry is not None

    def test_influence_cascades_category_consistency(self, cascades):
        for cascade in cascades[:100]:
            assert cascade.category in (NewsCategory.ALTERNATIVE,
                                        NewsCategory.MAINSTREAM)
            times = [t for t, _ in cascade.events]
            assert times == sorted(times)
