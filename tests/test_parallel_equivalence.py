"""Golden equivalence: parallel corpus fits are bit-identical to serial.

The determinism guarantee of :mod:`repro.parallel` is the contract every
caller (ablation sweeps, live refitter, CLI) builds on, so it is
enforced here exactly — ``np.array_equal``, not ``allclose`` — for both
fit methods, worker counts 1/2/4, and adversarial chunk sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HawkesConfig
from repro.core.influence import UrlCascade, fit_corpus
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM

#: Small lag window + few sweeps keep each per-URL fit in the
#: millisecond range; the equivalence property is size-independent.
FAST = HawkesConfig(gibbs_iterations=10, gibbs_burn_in=3, max_lag_bins=60)

#: Event templates with enough structure for non-trivial attributions.
PATTERNS = (
    ("Twitter", 0.0), ("Twitter", 90.0), ("/pol/", 200.0),
    ("The_Donald", 420.0), ("politics", 1500.0), ("Twitter", 2400.0),
)


def build_corpus(n_urls, events_per_url, spacing=1e6):
    cascades = []
    for i in range(n_urls):
        t0 = i * spacing
        events = tuple((t0 + offset + 13.0 * i, name)
                       for name, offset in PATTERNS[:events_per_url])
        category = ALT if i % 2 else MAIN
        cascades.append(UrlCascade(f"u{i}", category, events))
    return cascades


def assert_results_identical(a, b, check_samples):
    assert a.processes == b.processes
    assert len(a.fits) == len(b.fits)
    for fit_a, fit_b in zip(a.fits, b.fits):
        assert fit_a.url == fit_b.url
        assert fit_a.category == fit_b.category
        assert np.array_equal(fit_a.weights, fit_b.weights)
        assert np.array_equal(fit_a.background, fit_b.background)
        assert np.array_equal(fit_a.event_counts, fit_b.event_counts)
        assert fit_a.n_bins == fit_b.n_bins
        assert fit_a.log_likelihood == fit_b.log_likelihood
        if check_samples:
            assert fit_a.weight_samples is not None
            assert fit_a.weight_samples.shape[0] > 0
            assert np.array_equal(fit_a.weight_samples,
                                  fit_b.weight_samples)


class TestGoldenEquivalence:
    """Fixed-corpus exact checks for every (method, n_jobs, chunking)."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(9, events_per_url=6)

    @pytest.fixture(scope="class")
    def serial(self, corpus):
        return {
            method: fit_corpus(corpus, FAST, method=method,
                               rng=np.random.default_rng(77), n_jobs=1,
                               keep_samples=(method == "gibbs"))
            for method in ("gibbs", "em")
        }

    @pytest.mark.parametrize("method", ["gibbs", "em"])
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_bit_identical_to_serial(self, corpus, serial, method, n_jobs):
        parallel = fit_corpus(corpus, FAST, method=method,
                              rng=np.random.default_rng(77), n_jobs=n_jobs,
                              keep_samples=(method == "gibbs"))
        assert_results_identical(serial[method], parallel,
                                 check_samples=(method == "gibbs"))

    @pytest.mark.parametrize("chunk_size", [1, 2, 5])
    def test_chunk_size_never_matters(self, corpus, serial, chunk_size):
        parallel = fit_corpus(corpus, FAST, method="gibbs",
                              rng=np.random.default_rng(77), n_jobs=2,
                              chunk_size=chunk_size, keep_samples=True)
        assert_results_identical(serial["gibbs"], parallel,
                                 check_samples=True)

    def test_int_seed_equals_generator_seed(self, corpus, serial):
        from_int = fit_corpus(corpus, FAST, method="gibbs", rng=77,
                              n_jobs=2, keep_samples=True)
        assert_results_identical(serial["gibbs"], from_int,
                                 check_samples=True)

    def test_em_never_returns_samples(self, corpus):
        # EM has no posterior draws; keep_samples must not surface
        # fit_em's empty placeholder array as if it were a sample set.
        result = fit_corpus(corpus, FAST, method="em", keep_samples=True)
        assert all(fit.weight_samples is None for fit in result.fits)

    def test_progress_reported_in_parallel(self, corpus):
        calls = []
        fit_corpus(corpus, FAST, method="em", n_jobs=2, chunk_size=2,
                   progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (len(corpus), len(corpus))


@settings(max_examples=6, deadline=None)
@given(
    n_urls=st.integers(min_value=1, max_value=5),
    events_per_url=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    method=st.sampled_from(["gibbs", "em"]),
    n_jobs=st.sampled_from([2, 4]),
)
def test_property_parallel_equals_serial(n_urls, events_per_url, seed,
                                         method, n_jobs):
    """Property form: any corpus, any seed, any fan-out — same bits."""
    corpus = build_corpus(n_urls, events_per_url)
    keep = method == "gibbs"
    serial = fit_corpus(corpus, FAST, method=method,
                        rng=np.random.default_rng(seed), n_jobs=1,
                        keep_samples=keep)
    parallel = fit_corpus(corpus, FAST, method=method,
                          rng=np.random.default_rng(seed), n_jobs=n_jobs,
                          chunk_size=1, keep_samples=keep)
    assert_results_identical(serial, parallel, check_samples=keep)
