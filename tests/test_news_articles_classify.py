"""Tests for article generation and URL classification."""

import pytest

from repro.news.articles import Article, ArticleGenerator
from repro.news.classify import classify_url, extract_news_urls
from repro.news.domains import NewsCategory


class TestArticleGenerator:
    def test_generates_requested_category(self, registry):
        generator = ArticleGenerator(registry, seed=1)
        article = generator.generate(NewsCategory.ALTERNATIVE, 1000)
        assert article.category == NewsCategory.ALTERNATIVE
        assert article.is_alternative

    def test_url_is_canonical_and_classifiable(self, registry):
        generator = ArticleGenerator(registry, seed=2)
        article = generator.generate(NewsCategory.MAINSTREAM, 1000)
        classified = classify_url(article.url, registry)
        assert classified is not None
        assert classified.url == article.url
        assert classified.domain == article.domain

    def test_urls_unique_across_batch(self, registry):
        generator = ArticleGenerator(registry, seed=3)
        articles = generator.generate_batch(
            NewsCategory.MAINSTREAM, list(range(200)))
        urls = {a.url for a in articles}
        assert len(urls) == 200

    def test_deterministic_for_seed(self, registry):
        a = ArticleGenerator(registry, seed=9).generate(
            NewsCategory.ALTERNATIVE, 5)
        b = ArticleGenerator(registry, seed=9).generate(
            NewsCategory.ALTERNATIVE, 5)
        assert a.url == b.url
        assert a.headline == b.headline

    def test_domain_weights_respected(self, registry):
        generator = ArticleGenerator(registry, seed=4)
        weights = {"breitbart.com": 1.0}
        articles = generator.generate_batch(
            NewsCategory.ALTERNATIVE, list(range(50)),
            domain_weights=weights)
        assert {a.domain for a in articles} == {"breitbart.com"}

    def test_explicit_domain(self, registry):
        generator = ArticleGenerator(registry, seed=5)
        domain = registry.lookup("cnn.com")
        article = generator.generate(NewsCategory.MAINSTREAM, 10,
                                     domain=domain)
        assert article.domain == "cnn.com"

    def test_category_domain_mismatch_raises(self, registry):
        generator = ArticleGenerator(registry, seed=6)
        domain = registry.lookup("cnn.com")
        with pytest.raises(ValueError):
            generator.generate(NewsCategory.ALTERNATIVE, 10, domain=domain)

    def test_headline_nonempty(self, registry):
        generator = ArticleGenerator(registry, seed=7)
        article = generator.generate(NewsCategory.MAINSTREAM, 10)
        assert article.headline
        assert article.headline == article.headline.strip()


class TestClassifyUrl:
    def test_mainstream(self, registry):
        result = classify_url("http://www.cnn.com/2016/story", registry)
        assert result is not None
        assert result.category == NewsCategory.MAINSTREAM
        assert not result.is_alternative

    def test_alternative(self, registry):
        result = classify_url("https://infowars.com/x", registry)
        assert result is not None
        assert result.is_alternative

    def test_non_news_is_none(self, registry):
        assert classify_url("http://example.com/a", registry) is None

    def test_result_url_is_canonical(self, registry):
        result = classify_url("https://www.cnn.com/a/", registry)
        assert result.url == "http://cnn.com/a"

    def test_empty_host(self, registry):
        assert classify_url("http:///path-only", registry) is None


class TestExtractNewsUrls:
    def test_filters_non_news(self, registry):
        text = "see http://cnn.com/a and http://example.com/b"
        found = extract_news_urls(text, registry)
        assert [u.domain for u in found] == ["cnn.com"]

    def test_deduplicates_same_canonical_url(self, registry):
        text = "http://cnn.com/a and https://www.cnn.com/a/"
        found = extract_news_urls(text, registry)
        assert len(found) == 1

    def test_keeps_distinct_urls(self, registry):
        text = "http://cnn.com/a http://cnn.com/b http://rt.com/c"
        found = extract_news_urls(text, registry)
        assert len(found) == 3
        categories = {u.category for u in found}
        assert categories == {NewsCategory.MAINSTREAM,
                              NewsCategory.ALTERNATIVE}

    def test_empty_text(self, registry):
        assert extract_news_urls("", registry) == []
