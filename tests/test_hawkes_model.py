"""Tests for the discrete Hawkes model: rates, integrals, likelihood."""

import numpy as np
import pytest

from repro.core.events import DiscreteEvents
from repro.core.hawkes.model import (
    HawkesParams,
    discrete_log_likelihood,
    expected_rate,
    rate_integral,
)


def uniform_impulse(k, max_lag):
    return np.full((k, k, max_lag), 1.0 / max_lag)


def make_params(k=2, max_lag=5, background=None, weights=None):
    background = (np.full(k, 0.01) if background is None
                  else np.asarray(background, dtype=float))
    weights = (np.full((k, k), 0.1) if weights is None
               else np.asarray(weights, dtype=float))
    return HawkesParams(background=background, weights=weights,
                        impulse=uniform_impulse(k, max_lag))


def events_from(pairs, n_bins=50, k=2):
    return DiscreteEvents.from_pairs(pairs, n_bins=n_bins, n_processes=k)


class TestParamsValidation:
    def test_valid(self):
        params = make_params()
        assert params.n_processes == 2
        assert params.max_lag == 5

    def test_negative_background_rejected(self):
        with pytest.raises(ValueError):
            make_params(background=[-0.1, 0.1])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            make_params(weights=[[0.1, -0.1], [0.1, 0.1]])

    def test_unnormalized_impulse_rejected(self):
        with pytest.raises(ValueError):
            HawkesParams(background=np.ones(1), weights=np.ones((1, 1)),
                         impulse=np.full((1, 1, 4), 0.5))

    def test_wrong_weight_shape_rejected(self):
        with pytest.raises(ValueError):
            HawkesParams(background=np.ones(2), weights=np.ones((3, 3)),
                         impulse=uniform_impulse(2, 4))

    def test_spectral_radius(self):
        params = make_params(weights=[[0.5, 0.0], [0.0, 0.25]])
        assert params.spectral_radius() == pytest.approx(0.5)

    def test_branching_kernel_mass(self):
        params = make_params()
        kernel = params.branching_kernel()
        assert np.allclose(kernel.sum(axis=2), params.weights)


class TestExpectedRate:
    def test_background_only_when_no_events(self):
        params = make_params()
        events = events_from([])
        rates = expected_rate(params, events, query_bins=np.array([0, 10]))
        assert np.allclose(rates, 0.01)

    def test_excitation_after_event(self):
        params = make_params(k=1, max_lag=5,
                             background=[0.0], weights=[[1.0]])
        events = events_from([(0, 0)], k=1)
        rates = expected_rate(params, events,
                              query_bins=np.array([1, 3, 5, 6]))
        # uniform impulse over lags 1..5 -> 0.2 per lag inside window
        assert rates[0, 0] == pytest.approx(0.2)
        assert rates[1, 0] == pytest.approx(0.2)
        assert rates[2, 0] == pytest.approx(0.2)
        assert rates[3, 0] == pytest.approx(0.0)  # beyond max lag

    def test_event_does_not_excite_own_bin(self):
        params = make_params(k=1, background=[0.0], weights=[[1.0]])
        events = events_from([(3, 0)], k=1)
        rates = expected_rate(params, events, query_bins=np.array([3]))
        assert rates[0, 0] == pytest.approx(0.0)

    def test_counts_scale_excitation(self):
        params = make_params(k=1, background=[0.0], weights=[[1.0]])
        single = events_from([(0, 0)], k=1)
        double = events_from([(0, 0), (0, 0)], k=1)
        r1 = expected_rate(params, single, query_bins=np.array([2]))
        r2 = expected_rate(params, double, query_bins=np.array([2]))
        assert r2[0, 0] == pytest.approx(2 * r1[0, 0])

    def test_cross_process_excitation(self):
        weights = [[0.0, 0.8], [0.0, 0.0]]
        params = make_params(weights=weights, background=[0.0, 0.0])
        events = events_from([(0, 0)])
        rates = expected_rate(params, events, query_bins=np.array([1]))
        assert rates[0, 1] == pytest.approx(0.8 / 5)
        assert rates[0, 0] == pytest.approx(0.0)

    def test_matches_dense_computation(self, rng):
        k, max_lag, n_bins = 3, 7, 60
        params = HawkesParams(
            background=rng.uniform(0.001, 0.05, k),
            weights=rng.uniform(0, 0.3, (k, k)),
            impulse=np.tile(rng.dirichlet(np.ones(max_lag)), (k, k, 1)),
        )
        pairs = [(int(rng.integers(n_bins)), int(rng.integers(k)))
                 for _ in range(25)]
        events = DiscreteEvents.from_pairs(pairs, n_bins, k)
        dense = events.to_dense()
        kernel = params.branching_kernel()
        query = np.arange(n_bins)
        expected = np.tile(params.background, (n_bins, 1))
        for t in range(n_bins):
            for d in range(1, max_lag + 1):
                if t - d >= 0:
                    expected[t] += dense[t - d] @ kernel[:, :, d - 1]
        got = expected_rate(params, events, query_bins=query)
        assert np.allclose(got, expected)


class TestRateIntegral:
    def test_background_contribution(self):
        params = make_params(background=[0.02, 0.03], weights=np.zeros((2, 2)))
        events = events_from([], n_bins=100)
        integral = rate_integral(params, events)
        assert np.allclose(integral, [2.0, 3.0])

    def test_full_kernel_mass_when_far_from_end(self):
        params = make_params(k=1, background=[0.0], weights=[[0.7]])
        events = events_from([(0, 0)], n_bins=50, k=1)
        integral = rate_integral(params, events)
        assert integral[0] == pytest.approx(0.7)

    def test_truncated_kernel_near_end(self):
        params = make_params(k=1, max_lag=5, background=[0.0],
                             weights=[[1.0]])
        # event 2 bins before the end: only lags 1..2 fit -> 0.4 mass
        events = events_from([(47, 0)], n_bins=50, k=1)
        integral = rate_integral(params, events)
        assert integral[0] == pytest.approx(0.4)

    def test_event_in_last_bin_contributes_nothing(self):
        params = make_params(k=1, background=[0.0], weights=[[1.0]])
        events = events_from([(49, 0)], n_bins=50, k=1)
        assert rate_integral(params, events)[0] == pytest.approx(0.0)

    def test_integral_equals_summed_rates(self, rng):
        k, max_lag, n_bins = 2, 6, 40
        params = HawkesParams(
            background=rng.uniform(0.01, 0.1, k),
            weights=rng.uniform(0, 0.4, (k, k)),
            impulse=np.tile(rng.dirichlet(np.ones(max_lag)), (k, k, 1)),
        )
        pairs = [(int(rng.integers(n_bins)), int(rng.integers(k)))
                 for _ in range(15)]
        events = DiscreteEvents.from_pairs(pairs, n_bins, k)
        rates = expected_rate(params, events, query_bins=np.arange(n_bins))
        assert np.allclose(rate_integral(params, events), rates.sum(axis=0))


class TestLogLikelihood:
    def test_empty_events_is_negative_integral(self):
        params = make_params(background=[0.02, 0.03], weights=np.zeros((2, 2)))
        events = events_from([], n_bins=100)
        assert discrete_log_likelihood(params, events) == pytest.approx(-5.0)

    def test_zero_rate_at_event_is_minus_inf(self):
        params = make_params(k=1, background=[0.0],
                             weights=np.zeros((1, 1)))
        events = events_from([(5, 0)], k=1)
        assert discrete_log_likelihood(params, events) == -np.inf

    def test_matches_poisson_formula(self):
        # Single process, background only: Poisson likelihood per bin.
        lam = 0.05
        params = make_params(k=1, background=[lam], weights=np.zeros((1, 1)))
        events = events_from([(1, 0), (1, 0), (7, 0)], n_bins=10, k=1)
        from scipy.stats import poisson
        expected = (poisson.logpmf(2, lam) + poisson.logpmf(1, lam)
                    + 8 * poisson.logpmf(0, lam))
        assert discrete_log_likelihood(params, events) == pytest.approx(
            expected)

    def test_likelihood_prefers_true_weights(self, rng):
        from repro.core.hawkes.simulation import simulate_branching
        k, max_lag = 2, 10
        impulse = np.tile(np.full(max_lag, 0.1), (k, k, 1))
        true = HawkesParams(
            background=np.array([0.01, 0.01]),
            weights=np.array([[0.4, 0.2], [0.0, 0.3]]),
            impulse=impulse)
        events = simulate_branching(true, 5000, rng)
        wrong = HawkesParams(
            background=true.background,
            weights=np.zeros((k, k)),
            impulse=impulse)
        assert (discrete_log_likelihood(true, events)
                > discrete_log_likelihood(wrong, events))
