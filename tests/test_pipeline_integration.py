"""End-to-end integration tests over the session-scoped small world."""

import numpy as np
import pytest

from repro.analysis import characterization as chz
from repro.analysis import sequences, temporal
from repro.config import (
    HAWKES_PROCESSES,
    HawkesConfig,
    SELECTED_SUBREDDITS,
    STUDY_END,
    STUDY_START,
    TWITTER_GAPS,
)
from repro.core import (
    aggregate_weights,
    corpus_background_rates,
    fit_corpus,
    influence_percentages,
    select_urls,
    trim_gap_urls,
)
from repro.news.domains import NewsCategory
from repro.pipeline import influence_cascades

ALT = NewsCategory.ALTERNATIVE
MAIN = NewsCategory.MAINSTREAM


class TestCollection:
    def test_all_platforms_collected(self, collected):
        assert len(collected.twitter) > 100
        assert len(collected.reddit) > 200
        assert len(collected.fourchan) > 30

    def test_twitter_gap_windows_empty(self, collected):
        from repro.timeutil import in_any_interval
        for record in collected.twitter:
            assert not in_any_interval(record.created_at, TWITTER_GAPS)

    def test_slices_partition_reddit(self, collected):
        assert (len(collected.reddit_six) + len(collected.reddit_other)
                == len(collected.reddit))

    def test_pol_is_largest_board(self, collected):
        assert len(collected.pol) > len(collected.fourchan_other)

    def test_recrawl_retrieval_fractions(self, collected):
        alt = collected.recrawl.alternative
        main = collected.recrawl.mainstream
        assert 0.6 < alt.retrieved_fraction < 0.95
        assert 0.7 < main.retrieved_fraction < 0.98
        # the paper: alternative tweets vanish more often
        assert alt.retrieved_fraction < main.retrieved_fraction + 0.05

    def test_url_domains_mapping(self, collected):
        domains = collected.url_domains()
        assert domains
        assert all("." in d for d in domains.values())


class TestCharacterizationShape:
    def test_table1_alt_smaller_than_main(self, collected):
        world = collected.world
        rows = chz.total_post_shares(
            {"twitter": world.twitter.total_posts,
             "reddit": world.reddit.total_posts,
             "4chan": world.fourchan.total_posts},
            {"twitter": collected.twitter, "reddit": collected.reddit,
             "4chan": collected.fourchan})
        for row in rows:
            assert row.pct_alternative < row.pct_mainstream
            assert row.pct_alternative > 0

    def test_breitbart_tops_alternative_everywhere(self, collected):
        for dataset in (collected.twitter, collected.reddit_six,
                        collected.pol):
            ranked = chz.top_domains(dataset, ALT, top_n=5)
            assert ranked[0].name == "breitbart.com"

    def test_the_donald_tops_alt_subreddits(self, collected):
        ranked = chz.top_subreddits(collected.reddit, ALT, top_n=5)
        assert ranked[0].name == "The_Donald"

    def test_user_fraction_shape(self, collected):
        result = chz.user_alternative_fraction(collected.twitter)
        # Fig 3: most users share only mainstream news
        assert result.pct_mainstream_only > 50
        assert result.pct_alternative_only > 3


class TestTemporalShape:
    def test_daily_series_cover_window(self, collected):
        series = temporal.daily_occurrence(
            collected.twitter, "Twitter", STUDY_START, STUDY_END)
        assert series.n_days >= 240
        assert series.alternative.sum() > 0

    def test_gap_days_have_zero_twitter_activity(self, collected):
        series = temporal.daily_occurrence(
            collected.twitter, "Twitter", STUDY_START, STUDY_END)
        from repro.timeutil import SECONDS_PER_DAY
        gap = TWITTER_GAPS[1]  # Nov 5-16
        day0 = (gap.start - STUDY_START) // SECONDS_PER_DAY
        day1 = (gap.end - STUDY_START) // SECONDS_PER_DAY
        assert series.alternative[day0:day1].sum() == 0
        assert series.mainstream[day0:day1].sum() == 0

    def test_repost_lags_exist(self, collected):
        ecdf = temporal.repost_lag_cdf(collected.twitter, MAIN)
        assert ecdf is not None
        assert ecdf.n > 10

    def test_sequences_mostly_single_platform(self, collected):
        rows = sequences.first_hop_distribution(
            collected.sequence_slices(), MAIN)
        singles = sum(r.percentage for r in rows if "only" in r.sequence)
        assert singles > 50  # Table 9: most URLs stay on one platform

    def test_triplet_sequences_present(self, collected):
        rows = sequences.triplet_distribution(
            collected.sequence_slices(), MAIN)
        assert sum(r.count for r in rows) > 5


class TestInfluencePipeline:
    @pytest.fixture(scope="class")
    def corpus(self, cascades):
        selected = select_urls(cascades)
        return trim_gap_urls(selected, TWITTER_GAPS, 0.10)

    def test_selection_nonempty(self, corpus):
        assert len(corpus) > 20

    def test_selected_have_required_platforms(self, corpus):
        for cascade in corpus:
            present = cascade.processes_present()
            assert "Twitter" in present
            assert "/pol/" in present
            assert present & set(SELECTED_SUBREDDITS)

    def test_fit_and_aggregate(self, corpus):
        config = HawkesConfig(gibbs_iterations=25, gibbs_burn_in=8)
        rng = np.random.default_rng(42)
        # fit a balanced subsample to keep the test fast
        alt = [c for c in corpus if c.category == ALT][:8]
        main = [c for c in corpus if c.category == MAIN][:8]
        result = fit_corpus(alt + main, config, rng=rng)
        agg = aggregate_weights(result)
        assert agg.mean_alternative.shape == (8, 8)
        assert np.all(agg.mean_alternative >= 0)
        pct = influence_percentages(result, MAIN)
        assert np.all(pct >= 0)
        summary = corpus_background_rates(result)
        twitter_idx = HAWKES_PROCESSES.index("Twitter")
        assert summary.urls[ALT][twitter_idx] == len(alt)
        assert summary.urls[MAIN][twitter_idx] == len(main)
