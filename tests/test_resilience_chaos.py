"""Chaos-equivalence: injected transient faults change nothing downstream.

The headline fault-tolerance property: under a seeded schedule of
transient source errors, malformed records, worker crashes, and cache
corruption, the pipeline's final aggregates, fits, and artifacts are
bit-identical to a fault-free run — every recovery path replays
deterministic work instead of improvising.
"""

import numpy as np
import pytest

from repro.api import Study
from repro.config import HawkesConfig
from repro.core.influence import fit_corpus, select_urls
from repro.live import EventBus, LiveEngine
from repro.pipeline import stream_source_factories, stream_sources
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    Quarantine,
    clear_worker_faults,
    corrupt_object,
    install_worker_faults,
    supervised_source,
)


def test_live_engine_chaos_equivalence(small_world):
    """Faulted supervised ingest == clean ingest, bit for bit."""
    clean = LiveEngine(EventBus(stream_sources(small_world)),
                       summary_every=0)
    clean.run()

    plan = FaultPlan(3, FaultSpec(transient_errors=2,
                                  malformed_records=2, horizon=800))
    sink = Quarantine()
    sources = []
    for name, factory in stream_source_factories(small_world):
        faults = plan.source(name)
        faulted = (lambda f=factory, inj=faults: inj.wrap(f()))
        sources.append((name, supervised_source(
            name, faulted, quarantine=sink, sleep=lambda s: None)))
    chaotic = LiveEngine(EventBus(sources), summary_every=0)
    chaotic.run()

    assert sink.count > 0  # the injection was not inert
    assert set(sink.by_reason()) == {"not a DatasetRecord"}
    assert chaotic.records_seen == clean.records_seen
    assert chaotic.state_dict() == clean.state_dict()


class TestParallelChaos:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        yield
        clear_worker_faults()

    def test_fit_corpus_worker_crash_bit_identical(self, cascades,
                                                   tmp_path):
        corpus = select_urls(cascades)[:6]
        config = HawkesConfig(max_lag_bins=60)
        baseline = fit_corpus(corpus, config=config, method="em",
                              rng=5, n_jobs=1)

        install_worker_faults(tmp_path / "faults", crashes=1,
                              mode="raise")
        crashed = fit_corpus(corpus, config=config, method="em",
                             rng=5, n_jobs=2, chunk_size=2)
        clear_worker_faults()

        assert len(baseline.fits) == len(crashed.fits)
        for a, b in zip(baseline.fits, crashed.fits):
            assert a.url == b.url
            assert np.array_equal(a.weights, b.weights)
            assert np.array_equal(a.background, b.background)

    def test_fit_corpus_pool_breakage_bit_identical(self, cascades,
                                                    tmp_path):
        corpus = select_urls(cascades)[:6]
        config = HawkesConfig(max_lag_bins=60)
        baseline = fit_corpus(corpus, config=config, method="em",
                              rng=5, n_jobs=1)

        install_worker_faults(tmp_path / "faults", crashes=1,
                              mode="exit")
        survived = fit_corpus(corpus, config=config, method="em",
                              rng=5, n_jobs=2, chunk_size=2)
        clear_worker_faults()

        for a, b in zip(baseline.fits, survived.fits):
            assert a.url == b.url
            assert np.array_equal(a.weights, b.weights)


def test_study_artifacts_identical_after_cache_corruption(
        collected, tmp_path):
    """Corrupting a cached artifact costs a recompute, not correctness."""
    hawkes = HawkesConfig(gibbs_iterations=12, gibbs_burn_in=4)

    def build():
        return Study.from_data(collected, hawkes=hawkes, fit_seed=0,
                               max_urls=5, cache_dir=tmp_path / "cache")

    study = build()
    table_key = study.stage_key("table:2")
    before = study.table(2).to_payload()
    assert study.store.contains(table_key)

    corrupt_object(study.store, table_key)
    rebuilt = build()  # fresh session, cold memory layer
    after = rebuilt.table(2).to_payload()
    assert after == before
    quarantine_dir = tmp_path / "cache" / "quarantine"
    assert quarantine_dir.exists() and any(quarantine_dir.iterdir())
