"""Pickle round-trips for everything that crosses process boundaries.

``parallel_map`` ships cascades, fit specs, and fitted results between
processes; these tests pin down that every payload survives a pickle
round-trip unchanged (dataclass + ndarray fields included).
"""

import pickle

import numpy as np
import pytest

from repro.config import HawkesConfig
from repro.core.events import bin_timestamps
from repro.core.hawkes.basis import LogBinnedLagBasis
from repro.core.hawkes.inference import Priors, fit_em, fit_gibbs
from repro.core.influence import (
    InfluenceResult,
    UrlCascade,
    UrlFit,
    fit_corpus,
)
from repro.news.domains import NewsCategory

ALT = NewsCategory.ALTERNATIVE


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture(scope="module")
def events():
    return bin_timestamps([0.0, 90.0, 200.0, 420.0, 1500.0],
                          [7, 7, 6, 0, 2], n_processes=8, delta_t=60.0)


@pytest.fixture(scope="module")
def gibbs_result(events):
    return fit_gibbs(events, 60, basis=LogBinnedLagBasis(60),
                     n_iterations=8, burn_in=3,
                     rng=np.random.default_rng(0), keep_samples=True)


class TestFitResultRoundTrip:
    def test_gibbs_result(self, gibbs_result):
        restored = roundtrip(gibbs_result)
        assert np.array_equal(restored.params.background,
                              gibbs_result.params.background)
        assert np.array_equal(restored.params.weights,
                              gibbs_result.params.weights)
        assert np.array_equal(restored.params.impulse,
                              gibbs_result.params.impulse)
        assert np.array_equal(restored.weight_samples,
                              gibbs_result.weight_samples)
        assert restored.log_likelihood == gibbs_result.log_likelihood
        assert restored.n_iterations == gibbs_result.n_iterations

    def test_em_result(self, events):
        result = fit_em(events, 60, basis=LogBinnedLagBasis(60),
                        priors=Priors())
        restored = roundtrip(result)
        assert np.array_equal(restored.params.weights,
                              result.params.weights)
        assert restored.weight_samples.size == 0


class TestUrlFitRoundTrip:
    def test_with_and_without_samples(self, gibbs_result):
        for samples in (None, gibbs_result.weight_samples):
            fit = UrlFit(url="u", category=ALT,
                         background=gibbs_result.params.background,
                         weights=gibbs_result.params.weights,
                         event_counts=np.arange(8, dtype=np.int64),
                         n_bins=26, log_likelihood=-12.5,
                         weight_samples=samples)
            restored = roundtrip(fit)
            assert restored.url == "u"
            assert restored.category is ALT
            assert np.array_equal(restored.weights, fit.weights)
            assert np.array_equal(restored.event_counts, fit.event_counts)
            if samples is None:
                assert restored.weight_samples is None
            else:
                assert np.array_equal(restored.weight_samples, samples)


class TestInfluenceResultRoundTrip:
    def test_full_corpus_result(self):
        cascades = [
            UrlCascade(f"u{i}", ALT,
                       ((i * 1e6, "Twitter"), (i * 1e6 + 120, "/pol/"),
                        (i * 1e6 + 300, "The_Donald")))
            for i in range(3)
        ]
        config = HawkesConfig(gibbs_iterations=8, gibbs_burn_in=3,
                              max_lag_bins=30)
        result = fit_corpus(cascades, config, rng=3, keep_samples=True)
        restored = roundtrip(result)
        assert restored.processes == result.processes
        assert len(restored.fits) == 3
        for orig, back in zip(result.fits, restored.fits):
            assert back.url == orig.url
            assert np.array_equal(back.weights, orig.weights)
            assert np.array_equal(back.weight_samples, orig.weight_samples)
        # aggregation still works on the restored object
        assert restored.weight_stack(ALT).shape == (3, 8, 8)


class TestWorkerPayloadRoundTrip:
    """The other direction: what the main process ships to workers."""

    def test_cascade(self):
        cascade = UrlCascade("u", ALT, ((0.0, "Twitter"), (60.0, "/pol/")))
        assert roundtrip(cascade) == cascade

    def test_basis_and_priors_and_events(self, events):
        basis = LogBinnedLagBasis(720)
        restored = roundtrip(basis)
        assert restored.max_lag == basis.max_lag
        assert np.array_equal(restored.bucket_of, basis.bucket_of)
        assert roundtrip(Priors()) == Priors()
        restored_events = roundtrip(events)
        assert np.array_equal(restored_events.bins, events.bins)
        assert restored_events.n_bins == events.n_bins

    def test_seed_sequence_stream_survives(self):
        seed = np.random.SeedSequence(5, spawn_key=(2,))
        restored = roundtrip(seed)
        assert (np.random.default_rng(restored).random(4).tolist()
                == np.random.default_rng(seed).random(4).tolist())
