"""Tests for story arrivals and cascade generation."""

import numpy as np
import pytest

from repro.config import SELECTED_SUBREDDITS, STUDY_END, STUDY_START
from repro.news.articles import ArticleGenerator
from repro.news.domains import NewsCategory
from repro.synthesis.cascades import CascadeEngine, StoryCascade
from repro.synthesis.params import default_ground_truth
from repro.synthesis.stories import DEFAULT_SPIKES, StoryArrivals
from repro.timeutil import SECONDS_PER_DAY, utc


class TestStoryArrivals:
    def test_daily_rates_sum_to_total(self):
        arrivals = StoryArrivals()
        rates = arrivals.daily_rates(1000)
        assert rates.sum() == pytest.approx(1000)

    def test_election_day_spike(self):
        arrivals = StoryArrivals()
        rates = arrivals.daily_rates(1000)
        election = (utc(2016, 11, 8) - STUDY_START) // SECONDS_PER_DAY
        ordinary = (utc(2016, 8, 2) - STUDY_START) // SECONDS_PER_DAY
        assert rates[election] > 2.5 * rates[ordinary]

    def test_weekend_dip(self):
        arrivals = StoryArrivals(spikes=())
        rates = arrivals.daily_rates(1000)
        sat = (utc(2016, 7, 2) - STUDY_START) // SECONDS_PER_DAY
        fri = (utc(2016, 7, 1) - STUDY_START) // SECONDS_PER_DAY
        assert rates[sat] < rates[fri]

    def test_sample_inside_window(self, rng):
        arrivals = StoryArrivals()
        schedule = arrivals.sample("alt", 500, rng)
        assert schedule.timestamps.min() >= STUDY_START
        assert schedule.timestamps.max() < STUDY_END
        assert np.all(np.diff(schedule.timestamps) >= 0)

    def test_sample_count_near_target(self, rng):
        arrivals = StoryArrivals()
        schedule = arrivals.sample("alt", 2000, rng)
        assert len(schedule) == pytest.approx(2000, rel=0.1)

    def test_spikes_in_window(self):
        for epoch, factor in DEFAULT_SPIKES:
            assert STUDY_START <= epoch < STUDY_END
            assert factor > 1


@pytest.fixture(scope="module")
def engine():
    return CascadeEngine(default_ground_truth(),
                         np.random.default_rng(21))


@pytest.fixture(scope="module")
def article_gen(registry):
    return ArticleGenerator(registry, seed=77)


class TestCascadeEngine:
    def test_every_story_has_events(self, engine, article_gen):
        for i in range(50):
            article = article_gen.generate(NewsCategory.ALTERNATIVE,
                                           STUDY_START + i * 3600)
            cascade = engine.generate(article)
            assert len(cascade.events) >= 1

    def test_events_sorted_and_inside_study(self, engine, article_gen):
        article = article_gen.generate(NewsCategory.MAINSTREAM,
                                       STUDY_START + 1000)
        cascade = engine.generate(article)
        times = [t for t, _ in cascade.events]
        assert times == sorted(times)
        assert all(t < STUDY_END for t in times)

    def test_event_processes_known(self, engine, article_gen):
        known = set(default_ground_truth().processes) | set(
            SELECTED_SUBREDDITS)
        for i in range(30):
            article = article_gen.generate(NewsCategory.ALTERNATIVE,
                                           STUDY_START + i * 7200)
            cascade = engine.generate(article)
            for _, name in cascade.events:
                assert name in known

    def test_local_story_stays_near_home(self, engine, article_gen):
        article = article_gen.generate(NewsCategory.MAINSTREAM,
                                       STUDY_START)
        cascade = engine.generate(article, viral=False, home="Twitter")
        platforms = {name for _, name in cascade.events}
        # home plus at most one leak
        assert "Twitter" in platforms
        assert len(platforms) <= 2

    def test_viral_flag_recorded(self, engine, article_gen):
        article = article_gen.generate(NewsCategory.ALTERNATIVE,
                                       STUDY_START)
        cascade = engine.generate(article, viral=True)
        assert cascade.viral

    def test_viral_stories_spread_more(self, article_gen):
        engine = CascadeEngine(default_ground_truth(),
                               np.random.default_rng(3))
        viral_platforms = []
        local_platforms = []
        for i in range(120):
            article = article_gen.generate(NewsCategory.MAINSTREAM,
                                           STUDY_START + i * 3600)
            viral_platforms.append(
                len(engine.generate(article, viral=True)
                    .processes_present()))
            local_platforms.append(
                len(engine.generate(article, viral=False)
                    .processes_present()))
        assert np.mean(viral_platforms) > np.mean(local_platforms)

    def test_pick_local_home_distribution(self):
        engine = CascadeEngine(default_ground_truth(),
                               np.random.default_rng(8))
        homes = [engine.pick_local_home(False) for _ in range(2000)]
        twitter_share = homes.count("Twitter") / len(homes)
        assert twitter_share == pytest.approx(0.33, abs=0.05)
        # subreddit homes resolve to actual subreddit names
        assert any(h in SELECTED_SUBREDDITS for h in homes)

    def test_recycling_extends_tail(self, article_gen):
        truth = default_ground_truth()
        always = type(truth)(recycle_prob=1.0,
                             recycle_max_posts=3)
        engine = CascadeEngine(always, np.random.default_rng(10))
        article = article_gen.generate(NewsCategory.MAINSTREAM,
                                       STUDY_START)
        cascade = engine.generate(article, viral=False, home="Twitter")
        span = max(t for t, _ in cascade.events) - min(
            t for t, _ in cascade.events)
        assert span > 3600  # recycled posts at least an hour later

    def test_url_property(self, engine, article_gen):
        article = article_gen.generate(NewsCategory.MAINSTREAM, STUDY_START)
        cascade = engine.generate(article)
        assert cascade.url == article.url
